//! Offline vendored no-op `Serialize` / `Deserialize` derives.
//!
//! The workspace's `serde` facade blanket-implements its marker traits
//! for every type, so these derives only need to (a) exist and (b)
//! accept `#[serde(...)]` helper attributes. They expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
