//! Offline vendored subset of the `bytes` crate.
//!
//! Backs [`Bytes`] / [`BytesMut`] with a plain `Vec<u8>` — no refcounted
//! zero-copy slicing, because the workspace only ever builds a checkpoint
//! buffer once and reads it sequentially. The [`Buf`] / [`BufMut`]
//! traits cover exactly the little-endian accessors the checkpoint codec
//! uses.

use std::ops::{Deref, Index};

/// Immutable byte container (here: an owned `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

impl<I> Index<I> for Bytes
where
    Vec<u8>: Index<I>,
{
    type Output = <Vec<u8> as Index<I>>::Output;
    fn index(&self, index: I) -> &Self::Output {
        &self.0[index]
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.0 == other
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential little-endian reads over a byte cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        f64::from_le_bytes(b)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Sequential little-endian writes into a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"MRS1");
        buf.put_u64_le(0xDEAD_BEEF_0123_4567);
        buf.put_f32_le(1.25);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(&cursor[..4], b"MRS1");
        cursor.advance(4);
        assert_eq!(cursor.get_u64_le(), 0xDEAD_BEEF_0123_4567);
        assert_eq!(cursor.get_f32_le(), 1.25);
        assert_eq!(cursor.remaining(), 0);
    }
}
