//! Offline vendored micro-benchmark harness.
//!
//! Implements the subset of the `criterion` API the `mrsch-bench` crate
//! uses — `criterion_group!` / `criterion_main!`, `Criterion::
//! bench_function`, `benchmark_group` with `sample_size` / `finish`, and
//! `Bencher::iter` / `iter_with_setup` — with a deliberately simple
//! measurement loop: warm up briefly, then time batches until a wall
//! budget is spent and report mean / min / max per iteration.
//!
//! Statistical machinery (outlier analysis, HTML reports, comparison to
//! saved baselines) is out of scope; the numbers printed are honest wall
//! times suitable for spotting order-of-magnitude regressions. Every
//! measurement is also recorded on the `Criterion` instance
//! ([`Criterion::results`]) so bench mains can emit machine-readable
//! reports (the CI perf gate consumes one).

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting a
/// computation whose result is otherwise unused.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-target measurement settings.
#[derive(Clone, Debug)]
struct Settings {
    /// Target number of timed batches.
    sample_size: usize,
    /// Wall-clock budget per benchmark.
    measure_budget: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measure_budget: Duration::from_millis(300),
        }
    }
}

/// One completed measurement, kept so callers (e.g. benches that emit
/// machine-readable reports) can read back what was printed.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id (`group/function` for grouped benches).
    pub id: String,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed batch, per iteration, nanoseconds.
    pub min_ns: f64,
    /// Slowest observed batch, per iteration, nanoseconds.
    pub max_ns: f64,
    /// Timed batches taken.
    pub samples: u64,
    /// Iterations per batch.
    pub iters: u64,
}

/// Entry point handed to each bench function by `criterion_group!`.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
    /// Substring filters from the CLI; empty means "run everything".
    filters: Vec<String>,
    /// Every measurement taken through this instance, in run order.
    results: Vec<BenchResult>,
}

/// Does `id` pass the substring filters? Empty filter set accepts all;
/// otherwise any filter substring-matching the id accepts it (upstream's
/// default, non-regex behavior).
fn matches_filters(filters: &[String], id: &str) -> bool {
    filters.is_empty() || filters.iter().any(|f| id.contains(f.as_str()))
}

/// Extract benchmark name filters from raw CLI arguments: positional
/// (non-flag) arguments are filters; flags — including the `--bench` /
/// `--test` markers cargo passes to every bench binary — are ignored.
fn filters_from(args: impl Iterator<Item = String>) -> Vec<String> {
    args.filter(|a| !a.starts_with('-')).collect()
}

impl Criterion {
    /// Parse CLI arguments: `cargo bench -- gemm` runs only benchmarks
    /// whose id contains `gemm`. Other flags are accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.filters = filters_from(std::env::args().skip(1));
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.settings.measure_budget = budget;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if matches_filters(&self.filters, id) {
            let settings = self.settings.clone();
            let result = run_one(id, &settings, &mut f);
            self.results.push(result);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            settings: Settings::default(),
        }
    }

    /// Every measurement taken so far (skipped-by-filter benches do not
    /// appear). Lets bench mains emit machine-readable reports on top
    /// of the printed table.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.settings.measure_budget = budget;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if matches_filters(&self.parent.filters, &full) {
            let result = run_one(&full, &self.settings, &mut f);
            self.parent.results.push(result);
        }
        self
    }

    pub fn finish(self) {}
}

/// Times the body the bench function hands to [`Bencher::iter`].
pub struct Bencher {
    /// Iterations to run per timed batch.
    iters: u64,
    /// Total time spent in the measured routine across the batch.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Like [`Bencher::iter`], but `setup` runs outside the timed region.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, settings: &Settings, f: &mut F) -> BenchResult {
    // Calibration pass: one iteration, to size batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));

    // Pick a batch size so that sample_size batches fit the wall budget.
    let budget_per_sample = settings.measure_budget / settings.sample_size as u32;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let (mut total, mut best, mut worst) = (Duration::ZERO, Duration::MAX, Duration::ZERO);
    let mut samples = 0u64;
    let wall = Instant::now();
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        total += b.elapsed;
        best = best.min(per);
        worst = worst.max(per);
        samples += 1;
        if wall.elapsed() > settings.measure_budget {
            break;
        }
    }
    let mean = total / (samples * iters).max(1) as u32;
    println!(
        "bench: {id:<48} mean {mean:>12?}  min {best:>12?}  max {worst:>12?}  ({samples} x {iters} iters)"
    );
    BenchResult {
        id: id.to_string(),
        mean_ns: mean.as_nanos() as f64,
        min_ns: best.as_nanos() as f64,
        max_ns: worst.as_nanos() as f64,
        samples,
        iters,
    }
}

/// Build one `fn $group()` running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Build `fn main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filters(args: &[&str]) -> Vec<String> {
        filters_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positional_args_become_filters_flags_ignored() {
        assert_eq!(filters(&["--bench", "gemm"]), vec!["gemm"]);
        assert_eq!(filters(&["--bench", "--test"]), Vec::<String>::new());
        assert_eq!(filters(&["gemm", "sim/run"]), vec!["gemm", "sim/run"]);
        assert_eq!(
            filters(&["--sample-size", "10", "encode"]),
            vec!["10", "encode"],
            "flag values are indistinguishable from filters; harmless over-match"
        );
    }

    #[test]
    fn substring_matching_selects_benches() {
        let f = vec!["gemm".to_string()];
        assert!(matches_filters(&f, "substrate_gemm/256"));
        assert!(matches_filters(&f, "gemm"));
        assert!(!matches_filters(&f, "simulator/run"));
        assert!(matches_filters(&[], "anything"), "no filters runs everything");
        let multi = vec!["encode".to_string(), "replay".to_string()];
        assert!(matches_filters(&multi, "state_encode/theta"));
        assert!(matches_filters(&multi, "replay_push"));
        assert!(!matches_filters(&multi, "gemm/64"));
    }
}
