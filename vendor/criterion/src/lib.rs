//! Offline vendored micro-benchmark harness.
//!
//! Implements the subset of the `criterion` API the `mrsch-bench` crate
//! uses — `criterion_group!` / `criterion_main!`, `Criterion::
//! bench_function`, `benchmark_group` with `sample_size` / `finish`, and
//! `Bencher::iter` / `iter_with_setup` — with a deliberately simple
//! measurement loop: warm up briefly, then time batches until a wall
//! budget is spent and report mean / min / max per iteration.
//!
//! Statistical machinery (outlier analysis, HTML reports, comparison to
//! saved baselines) is out of scope; the numbers printed are honest wall
//! times suitable for spotting order-of-magnitude regressions.

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting a
/// computation whose result is otherwise unused.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-target measurement settings.
#[derive(Clone, Debug)]
struct Settings {
    /// Target number of timed batches.
    sample_size: usize,
    /// Wall-clock budget per benchmark.
    measure_budget: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measure_budget: Duration::from_millis(300),
        }
    }
}

/// Entry point handed to each bench function by `criterion_group!`.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Upstream parses CLI flags here; this harness accepts and ignores
    /// them (`cargo bench -- <filter>` filtering is not implemented).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, &self.settings, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            settings: Settings::default(),
        }
    }
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.settings.measure_budget = budget;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, &self.settings, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Times the body the bench function hands to [`Bencher::iter`].
pub struct Bencher {
    /// Iterations to run per timed batch.
    iters: u64,
    /// Total time spent in the measured routine across the batch.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Like [`Bencher::iter`], but `setup` runs outside the timed region.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, settings: &Settings, f: &mut F) {
    // Calibration pass: one iteration, to size batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));

    // Pick a batch size so that sample_size batches fit the wall budget.
    let budget_per_sample = settings.measure_budget / settings.sample_size as u32;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let (mut total, mut best, mut worst) = (Duration::ZERO, Duration::MAX, Duration::ZERO);
    let mut samples = 0u64;
    let wall = Instant::now();
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        total += b.elapsed;
        best = best.min(per);
        worst = worst.max(per);
        samples += 1;
        if wall.elapsed() > settings.measure_budget {
            break;
        }
    }
    let mean = total / (samples * iters).max(1) as u32;
    println!(
        "bench: {id:<48} mean {mean:>12?}  min {best:>12?}  max {worst:>12?}  ({samples} x {iters} iters)"
    );
}

/// Build one `fn $group()` running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Build `fn main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
