//! Offline vendored property-testing harness.
//!
//! Re-implements the subset of the `proptest` API this workspace's
//! property suites use — `proptest!` with `#![proptest_config(...)]`,
//! range / tuple / `prop::collection::vec` / `prop::bool::ANY`
//! strategies, `prop_map`, and the `prop_assert*` family — on top of the
//! vendored `rand` crate.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion's own
//!   message instead of a minimized counterexample.
//! * **Fixed derivation of the RNG stream** from the test-function name,
//!   so failures reproduce exactly across runs (upstream persists a
//!   failure seed file; here every run is the same run).

pub mod strategy;
pub mod test_runner;

pub mod collection;

/// `proptest::bool` — strategies over booleans.
pub mod bool {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniformly random boolean (upstream `proptest::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// `proptest::num` — numeric strategies (ranges already implement
/// [`strategy::Strategy`]; this module exists for `any::<T>()`-style use).
pub mod num {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Rng, Standard};

    /// Full-range strategy for a primitive drawable by `rand`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(pub std::marker::PhantomData<T>);

    impl<T: Standard + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            rng.gen::<T>()
        }
    }
}

/// The `prelude` glob the suites import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`,
    /// `prop::bool::ANY`, ...), mirroring upstream's prelude.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
        pub use crate::strategy;
    }
}

/// Run `n` cases of a property, panicking on the first failure.
///
/// This is the engine behind the [`proptest!`] macro; it is public so the
/// macro expansion can reach it.
pub fn run_cases<F>(name: &str, config: &test_runner::ProptestConfig, mut case: F)
where
    F: FnMut(&mut rand::rngs::StdRng, u32) -> Result<(), test_runner::TestCaseError>,
{
    use rand::SeedableRng;
    // FNV-1a over the test name: stable, deterministic per-test streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(h);
    let mut rejected = 0u32;
    let mut ran = 0u32;
    while ran < config.cases {
        match case(&mut rng, ran) {
            Ok(()) => ran += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < config.max_global_rejects,
                    "proptest `{name}`: too many rejected cases ({rejected})"
                );
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {ran}: {msg}")
            }
        }
    }
}

/// The `proptest! { ... }` macro: each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running `config.cases` randomized cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::run_cases(
                    stringify!($name),
                    &config,
                    |__proptest_rng, __proptest_case| {
                        $(
                            let $arg = $crate::strategy::Strategy::new_value(
                                &($strat),
                                __proptest_rng,
                            );
                        )+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                l, r, format!($($fmt)*)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}
