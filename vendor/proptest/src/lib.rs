//! Offline vendored property-testing harness.
//!
//! Re-implements the subset of the `proptest` API this workspace's
//! property suites use — `proptest!` with `#![proptest_config(...)]`,
//! range / tuple / `prop::collection::vec` / `prop::bool::ANY`
//! strategies, `prop_map`, and the `prop_assert*` family — on top of the
//! vendored `rand` crate.
//!
//! Differences from upstream, by design:
//!
//! * **Simple halving/bisection shrinking** instead of value trees: on a
//!   failure the runner greedily applies [`strategy::Strategy::shrink`]
//!   candidates (numeric ranges bisect toward their low bound, vectors
//!   halve) and reports the minimized counterexample via `Debug`.
//!   Mapped strategies (`prop_map`) cannot invert their closures, so
//!   they shrink the remembered preimage of the last drawn value and map
//!   candidates forward; [`strategy::Strategy::note_adopted`] keeps that
//!   preimage in sync with the minimizer's greedy descent.
//! * **Fixed derivation of the RNG stream** from the test-function name,
//!   so failures reproduce exactly across runs (upstream persists a
//!   failure seed file; here every run is the same run).

pub mod strategy;
pub mod test_runner;

pub mod collection;

/// `proptest::bool` — strategies over booleans.
pub mod bool {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniformly random boolean (upstream `proptest::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// `proptest::num` — numeric strategies (ranges already implement
/// [`strategy::Strategy`]; this module exists for `any::<T>()`-style use).
pub mod num {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Rng, Standard};

    /// Full-range strategy for a primitive drawable by `rand`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(pub std::marker::PhantomData<T>);

    impl<T: Standard + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            rng.gen::<T>()
        }
    }
}

/// The `prelude` glob the suites import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`,
    /// `prop::bool::ANY`, ...), mirroring upstream's prelude.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
        pub use crate::strategy;
    }
}

/// Run `n` cases of a property, panicking on the first failure.
///
/// Legacy engine without shrinking (the [`proptest!`] macro now uses
/// [`run_cases_shrink`]); kept public for direct callers.
pub fn run_cases<F>(name: &str, config: &test_runner::ProptestConfig, mut case: F)
where
    F: FnMut(&mut rand::rngs::StdRng, u32) -> Result<(), test_runner::TestCaseError>,
{
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(stream_seed(name));
    let mut rejected = 0u32;
    let mut ran = 0u32;
    while ran < config.cases {
        match case(&mut rng, ran) {
            Ok(()) => ran += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < config.max_global_rejects,
                    "proptest `{name}`: too many rejected cases ({rejected})"
                );
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {ran}: {msg}")
            }
        }
    }
}

/// FNV-1a over the test name: stable, deterministic per-test streams.
fn stream_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

thread_local! {
    /// True while this thread's minimizer intentionally re-fails the
    /// property; the quiet hook suppresses those panic reports.
    static SHRINKING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that delegates to the
/// previous hook except on threads currently shrinking. Never
/// uninstalled, so concurrent tests in the same binary keep their panic
/// diagnostics and there is no take/set race.
fn install_quiet_shrink_hook() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SHRINKING.with(|s| s.get()) {
                previous(info);
            }
        }));
    });
}

/// Run one case, converting body panics (plain `assert!` inside the
/// property) into [`test_runner::TestCaseError::Fail`] so they shrink
/// like `prop_assert!` failures.
fn run_guarded<V, F>(case: &mut F, value: &V) -> Result<(), test_runner::TestCaseError>
where
    F: FnMut(&V) -> Result<(), test_runner::TestCaseError>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(value))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic (non-string payload)".to_string()
            };
            Err(test_runner::TestCaseError::Fail(msg))
        }
    }
}

/// Greedy halving/bisection minimization: repeatedly adopt the first
/// shrink candidate that still fails, until none does (or the probe
/// budget runs out). Returns the minimized value, its failure message
/// and the number of successful shrink steps.
fn minimize<S, F>(
    strat: &S,
    case: &mut F,
    mut value: S::Value,
    mut msg: String,
) -> (S::Value, String, usize)
where
    S: strategy::Strategy,
    S::Value: Clone,
    F: FnMut(&S::Value) -> Result<(), test_runner::TestCaseError>,
{
    let mut steps = 0usize;
    let mut budget = 512usize;
    loop {
        let mut improved = false;
        for (idx, cand) in strat.shrink(&value).into_iter().enumerate() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            if let Err(test_runner::TestCaseError::Fail(m)) = run_guarded(case, &cand) {
                // Tell stateful strategies (prop_map preimages) which
                // candidate won before adopting it, so their next
                // shrink round continues from `cand`, not `value`.
                strat.note_adopted(&value, idx);
                value = cand;
                msg = m;
                steps += 1;
                improved = true;
                break;
            }
        }
        if !improved || budget == 0 {
            return (value, msg, steps);
        }
    }
}

/// The engine behind the [`proptest!`] macro: run `config.cases` cases
/// drawn from `strat`; on failure, shrink and panic with the minimized
/// counterexample.
pub fn run_cases_shrink<S, F>(name: &str, config: &test_runner::ProptestConfig, strat: &S, mut case: F)
where
    S: strategy::Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: FnMut(&S::Value) -> Result<(), test_runner::TestCaseError>,
{
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(stream_seed(name));
    let mut rejected = 0u32;
    let mut ran = 0u32;
    while ran < config.cases {
        let value = strat.new_value(&mut rng);
        match run_guarded(&mut case, &value) {
            Ok(()) => ran += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < config.max_global_rejects,
                    "proptest `{name}`: too many rejected cases ({rejected})"
                );
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                // Quiet the panic printer for THIS thread while shrink
                // probes intentionally re-fail the property; other
                // threads' diagnostics are unaffected.
                install_quiet_shrink_hook();
                SHRINKING.with(|s| s.set(true));
                let (min_value, min_msg, steps) = minimize(strat, &mut case, value, msg);
                SHRINKING.with(|s| s.set(false));
                panic!(
                    "proptest `{name}` failed at case {ran}: {min_msg}\n\
                     minimal counterexample ({steps} shrink steps): {min_value:#?}"
                );
            }
        }
    }
}

/// The `proptest! { ... }` macro: each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running `config.cases` randomized cases, with
/// failing cases minimized by halving/bisection shrinking.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                // One tuple strategy over all arguments: element draws
                // happen in declaration order, preserving the legacy
                // engine's RNG stream exactly.
                let __proptest_strategy = ($(($strat),)+);
                $crate::run_cases_shrink(
                    stringify!($name),
                    &config,
                    &__proptest_strategy,
                    |__proptest_values| {
                        let ($($arg,)+) = ::std::clone::Clone::clone(__proptest_values);
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                l, r, format!($($fmt)*)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}
