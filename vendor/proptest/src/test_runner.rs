//! Test-runner configuration and the error type `prop_assert*` produces.

/// Subset of upstream `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Abort if this many `prop_assume!` rejections accumulate.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` failed); it does not count
    /// toward `cases`.
    Reject(String),
    /// The property was violated.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}
