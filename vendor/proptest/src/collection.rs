//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length specification for collection strategies: an exact size, an
/// exclusive range, or an inclusive range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy producing a `Vec` of values from `element`, with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // 1. Halve the length (respecting the strategy's minimum), then
        //    try dropping just the last element.
        let half = (value.len() / 2).max(self.size.lo);
        if half < value.len() {
            out.push(value[..half].to_vec());
        }
        if value.len() > self.size.lo && value.len() - 1 != half {
            out.push(value[..value.len() - 1].to_vec());
        }
        // 2. Shrink individual elements (first candidate each), keeping
        //    the length fixed.
        for (i, v) in value.iter().enumerate() {
            if let Some(cand) = self.element.shrink(v).into_iter().next() {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
    fn note_adopted(&self, prev: &Vec<S::Value>, idx: usize) {
        // Mirror `shrink`'s candidate order: optional halve, optional
        // drop-last (both length-only — nothing to forward), then one
        // candidate per element that has a shrink (its first).
        let mut offset = idx;
        let half = (prev.len() / 2).max(self.size.lo);
        if half < prev.len() {
            if offset == 0 {
                return;
            }
            offset -= 1;
        }
        if prev.len() > self.size.lo && prev.len() - 1 != half {
            if offset == 0 {
                return;
            }
            offset -= 1;
        }
        for v in prev.iter() {
            if self.element.shrink(v).is_empty() {
                continue;
            }
            if offset == 0 {
                self.element.note_adopted(v, 0);
                return;
            }
            offset -= 1;
        }
    }
}
