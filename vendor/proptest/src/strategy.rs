//! The [`Strategy`] trait and combinators.

use rand::rngs::StdRng;
use rand::SampleUniform;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate with `self`, then build a second strategy from the value
    /// and generate from that (upstream `prop_flat_map`).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`, retrying on rejection.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

// A reference to a strategy is itself a strategy (lets the same strategy
// be reused across tuple elements and helper calls).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}`: rejected 1000 draws in a row", self.whence);
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

/// Object-safe subset of [`Strategy`] used by [`BoxedStrategy`].
trait StrategyObject {
    type Value;
    fn new_value_dyn(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> StrategyObject for S {
    type Value = S::Value;
    fn new_value_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.new_value(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.new_value_dyn(rng)
    }
}

// Ranges of samplable primitives are strategies: `0u64..10_000`,
// `-10.0f32..10.0`, `1u64..=nodes`, ...
impl<T: SampleUniform + Clone> Strategy for Range<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Clone> Strategy for RangeInclusive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

// Tuples of strategies are strategies over tuples of values.
macro_rules! impl_strategy_tuple {
    ($($S:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($S,)+) = self;
                ($($S.new_value(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);
impl_strategy_tuple!(A, B, C, D, E, F, G);
impl_strategy_tuple!(A, B, C, D, E, F, G, H);
