//! The [`Strategy`] trait and combinators.

use rand::rngs::StdRng;
use rand::SampleUniform;
use std::cell::RefCell;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree: a strategy is a
/// deterministic function of the RNG stream, plus an optional
/// [`Strategy::shrink`] step the runner uses to minimize failing cases
/// by halving/bisection (numeric ranges bisect toward their low bound,
/// vectors halve their length). Mapped strategies ([`Map`]) cannot
/// invert their closure, so they shrink the remembered *preimage* of the
/// last drawn value and map the candidates forward — the
/// [`Strategy::note_adopted`] hook keeps that preimage in lockstep with
/// the minimizer's greedy descent.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, simplest first.
    /// The default is no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// The minimizer adopted `shrink(prev)[idx]` as its new failing
    /// value. Stateless strategies ignore this (the default); stateful
    /// ones ([`Map`], and combinators that *contain* strategies) advance
    /// their remembered preimage / forward to the responsible inner
    /// strategy, so the next shrink round continues from the adopted
    /// candidate instead of the original failure.
    fn note_adopted(&self, _prev: &Self::Value, _idx: usize) {}

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            inner: self,
            f,
            last_inner: RefCell::new(None),
        }
    }

    /// Generate with `self`, then build a second strategy from the value
    /// and generate from that (upstream `prop_flat_map`).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`, retrying on rejection.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

// A reference to a strategy is itself a strategy (lets the same strategy
// be reused across tuple elements and helper calls).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
    fn note_adopted(&self, prev: &Self::Value, idx: usize) {
        (**self).note_adopted(prev, idx)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
///
/// A map cannot invert its closure, so shrinking works on the
/// *preimage*: `new_value` remembers the inner value it drew, `shrink`
/// shrinks that remembered preimage and maps the candidates forward,
/// and [`Strategy::note_adopted`] replaces the preimage with the
/// candidate's preimage whenever the minimizer adopts one. The minimizer
/// re-runs every candidate it adopts, so a stale preimage (e.g. one map
/// strategy shared across many vector elements) can only cost shrink
/// quality, never soundness.
pub struct Map<S: Strategy, F> {
    inner: S,
    f: F,
    last_inner: RefCell<Option<S::Value>>,
}

impl<S, F> Clone for Map<S, F>
where
    S: Strategy + Clone,
    S::Value: Clone,
    F: Clone,
{
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: self.f.clone(),
            last_inner: RefCell::new(self.last_inner.borrow().clone()),
        }
    }
}

impl<S, F> std::fmt::Debug for Map<S, F>
where
    S: Strategy + std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Map").field("inner", &self.inner).finish()
    }
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        let inner = self.inner.new_value(rng);
        *self.last_inner.borrow_mut() = Some(inner.clone());
        (self.f)(inner)
    }
    fn shrink(&self, _value: &U) -> Vec<U> {
        let guard = self.last_inner.borrow();
        let Some(pre) = guard.as_ref() else {
            return Vec::new();
        };
        self.inner
            .shrink(pre)
            .into_iter()
            .map(|cand| (self.f)(cand))
            .collect()
    }
    fn note_adopted(&self, _prev: &U, idx: usize) {
        let adopted = {
            let guard = self.last_inner.borrow();
            let Some(pre) = guard.as_ref() else { return };
            let mut cands = self.inner.shrink(pre);
            if idx >= cands.len() {
                return;
            }
            // Let the inner strategy advance its own state first (it may
            // itself be a map), then take over its adopted candidate as
            // the new preimage.
            self.inner.note_adopted(pre, idx);
            cands.swap_remove(idx)
        };
        *self.last_inner.borrow_mut() = Some(adopted);
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}`: rejected 1000 draws in a row", self.whence);
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        // Shrink through the inner strategy, keeping only candidates
        // that still satisfy the predicate.
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.pred)(v))
            .collect()
    }
    fn note_adopted(&self, value: &S::Value, idx: usize) {
        // `idx` indexes the *filtered* candidate list; recover the inner
        // strategy's index by walking the unfiltered one.
        let mut kept = 0;
        for (inner_idx, cand) in self.inner.shrink(value).into_iter().enumerate() {
            if (self.pred)(&cand) {
                if kept == idx {
                    self.inner.note_adopted(value, inner_idx);
                    return;
                }
                kept += 1;
            }
        }
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

/// Object-safe subset of [`Strategy`] used by [`BoxedStrategy`].
trait StrategyObject {
    type Value;
    fn new_value_dyn(&self, rng: &mut StdRng) -> Self::Value;
    fn shrink_dyn(&self, value: &Self::Value) -> Vec<Self::Value>;
    fn note_adopted_dyn(&self, prev: &Self::Value, idx: usize);
}

impl<S: Strategy> StrategyObject for S {
    type Value = S::Value;
    fn new_value_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.new_value(rng)
    }
    fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
    fn note_adopted_dyn(&self, prev: &S::Value, idx: usize) {
        self.note_adopted(prev, idx)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.new_value_dyn(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink_dyn(value)
    }
    fn note_adopted(&self, prev: &T, idx: usize) {
        self.0.note_adopted_dyn(prev, idx)
    }
}

/// Halving/bisection shrink steps for primitives: candidates between a
/// range's low bound and the failing value, simplest (the bound) first.
pub trait Bisect: Sized {
    /// Candidate simplifications of `value` toward `low`, excluding
    /// `value` itself. Empty when the value is already minimal.
    fn bisect_toward(low: &Self, value: &Self) -> Vec<Self>;
}

macro_rules! impl_bisect_int {
    ($($t:ty),*) => {$(
        impl Bisect for $t {
            fn bisect_toward(low: &Self, value: &Self) -> Vec<Self> {
                if value <= low {
                    return Vec::new();
                }
                // A bisection ladder ascending from `low` toward `value`
                // with halving gaps: [low, v - gap/2, v - gap/4, ...,
                // v - 1]. The greedy minimizer adopts the *first* failing
                // rung, so each round halves the remaining interval and
                // the search converges to the failure boundary in
                // O(log^2) probes instead of decrement-crawling.
                let mut out = vec![*low];
                let mut gap = (value - low) / 2;
                while gap > 0 {
                    let rung = value - gap;
                    if out.last() != Some(&rung) && rung != *value {
                        out.push(rung);
                    }
                    gap /= 2;
                }
                out
            }
        }
    )*};
}

impl_bisect_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_bisect_float {
    ($($t:ty),*) => {$(
        impl Bisect for $t {
            fn bisect_toward(low: &Self, value: &Self) -> Vec<Self> {
                if value.partial_cmp(low) != Some(std::cmp::Ordering::Greater)
                    || !low.is_finite()
                    || !value.is_finite()
                {
                    return Vec::new();
                }
                let mut out = vec![*low];
                let mut gap = (value - low) / 2.0;
                for _ in 0..24 {
                    let rung = value - gap;
                    if rung.is_finite() && out.last() != Some(&rung) && rung != *value {
                        out.push(rung);
                    }
                    gap /= 2.0;
                    if gap <= 0.0 {
                        break;
                    }
                }
                out
            }
        }
    )*};
}

impl_bisect_float!(f32, f64);

// Ranges of samplable primitives are strategies: `0u64..10_000`,
// `-10.0f32..10.0`, `1u64..=nodes`, ... Failing draws shrink by
// bisection toward the range's low bound.
impl<T: SampleUniform + Clone + Bisect> Strategy for Range<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::bisect_toward(&self.start, value)
    }
}

impl<T: SampleUniform + Clone + Bisect> Strategy for RangeInclusive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::bisect_toward(self.start(), value)
    }
}

// Tuples of strategies are strategies over tuples of values; shrinking
// simplifies one element at a time (values must be Clone for that).
macro_rules! impl_strategy_tuple {
    ($(($S:ident, $idx:tt)),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone,)+
        {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
            fn note_adopted(&self, prev: &Self::Value, idx: usize) {
                // Candidates are element-major (all of element 0's, then
                // element 1's, ...): walk per-element candidate counts to
                // find the element that produced candidate `idx`.
                let mut offset = idx;
                $(
                    {
                        let n = self.$idx.shrink(&prev.$idx).len();
                        if offset < n {
                            self.$idx.note_adopted(&prev.$idx, offset);
                            return;
                        }
                        offset -= n;
                    }
                )+
                let _ = offset;
            }
        }
    };
}

impl_strategy_tuple!((A, 0));
impl_strategy_tuple!((A, 0), (B, 1));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6), (H, 7));
