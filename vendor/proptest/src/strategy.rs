//! The [`Strategy`] trait and combinators.

use rand::rngs::StdRng;
use rand::SampleUniform;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree: a strategy is a
/// deterministic function of the RNG stream, plus an optional
/// [`Strategy::shrink`] step the runner uses to minimize failing cases
/// by halving/bisection (numeric ranges bisect toward their low bound,
/// vectors halve their length). Mapped strategies cannot invert their
/// closure and therefore do not shrink.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, simplest first.
    /// The default is no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate with `self`, then build a second strategy from the value
    /// and generate from that (upstream `prop_flat_map`).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`, retrying on rejection.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

// A reference to a strategy is itself a strategy (lets the same strategy
// be reused across tuple elements and helper calls).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}`: rejected 1000 draws in a row", self.whence);
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        // Shrink through the inner strategy, keeping only candidates
        // that still satisfy the predicate.
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.pred)(v))
            .collect()
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

/// Object-safe subset of [`Strategy`] used by [`BoxedStrategy`].
trait StrategyObject {
    type Value;
    fn new_value_dyn(&self, rng: &mut StdRng) -> Self::Value;
    fn shrink_dyn(&self, value: &Self::Value) -> Vec<Self::Value>;
}

impl<S: Strategy> StrategyObject for S {
    type Value = S::Value;
    fn new_value_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.new_value(rng)
    }
    fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.new_value_dyn(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink_dyn(value)
    }
}

/// Halving/bisection shrink steps for primitives: candidates between a
/// range's low bound and the failing value, simplest (the bound) first.
pub trait Bisect: Sized {
    /// Candidate simplifications of `value` toward `low`, excluding
    /// `value` itself. Empty when the value is already minimal.
    fn bisect_toward(low: &Self, value: &Self) -> Vec<Self>;
}

macro_rules! impl_bisect_int {
    ($($t:ty),*) => {$(
        impl Bisect for $t {
            fn bisect_toward(low: &Self, value: &Self) -> Vec<Self> {
                if value <= low {
                    return Vec::new();
                }
                // A bisection ladder ascending from `low` toward `value`
                // with halving gaps: [low, v - gap/2, v - gap/4, ...,
                // v - 1]. The greedy minimizer adopts the *first* failing
                // rung, so each round halves the remaining interval and
                // the search converges to the failure boundary in
                // O(log^2) probes instead of decrement-crawling.
                let mut out = vec![*low];
                let mut gap = (value - low) / 2;
                while gap > 0 {
                    let rung = value - gap;
                    if out.last() != Some(&rung) && rung != *value {
                        out.push(rung);
                    }
                    gap /= 2;
                }
                out
            }
        }
    )*};
}

impl_bisect_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_bisect_float {
    ($($t:ty),*) => {$(
        impl Bisect for $t {
            fn bisect_toward(low: &Self, value: &Self) -> Vec<Self> {
                if value.partial_cmp(low) != Some(std::cmp::Ordering::Greater)
                    || !low.is_finite()
                    || !value.is_finite()
                {
                    return Vec::new();
                }
                let mut out = vec![*low];
                let mut gap = (value - low) / 2.0;
                for _ in 0..24 {
                    let rung = value - gap;
                    if rung.is_finite() && out.last() != Some(&rung) && rung != *value {
                        out.push(rung);
                    }
                    gap /= 2.0;
                    if gap <= 0.0 {
                        break;
                    }
                }
                out
            }
        }
    )*};
}

impl_bisect_float!(f32, f64);

// Ranges of samplable primitives are strategies: `0u64..10_000`,
// `-10.0f32..10.0`, `1u64..=nodes`, ... Failing draws shrink by
// bisection toward the range's low bound.
impl<T: SampleUniform + Clone + Bisect> Strategy for Range<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::bisect_toward(&self.start, value)
    }
}

impl<T: SampleUniform + Clone + Bisect> Strategy for RangeInclusive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::bisect_toward(self.start(), value)
    }
}

// Tuples of strategies are strategies over tuples of values; shrinking
// simplifies one element at a time (values must be Clone for that).
macro_rules! impl_strategy_tuple {
    ($(($S:ident, $idx:tt)),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone,)+
        {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_strategy_tuple!((A, 0));
impl_strategy_tuple!((A, 0), (B, 1));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6), (H, 7));
