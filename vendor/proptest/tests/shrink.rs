//! The shrinking engine reports *minimized* counterexamples: a failing
//! property's panic message must contain the smallest failing value the
//! halving/bisection search can reach, not the original random draw.

use proptest::prelude::*;

fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(f);
    std::panic::set_hook(hook);
    let payload = result.expect_err("property must fail");
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("non-string panic payload")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Not #[test]: driven manually through catch_unwind below.
    fn fails_above_ten(x in 0u64..100_000) {
        prop_assert!(x <= 10, "x = {x} exceeds 10");
    }

    fn fails_on_long_vecs(v in prop::collection::vec(0u32..9, 0..64)) {
        prop_assert!(v.len() <= 3, "len = {}", v.len());
    }

    fn plain_assert_also_shrinks(x in 0i64..1_000_000) {
        // A bare assert! (no prop_ prefix) must still shrink: body panics
        // are caught and treated as failures.
        assert!(x < 500, "plain assert: {x}");
    }

    fn mapped_values_shrink(x in (0u64..100_000).prop_map(|v| v * 2)) {
        // The closure can't be inverted; the strategy shrinks its
        // remembered preimage and maps candidates forward.
        prop_assert!(x <= 20, "x = {x} exceeds 20");
    }

    fn chained_maps_shrink(x in (0u64..4_096).prop_map(|v| v + 1).prop_map(|v| v * 10)) {
        // note_adopted must propagate through nested Map layers so each
        // keeps the preimage of the adopted candidate.
        prop_assert!(x <= 100, "x = {x} exceeds 100");
    }

    fn mapped_non_numeric_values_shrink(s in (0u32..65_536).prop_map(|v| format!("id-{v}"))) {
        // Preimage shrinking works even when the mapped value has no
        // numeric structure of its own.
        let n: u32 = s[3..].parse().unwrap();
        prop_assert!(n <= 10, "{s} exceeds id-10");
    }

    fn mapped_tuple_elements_shrink(
        x in (0u64..100_000).prop_map(|v| v + 1),
        _y in 0u64..100_000,
    ) {
        // Tuple shrinking forwards note_adopted to the element that
        // produced the adopted candidate; the mapped element converges
        // to its boundary while the plain one bisects to its minimum.
        prop_assert!(x <= 5, "x = {x} exceeds 5");
    }
}

#[test]
fn numeric_counterexample_is_minimal() {
    let msg = panic_message(fails_above_ten);
    // Bisection toward 0 with a final -1 step lands exactly on the
    // boundary: 11 is the smallest value violating x <= 10.
    assert!(
        msg.contains("minimal counterexample"),
        "shrink summary missing: {msg}"
    );
    assert!(msg.contains("11"), "expected the boundary value 11 in: {msg}");
    assert!(msg.contains("shrink steps"), "step count missing: {msg}");
}

#[test]
fn vec_counterexample_is_minimal_length() {
    let msg = panic_message(fails_on_long_vecs);
    // Length halving + drop-last converges to the shortest failing
    // length, 4; element shrinking turns every entry into the range
    // minimum 0.
    assert!(msg.contains("len = 4") || msg.contains("minimal counterexample"), "{msg}");
    let wanted = "0,\n    0,\n    0,\n    0,\n]";
    assert!(
        msg.replace(' ', "").contains(&wanted.replace(' ', ""))
            || msg.contains("[0, 0, 0, 0]")
            || msg.contains("0,\n        0,\n        0,\n        0,"),
        "expected a 4-zero vector in: {msg}"
    );
}

#[test]
fn plain_asserts_shrink_too() {
    let msg = panic_message(plain_assert_also_shrinks);
    assert!(msg.contains("minimal counterexample"), "{msg}");
    assert!(msg.contains("500"), "boundary 500 expected in: {msg}");
}

#[test]
fn mapped_counterexample_is_minimal() {
    let msg = panic_message(mapped_values_shrink);
    // Preimage bisection converges to 11, the smallest v with 2v > 20,
    // so the reported mapped counterexample is exactly 22.
    assert!(msg.contains("minimal counterexample"), "{msg}");
    assert!(msg.contains("22"), "expected the boundary value 22 in: {msg}");
}

#[test]
fn chained_mapped_counterexample_is_minimal() {
    let msg = panic_message(chained_maps_shrink);
    // Smallest failing value of (v + 1) * 10 > 100 is v = 10 → 110.
    assert!(msg.contains("minimal counterexample"), "{msg}");
    assert!(msg.contains("110"), "expected the boundary value 110 in: {msg}");
}

#[test]
fn mapped_non_numeric_counterexample_is_minimal() {
    let msg = panic_message(mapped_non_numeric_values_shrink);
    assert!(msg.contains("minimal counterexample"), "{msg}");
    assert!(msg.contains("id-11"), "expected \"id-11\" in: {msg}");
}

#[test]
fn mapped_tuple_counterexample_is_minimal() {
    let msg = panic_message(mapped_tuple_elements_shrink);
    // The mapped element converges to its boundary (preimage 5 → 6) and
    // the unconstrained element bisects all the way to 0.
    assert!(msg.contains("minimal counterexample"), "{msg}");
    let squeezed = msg.replace([' ', '\n'], "");
    assert!(
        squeezed.contains("(6,0,)") || squeezed.contains("(6,0)"),
        "expected the pair (6, 0) in: {msg}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn passing_properties_still_pass(x in 0u64..100, y in 0u64..100) {
        prop_assert!(x < 100 && y < 100);
    }
}
