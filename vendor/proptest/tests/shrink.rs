//! The shrinking engine reports *minimized* counterexamples: a failing
//! property's panic message must contain the smallest failing value the
//! halving/bisection search can reach, not the original random draw.

use proptest::prelude::*;

fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(f);
    std::panic::set_hook(hook);
    let payload = result.expect_err("property must fail");
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("non-string panic payload")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Not #[test]: driven manually through catch_unwind below.
    fn fails_above_ten(x in 0u64..100_000) {
        prop_assert!(x <= 10, "x = {x} exceeds 10");
    }

    fn fails_on_long_vecs(v in prop::collection::vec(0u32..9, 0..64)) {
        prop_assert!(v.len() <= 3, "len = {}", v.len());
    }

    fn plain_assert_also_shrinks(x in 0i64..1_000_000) {
        // A bare assert! (no prop_ prefix) must still shrink: body panics
        // are caught and treated as failures.
        assert!(x < 500, "plain assert: {x}");
    }
}

#[test]
fn numeric_counterexample_is_minimal() {
    let msg = panic_message(fails_above_ten);
    // Bisection toward 0 with a final -1 step lands exactly on the
    // boundary: 11 is the smallest value violating x <= 10.
    assert!(
        msg.contains("minimal counterexample"),
        "shrink summary missing: {msg}"
    );
    assert!(msg.contains("11"), "expected the boundary value 11 in: {msg}");
    assert!(msg.contains("shrink steps"), "step count missing: {msg}");
}

#[test]
fn vec_counterexample_is_minimal_length() {
    let msg = panic_message(fails_on_long_vecs);
    // Length halving + drop-last converges to the shortest failing
    // length, 4; element shrinking turns every entry into the range
    // minimum 0.
    assert!(msg.contains("len = 4") || msg.contains("minimal counterexample"), "{msg}");
    let wanted = "0,\n    0,\n    0,\n    0,\n]";
    assert!(
        msg.replace(' ', "").contains(&wanted.replace(' ', ""))
            || msg.contains("[0, 0, 0, 0]")
            || msg.contains("0,\n        0,\n        0,\n        0,"),
        "expected a 4-zero vector in: {msg}"
    );
}

#[test]
fn plain_asserts_shrink_too() {
    let msg = panic_message(plain_assert_also_shrinks);
    assert!(msg.contains("minimal counterexample"), "{msg}");
    assert!(msg.contains("500"), "boundary 500 expected in: {msg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn passing_properties_still_pass(x in 0u64..100, y in 0u64..100) {
        prop_assert!(x < 100 && y < 100);
    }
}
