//! Offline vendored stand-in for the subset of the `rand` 0.8 API used by
//! this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the surface the MRSch reproduction consumes:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::StdRng`] — a small, fast, deterministic generator
//!   (xoshiro256++ seeded via SplitMix64),
//! * `gen::<f32/f64/u32/u64/usize/bool>()`, `gen_range(a..b)` /
//!   `gen_range(a..=b)` for the integer and float types the workspace
//!   draws, and `gen_bool(p)`.
//!
//! Determinism is the only contract: a fixed seed yields a fixed stream.
//! The streams do **not** match upstream `rand`; nothing in the
//! reproduction depends on upstream streams.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (same spirit as
    /// upstream: any u64 gives a well-mixed full-entropy seed).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            let bytes = v.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types drawable uniformly by [`Rng::gen`] (upstream: the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly samplable from a range (upstream: `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = (hi_w - lo_w) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range {lo}..{hi}");
                // Modulo reduction: bias is < 2^-64 per draw for every span
                // this workspace uses; determinism, not equidistribution,
                // is the contract here.
                let v = rng.next_u64() as u128 % span as u128;
                (lo_w + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($t:ty, $standard:ty) => {
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    };
}

impl_sample_uniform_float!(f32, f32);
impl_sample_uniform_float!(f64, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (including unsized `&mut dyn` receivers).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++.
    ///
    /// Small, fast, and high-quality; stream stability across this
    /// workspace's versions is guaranteed (the algorithm is pinned).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
