//! Offline vendored facade for the `serde` names this workspace uses.
//!
//! The seed code only ever writes `#[derive(Serialize, Deserialize)]`
//! (plus `#[serde(skip)]` field attributes) — it never serializes through
//! serde. With no network access to crates.io, this facade supplies the
//! two trait names as universally-satisfied markers and re-exports no-op
//! derives, so the annotations compile unchanged and real serde can be
//! swapped back in the moment the environment allows it.
//!
//! **Actual serialization does not go through these derives.** The
//! workspace's binary persistence — simulator snapshots, network
//! checkpoints, policy-cache entries — lives in `mrsch-snapshot`
//! (`crates/snapshot`): a hand-rolled, dependency-free little-endian
//! codec with explicit `Encode`/`Decode` impls, length-framed fields,
//! and FNV-checksummed frames. That crate supersedes the original plan
//! of making these derives produce a real format; the no-op markers
//! remain only so `#[derive(...)]` annotations keep compiling.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize<'de>`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: ?Sized + for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}
