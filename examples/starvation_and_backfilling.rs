//! Starvation and backfilling — why §III-C exists.
//!
//! HPC queues mix week-long full-machine jobs with second-scale debug
//! jobs. Without reservations a large job can be starved indefinitely by
//! a stream of small arrivals; without backfilling the machine drains
//! idle while the large job waits. This example constructs exactly that
//! queue and runs it three ways:
//!
//! 1. FCFS with reservation + EASY backfilling (the production setup),
//! 2. FCFS with reservation but **no** backfilling,
//! 3. a greedy "smallest-first" policy with no reservation — the
//!    behavior the paper observed when applying raw DFP without the
//!    §III-C protections ("severe job starvation").
//!
//! Run with:
//! ```text
//! cargo run --release --example starvation_and_backfilling
//! ```

use mrsim::job::Job;
use mrsim::policy::{HeadOfQueue, Policy, SchedulerView};
use mrsim::resources::SystemConfig;
use mrsim::simulator::{SimParams, Simulator};

/// Greedy policy that always grabs the smallest *fitting* job — great
/// instantaneous utilization, pathological starvation.
#[derive(Default)]
struct SmallestFirst;

impl Policy for SmallestFirst {
    fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
        view.window
            .iter()
            .enumerate()
            .filter(|(_, jv)| view.pools.fits(&jv.job.demands))
            .min_by_key(|(_, jv)| jv.job.demands[0])
            .map(|(i, _)| i)
    }
    fn name(&self) -> &'static str {
        "smallest-first"
    }
}

fn workload() -> Vec<Job> {
    let mut jobs = Vec::new();
    let mut id = 0;
    // Six "long" 7-node jobs saturate the machine first (4 run, 2 queue).
    for i in 0..6u64 {
        jobs.push(Job::new(id, i * 60, 5400, 7200, vec![7, 0]));
        id += 1;
    }
    // The full-machine job arrives while the machine is busy.
    let big_id = id;
    jobs.push(Job::new(big_id, 600, 2 * 3600, 2 * 3600, vec![32, 0]));
    id += 1;
    // A steady stream of small, short jobs that could starve it forever.
    for i in 0..150u64 {
        jobs.push(Job::new(id, 700 + i * 90, 600, 600, vec![2, 1]));
        id += 1;
    }
    jobs
}

/// Id of the full-machine job in [`workload`].
const BIG: usize = 6;

fn main() {
    let system = SystemConfig::two_resource(32, 8);
    let run = |label: &str, policy: &mut dyn Policy, backfill: bool| {
        let params = SimParams::new(10, backfill);
        let report = Simulator::new(system.clone(), workload(), params)
            .expect("valid jobs")
            .run(policy);
        let big = report.records.iter().find(|r| r.id == BIG).unwrap();
        println!(
            "{:<28} big-job wait {:>7.2} h | max wait {:>7.2} h | avg wait {:>6.2} h | backfilled {:>2} | util {:>5.1}%",
            label,
            big.wait() as f64 / 3600.0,
            report.max_wait as f64 / 3600.0,
            report.avg_wait_hours(),
            report.backfilled_jobs,
            100.0 * report.resource_utilization[0],
        );
        report
    };

    println!("32-node machine; 6 long jobs, 1 full-machine job, 150 small short jobs\n");
    let with_bf = run("FCFS + reservation + EASY", &mut HeadOfQueue, true);
    let no_bf = run("FCFS + reservation only", &mut HeadOfQueue, false);
    let greedy = run("smallest-first, no guard", &mut SmallestFirst, true);

    let big = |r: &mrsim::SimReport| r.records.iter().find(|x| x.id == BIG).unwrap().wait();
    println!("\nobservations:");
    println!(
        "  - EASY backfilling keeps utilization up without delaying the big job \
         (wait {} s with vs {} s without backfilling)",
        big(&with_bf),
        big(&no_bf)
    );
    println!(
        "  - the unguarded greedy policy starves the full-machine job: {} s \
         ({:.2}x the guarded wait) — exactly why MRSch adopts the window + reservation",
        big(&greedy),
        big(&greedy) as f64 / big(&with_bf).max(1) as f64
    );
}
