//! Evaluate several registry policies across scenarios and seeds with
//! one `EvalPlan` — the API every comparison driver now goes through.
//!
//! ```text
//! cargo run --release --example evaluate_policies
//! ```
//!
//! Builds a `policies × scenarios × seeds` grid (FCFS, LPT list
//! scheduling, the GA optimizer and a briefly-trained MRSch on a clean
//! and a drain-disrupted scenario, two seeds each), runs it on worker
//! threads, and prints the seed-aggregated table plus the per-cell CSV.

use mrsch::prelude::*;
use mrsch_eval::{EvalPlan, PolicySpec, ScenarioSpec};

fn main() {
    let system = SystemConfig::two_resource(32, 12);
    let params = SimParams::new(5, true);
    let source = JobSource::Theta(ThetaConfig { machine_nodes: 32, ..ThetaConfig::scaled(60) });
    let spec = WorkloadSpec::s1();

    let scenarios = ["clean", "drain"]
        .into_iter()
        .map(|name| {
            ScenarioSpec::parse(name).unwrap().build(source.clone(), spec.clone(), params, 7)
        })
        .collect();
    let policies = vec![
        PolicySpec::Fcfs,
        PolicySpec::parse("list:lpt").unwrap(),
        PolicySpec::Ga,
        PolicySpec::mrsch(),
    ];

    let plan = EvalPlan::new(system, policies, scenarios, vec![1, 2]).train_episodes(2);
    let cells = plan.cell_count();
    let grid = plan.run();
    assert_eq!(grid.cells.len(), cells, "every grid cell must run");

    println!("evaluated {} cells (4 policies x 2 scenarios x 2 seeds)\n", cells);
    print!("{}", grid.render_aggregate_table());

    let (header, rows) = grid.cell_csv();
    println!("\nper-cell CSV:\n{}", mrsch_eval::table::to_csv(&header, &rows));

    // The drain scenario must actually have cost capacity somewhere.
    assert!(
        grid.cells
            .iter()
            .filter(|c| c.scenario == "drain")
            .any(|c| c.report.capacity_lost_unit_seconds[0] > 0.0),
        "drain scenario lost no capacity"
    );
    // Every policy completed every clean-scenario job.
    for c in grid.cells.iter().filter(|c| c.scenario == "clean") {
        assert!(c.report.jobs_completed > 0, "{} completed nothing", c.policy);
    }
}
