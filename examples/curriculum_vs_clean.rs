//! Curriculum-hardened vs clean-trained MRSch on a node-drain trace —
//! the training counterpart of `node_drain_recovery`.
//!
//! PR 2 made the simulator disruption-capable; this example closes the
//! loop: two MRSch agents start from the identical seed and network
//! init and train through the scenario engine with 2 parallel rollout
//! workers on the *same episode budget* — one on clean traffic only,
//! one through the disruption-hardening curriculum (clean →
//! cancel/overrun-heavy → drain-heavy). Both are then evaluated
//! greedily on the identical held-out workload under a 25 % mid-trace
//! node drain with user cancellations and walltime overruns, with full
//! disruption accounting.
//!
//! The hardened agent has seen drained capacity, tombstoned cancels and
//! walltime kills during training; the clean agent meets them for the
//! first time at evaluation. The example prints both reports and
//! asserts the hardened agent wins on at least one drain-trace metric.
//!
//! Run with:
//! ```text
//! cargo run --release --example curriculum_vs_clean
//! ```

use mrsch::prelude::*;
use mrsch_workload::split::paper_split;

fn print_report(label: &str, r: &SimReport) {
    println!("\n{label}:");
    println!(
        "  finished {} | cancelled {} | killed {} | unfinished {}",
        r.jobs_completed, r.jobs_cancelled, r.jobs_killed, r.jobs_unfinished
    );
    println!(
        "  node util {:.4} | bb util {:.4} | avg wait {:.3} h | avg slowdown {:.3} | makespan {} s",
        r.resource_utilization[0],
        r.resource_utilization[1],
        r.avg_wait_hours(),
        r.avg_slowdown,
        r.makespan
    );
    println!(
        "  capacity lost {:.0} node-seconds",
        r.capacity_lost_unit_seconds[0]
    );
}

fn main() {
    let system = SystemConfig::two_resource(48, 16);
    let spec = WorkloadSpec::s2();
    let window = 4;
    let trace = ThetaConfig { machine_nodes: 48, ..ThetaConfig::scaled(320) }.generate(17);
    let split = paper_split(&trace);
    let train_slice = &split.train[..100.min(split.train.len())];
    let eval_jobs = spec.build(&split.test[..90.min(split.test.len())], &system, 2);

    // The evaluation disruptions: a 25% node drain a third of the way
    // in (one simulated hour), plus cancels and enforced overruns.
    let last_submit = eval_jobs.iter().map(|j| j.submit).max().unwrap_or(0);
    let eval_disruption = DisruptionConfig {
        cancel_fraction: 0.15,
        overrun_fraction: 0.10,
        overrun_factor: 1.5,
        drains: vec![DrainSpec { resource: 0, fraction: 0.25, at: last_submit / 3, duration: 3600 }],
    };
    let disrupted = eval_disruption.synthesize(&eval_jobs, &system, 99);
    let eval_params = SimParams { enforce_walltime: true, ..SimParams::new(window, true) };

    // Both curricula share the clean scenario and a 6-episode budget.
    let clean_scenario = Scenario::new(
        "clean",
        JobSource::Trace(train_slice.to_vec()),
        spec.clone(),
        SimParams::new(window, true),
    )
    .with_seed(5);
    let clean_curriculum =
        Curriculum::new().phase(CurriculumPhase::new(clean_scenario.clone(), 6));
    let hardened_curriculum = Curriculum::disruption_hardening(
        clean_scenario,
        DisruptionConfig {
            cancel_fraction: 0.25,
            overrun_fraction: 0.15,
            overrun_factor: 1.5,
            drains: Vec::new(),
        },
        eval_disruption.clone(),
        2,
    );

    let trainer = TrainerConfig::default().workers(2).round_size(2).batches_per_episode(16);
    let train = |curriculum: &Curriculum, label: &str| -> SimReport {
        let mut agent = MrschBuilder::new(system.clone(), eval_params)
            .seed(11)
            .trainer(trainer.clone())
            .build();
        let outcome = agent.train_with_curriculum(curriculum);
        println!(
            "trained '{label}': {} episodes over {} phase(s), final loss {:?}",
            outcome.total_episodes(),
            outcome.phases.len(),
            outcome.final_loss()
        );
        for p in &outcome.phases {
            let cancels: usize = p.reports.iter().map(|r| r.jobs_cancelled).sum();
            let kills: usize = p.reports.iter().map(|r| r.jobs_killed).sum();
            let lost: f64 = p.reports.iter().map(|r| r.capacity_lost_unit_seconds[0]).sum();
            println!(
                "  phase {:<14} {} episodes | cancelled {cancels} | killed {kills} | lost {lost:.0} node-s",
                p.name, p.episodes
            );
        }
        agent
            .evaluate_disrupted(&disrupted.jobs, &disrupted.events)
            .expect("valid disruption trace")
    };

    println!(
        "system: 48 nodes, 16 BB units | {} eval jobs | 25% drain at t={} for 3600 s",
        disrupted.jobs.len(),
        last_submit / 3
    );
    let clean_report = train(&clean_curriculum, "clean only");
    let hardened_report = train(&hardened_curriculum, "disruption hardened");

    print_report("MRSch trained on clean traffic only", &clean_report);
    print_report("MRSch hardened on the disruption curriculum", &hardened_report);

    for (label, r) in [("clean", &clean_report), ("hardened", &hardened_report)] {
        assert!(
            r.all_jobs_accounted(disrupted.jobs.len()),
            "{label}: every job must end finished/cancelled/killed"
        );
        assert!(r.capacity_lost_unit_seconds[0] > 0.0, "{label}: the drain must cost node-seconds");
        assert!(r.jobs_cancelled > 0, "{label}: cancels must land");
        assert!(r.jobs_killed > 0, "{label}: walltime kills must land");
    }

    // The hardened agent must beat the clean one on >= 1 drain-trace
    // metric (all lower-is-better except utilization).
    let mut wins = Vec::new();
    if hardened_report.avg_wait < clean_report.avg_wait {
        wins.push(format!(
            "avg wait {:.3} h < {:.3} h",
            hardened_report.avg_wait_hours(),
            clean_report.avg_wait_hours()
        ));
    }
    if hardened_report.avg_slowdown < clean_report.avg_slowdown {
        wins.push(format!(
            "avg slowdown {:.3} < {:.3}",
            hardened_report.avg_slowdown, clean_report.avg_slowdown
        ));
    }
    if hardened_report.makespan < clean_report.makespan {
        wins.push(format!(
            "makespan {} s < {} s",
            hardened_report.makespan, clean_report.makespan
        ));
    }
    if hardened_report.max_wait < clean_report.max_wait {
        wins.push(format!(
            "max wait {} s < {} s",
            hardened_report.max_wait, clean_report.max_wait
        ));
    }
    if hardened_report.resource_utilization[0] > clean_report.resource_utilization[0] {
        wins.push(format!(
            "node util {:.4} > {:.4}",
            hardened_report.resource_utilization[0], clean_report.resource_utilization[0]
        ));
    }
    assert!(
        !wins.is_empty(),
        "the disruption-hardened agent must beat the clean-trained one on >= 1 metric"
    );
    println!("\nhardened agent wins on {} metric(s):", wins.len());
    for w in &wins {
        println!("  {w}");
    }
}
