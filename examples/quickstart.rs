//! Quickstart: build a small multi-resource system, train an MRSch agent
//! for a few episodes, and compare it against FCFS on a held-out
//! workload.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use mrsch::prelude::*;
use mrsch_workload::split::paper_split;

fn main() {
    // 1. A 64-node machine with a 20-unit (≈TB) shared burst buffer.
    let system = SystemConfig::two_resource(64, 20);
    let params = SimParams::new(5, true);

    // 2. Synthesize a Theta-like trace and derive the S4 workload
    //    (75 % of jobs request a large burst-buffer slice — heavy
    //    contention on the buffer).
    let trace_cfg = ThetaConfig { machine_nodes: 64, ..ThetaConfig::scaled(600) };
    let trace = trace_cfg.generate(42);
    let split = paper_split(&trace);
    let spec = WorkloadSpec::s4();
    let train_jobs = spec.build(&split.train[..200.min(split.train.len())], &system, 1);
    let eval_jobs = spec.build(&split.test[..100.min(split.test.len())], &system, 2);

    // 3. Build and train MRSch (a short curriculum: a few passes over the
    //    training slice).
    let mut mrsch = MrschBuilder::new(system.clone(), params)
        .seed(7)
        .batches_per_episode(16)
        .build();
    println!("training MRSch ({} parameters)…", {
        // Parameter count of the DFP network backing the agent.
        mrsch.agent().config().state_dim
    });
    for episode in 0..4 {
        let loss = mrsch.train_episode(&train_jobs);
        println!("  episode {episode}: eval loss {:?}", loss);
    }

    // 4. Evaluate MRSch and FCFS on the held-out jobs.
    let mrsch_report = mrsch.evaluate(&eval_jobs);
    let mut fcfs = HeadOfQueue;
    let fcfs_report = Simulator::new(system, eval_jobs.clone(), params)
        .expect("valid jobs")
        .run(&mut fcfs);

    println!("\n{:<12} {:>10} {:>10} {:>10} {:>10}", "method", "node util", "bb util", "wait(h)", "slowdown");
    for (name, r) in [("MRSch", &mrsch_report), ("FCFS", &fcfs_report)] {
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            name,
            r.resource_utilization[0],
            r.resource_utilization[1],
            r.avg_wait_hours(),
            r.avg_slowdown
        );
    }
    assert_eq!(mrsch_report.jobs_completed, eval_jobs.len());
    assert_eq!(fcfs_report.jobs_completed, eval_jobs.len());
}
