//! Burst-buffer contention study — the paper's motivating scenario
//! (§I: I/O-intensive applications whose performance hinges on fast
//! storage allocation, not raw CPU).
//!
//! Builds the full Table III suite (S1–S5) at laptop scale and runs all
//! four schedulers on each, printing the Fig. 5/6 metrics side by side.
//!
//! Run with:
//! ```text
//! cargo run --release --example burst_buffer_contention
//! ```

use mrsch_experiments::comparison::run_suite;
use mrsch_experiments::{fig5, fig6, fig7, ExpScale};
use mrsch_workload::suite::WorkloadSpec;

fn main() {
    // A mid-size scale: bigger than the test scale, smaller than the
    // full figure binaries.
    let mut scale = ExpScale::quick();
    scale.nodes = 96;
    scale.burst_buffer = 28;
    scale.eval_jobs = 120;
    scale.jobs_per_set = 60;
    scale.batches_per_episode = 16;

    println!(
        "running 4 schedulers x 5 workloads on a {}-node / {}-unit-BB system…\n",
        scale.nodes, scale.burst_buffer
    );
    let results = run_suite(&WorkloadSpec::two_resource_suite(), &scale, 2022);

    fig5::print(&results);
    println!();
    fig6::print(&results);
    println!();
    let charts = fig7::run(&results);
    fig7::print(&charts);

    let (wait_pct, sd_pct) = fig6::mrsch_improvements(&results);
    println!(
        "\nMRSch best-case improvements: wait -{wait_pct:.1}%, slowdown -{sd_pct:.1}% \
         (paper reports up to 48% / 41% at full scale)"
    );
}
