//! Tour the scenario registry's new families: workflow DAGs, bursty
//! open arrival streams, and energy-aware drains — all addressed by
//! spec string, exactly as `mrsch_cli evaluate --scenario` takes them.
//!
//! ```text
//! cargo run --release --example scenario_universe
//! ```
//!
//! Runs FCFS, SJF list scheduling and the GA optimizer over
//! `dag:chain:4`, `dag:fanout:3`, `bursty:diurnal:60`, `bursty:spike:6`
//! and `energy:drain` (two seeds each) and prints the aggregate table
//! plus the DAG cells' regret against the critical-path lower bound —
//! the policy-independent baseline every scheduler is measured from.

use mrsch::prelude::*;
use mrsch_eval::{EvalPlan, PolicySpec, ScenarioSpec};

fn main() {
    let system = SystemConfig::two_resource(32, 12);
    let params = SimParams::new(5, true);
    let source = JobSource::Theta(ThetaConfig { machine_nodes: 32, ..ThetaConfig::scaled(48) });
    let spec = WorkloadSpec::s1();

    let specs = ["dag:chain:4", "dag:fanout:3", "bursty:diurnal:60", "bursty:spike:6",
        "energy:drain"];
    let scenarios: Vec<Scenario> = specs
        .iter()
        .map(|s| ScenarioSpec::parse(s).unwrap().build(source.clone(), spec.clone(), params, 7))
        .collect();
    let policies = vec![
        PolicySpec::Fcfs,
        PolicySpec::parse("list:sjf").unwrap(),
        PolicySpec::Ga,
    ];

    let plan = EvalPlan::new(system, policies, scenarios, vec![1, 2]);
    let cells = plan.cell_count();
    let grid = plan.run();
    assert_eq!(grid.cells.len(), cells, "every grid cell must run");

    println!("evaluated {cells} cells (3 policies x 5 scenarios x 2 seeds)\n");
    print!("{}", grid.render_aggregate_table());

    // DAG scenarios carry a critical-path/area lower bound per cell;
    // regret against it is the policy-independent quality measure.
    println!("\nDAG regret vs the critical-path lower bound:");
    for c in grid.cells.iter().filter(|c| c.scenario.starts_with("dag:")) {
        assert!(c.report.makespan >= c.cp_bound, "no policy may beat the bound");
        println!(
            "  {:<10} {:<14} seed {}: makespan {:>7} s, bound {:>7} s, regret {:.1}%",
            c.policy,
            c.scenario,
            c.seed,
            c.report.makespan,
            c.cp_bound,
            100.0 * c.cp_regret()
        );
    }

    // Bursty scenarios are open streams: episode lengths differ by seed.
    let lens: Vec<usize> = grid
        .cells
        .iter()
        .filter(|c| c.scenario.starts_with("bursty:"))
        .map(|c| c.report.records.len())
        .collect();
    println!("\nbursty episode lengths (jobs): {lens:?}");

    // Energy-aware cells meter power; everything else reports zero.
    for c in &grid.cells {
        if c.scenario == "energy:drain" {
            assert!(c.report.energy_kwh() > 0.0, "energy scenario must meter power");
        } else {
            assert_eq!(c.report.energy_kwh(), 0.0);
        }
    }
    let energy = grid.aggregate("fcfs", "energy:drain").unwrap();
    println!("\nfcfs on energy:drain: {:.1} kWh (mean over seeds)", energy.energy_kwh.mean);
}
