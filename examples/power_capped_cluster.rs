//! Power-capped cluster — the §V-E case study: scheduling CPU, burst
//! buffer **and** a system power budget as a third resource.
//!
//! An exascale-era machine must keep total draw under a budget (the
//! paper cites Aurora's 60 MW envelope); power therefore becomes a
//! schedulable resource jobs contend for. This example builds the S9
//! workload (heavy BB contention + per-node power profiles in
//! [100, 215] W under a ~53 % power cap), trains MRSch with a
//! *three-dimensional* goal vector, and shows how the dynamic weights
//! shift between nodes, burst buffer and power as contention changes.
//!
//! Run with:
//! ```text
//! cargo run --release --example power_capped_cluster
//! ```

use mrsch::prelude::*;
use mrsch_linalg::stats::box_summary;
use mrsch_workload::split::paper_split;

fn main() {
    let spec = WorkloadSpec::s9();
    let base = SystemConfig::two_resource(64, 20);
    let system = spec.system_for(&base);
    println!(
        "system: {} nodes, {} BB units, {} kW power budget",
        system.resources[0].capacity,
        system.resources[1].capacity,
        system.resources[2].capacity
    );

    let trace_cfg = ThetaConfig { machine_nodes: 64, ..ThetaConfig::scaled(500) };
    let trace = trace_cfg.generate(9);
    let split = paper_split(&trace);
    let train_jobs = spec.build(&split.train[..150.min(split.train.len())], &system, 1);
    let eval_jobs = spec.build(&split.test[..100.min(split.test.len())], &system, 2);

    let params = SimParams::new(5, true);
    let mut mrsch = MrschBuilder::new(system.clone(), params)
        .seed(11)
        .batches_per_episode(16)
        .build();
    for _ in 0..3 {
        mrsch.train_episode(&train_jobs);
    }

    let (report, goal_log) = mrsch.evaluate_with_goal_log(&eval_jobs);
    println!("\nMRSch on S9 ({} jobs):", report.jobs_completed);
    println!("  node utilization : {:.3}", report.resource_utilization[0]);
    println!("  BB utilization   : {:.3}", report.resource_utilization[1]);
    println!("  power utilization: {:.3}", report.resource_utilization[2]);
    println!("  avg wait         : {:.3} h", report.avg_wait_hours());
    println!("  avg slowdown     : {:.3}", report.avg_slowdown);

    // The three-dimensional goal vector over time.
    println!("\ndynamic goal weights over {} decisions:", goal_log.len());
    for (k, name) in ["nodes", "burst buffer", "power"].iter().enumerate() {
        let series: Vec<f64> = goal_log.iter().map(|(_, g)| g[k] as f64).collect();
        if let Some(s) = box_summary(&series) {
            println!(
                "  r_{:<13} min {:.3}  median {:.3}  max {:.3}  mean {:.3}",
                name, s.min, s.median, s.max, s.mean
            );
        }
    }
    println!("\n(weights always sum to 1; the most contended resource gets the most)");
}
