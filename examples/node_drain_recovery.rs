//! Node drain and recovery — the disruption scenario the generalized
//! event engine exists for.
//!
//! Mid-trace, 25 % of the machine's nodes go offline (maintenance
//! drain); an hour of simulated time later they return. Running jobs are
//! never interrupted — the drain absorbs capacity lazily as jobs
//! release, exactly like `scontrol update state=drain` — but admission
//! tightens while the machine is small, and both schedulers observe the
//! shrunken capacity honestly (measurements are normalized by the
//! capacity *currently online*).
//!
//! The example runs the same drained workload under the FCFS baseline
//! and a briefly trained MRSch (DFP) agent and verifies the engine's
//! accounting invariants: resource conservation at every instant, no
//! stuck jobs, and every job ending as finished, cancelled, or killed.
//!
//! Run with:
//! ```text
//! cargo run --release --example node_drain_recovery
//! ```

use mrsch::prelude::*;
use mrsch_workload::split::paper_split;

fn print_report(label: &str, report: &SimReport) {
    println!("\n{label}:");
    println!(
        "  finished {} | cancelled {} | killed {} | unfinished {}",
        report.jobs_completed, report.jobs_cancelled, report.jobs_killed, report.jobs_unfinished
    );
    println!(
        "  node util {:.3} (normalized by online capacity) | avg wait {:.3} h | makespan {} s",
        report.resource_utilization[0],
        report.avg_wait_hours(),
        report.makespan
    );
    println!(
        "  capacity lost: {:.0} node-seconds",
        report.capacity_lost_unit_seconds[0]
    );
    for (kind, count) in report.event_counts.rows() {
        if count > 0 {
            println!("    event {kind:<16} x{count}");
        }
    }
}

fn check_invariants(label: &str, report: &SimReport, trace_len: usize) {
    assert!(
        report.all_jobs_accounted(trace_len),
        "{label}: every job must end finished/cancelled/killed \
         (finished {} + cancelled {} + killed {} != {trace_len}, unfinished {})",
        report.jobs_completed,
        report.jobs_cancelled,
        report.jobs_killed,
        report.jobs_unfinished
    );
    assert!(
        report.capacity_lost_unit_seconds[0] > 0.0,
        "{label}: the drain must cost node-seconds"
    );
}

fn main() {
    let system = SystemConfig::two_resource(64, 20);
    let spec = WorkloadSpec::s2();
    let trace_cfg = ThetaConfig { machine_nodes: 64, ..ThetaConfig::scaled(400) };
    let trace = trace_cfg.generate(17);
    let split = paper_split(&trace);
    let train_jobs = spec.build(&split.train[..120.min(split.train.len())], &system, 1);
    let eval_jobs = spec.build(&split.test[..120.min(split.test.len())], &system, 2);

    // Drain 25 % of the nodes a third of the way into the evaluation
    // trace; return them one simulated hour later.
    let last_submit = eval_jobs.last().map(|j| j.submit).unwrap_or(0);
    let drain = DisruptionConfig::node_drain(0.25, last_submit / 3, 3600);
    let disrupted = drain.synthesize(&eval_jobs, &system, 99);
    println!(
        "system: 64 nodes, 20 BB units | {} eval jobs | drain of 16 nodes at t={} for 3600 s",
        disrupted.jobs.len(),
        last_submit / 3
    );

    // FCFS baseline through the drain.
    let params = SimParams::new(5, true);
    let mut sim = Simulator::new(system.clone(), disrupted.jobs.clone(), params)
        .expect("jobs fit the system");
    sim.inject_all(&disrupted.events).expect("valid disruption trace");
    let fcfs_report = sim.run(&mut HeadOfQueue);
    assert!(sim.pools().check_conservation(), "conservation holds after the run");
    print_report("FCFS through a 25% node drain", &fcfs_report);
    check_invariants("fcfs", &fcfs_report, disrupted.jobs.len());

    // A briefly trained DFP agent through the identical drain.
    let mut mrsch = MrschBuilder::new(system, params)
        .seed(11)
        .batches_per_episode(16)
        .build();
    for _ in 0..2 {
        mrsch.train_episode(&train_jobs);
    }
    let dfp_report = mrsch
        .evaluate_disrupted(&disrupted.jobs, &disrupted.events)
        .expect("valid disruption trace");
    print_report("MRSch (DFP) through the same drain", &dfp_report);
    check_invariants("mrsch", &dfp_report, disrupted.jobs.len());

    println!(
        "\nboth schedulers absorbed the drain: no lost jobs, no conservation violation, \
         {:.0} node-seconds offline in each run",
        fcfs_report.capacity_lost_unit_seconds[0]
    );
}
