//! Explainable scheduling — the paper's §VI future work, implemented.
//!
//! The paper's conclusion names interpretability as the key obstacle to
//! deploying RL schedulers ("incomprehensible to debug, deploy, and
//! adjust in practice"). This example trains a small MRSch agent and then
//! asks it to *explain* a scheduling decision: the goal weights in force,
//! each window job's goal-weighted score with its predicted utilization
//! changes, and an input-saliency breakdown showing whether the decision
//! was driven by queue contents or by machine state.
//!
//! Run with:
//! ```text
//! cargo run --release --example explainable_scheduling
//! ```

use mrsch::explain::Explainer;
use mrsch::prelude::*;
use mrsim::policy::SchedulerView;

fn main() {
    let system = SystemConfig::two_resource(48, 16);
    let params = SimParams::new(5, true);
    let trace = ThetaConfig { machine_nodes: 48, ..ThetaConfig::scaled(400) }.generate(3);
    let spec = WorkloadSpec::s4();
    let jobs = spec.build(&trace, &system, 4);

    // Brief training so the explanations reflect a live (non-random) model.
    let mut mrsch = MrschBuilder::new(system.clone(), params)
        .seed(8)
        .batches_per_episode(16)
        .build();
    for _ in 0..3 {
        mrsch.train_episode(&jobs[..150.min(jobs.len())]);
    }

    // Drive a short evaluation and explain a few mid-run decisions.
    struct Explaining<'a> {
        explainer: Explainer<'a>,
        printed: usize,
        resource_names: Vec<String>,
    }
    impl mrsim::policy::Policy for Explaining<'_> {
        fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
            if view.window.is_empty() {
                return None;
            }
            let explanation = self.explainer.explain(view);
            // Print the first three decisions with a non-trivial window.
            if self.printed < 3 && view.window.len() >= 2 {
                println!("{}", explanation.to_pretty_string(&self.resource_names));
                self.printed += 1;
            }
            explanation.chosen_slot
        }
    }

    let resource_names: Vec<String> =
        system.resources.iter().map(|r| r.name.clone()).collect();
    let encoder = StateEncoder::with_hour_scale(system.clone(), params.window);
    let mut policy = Explaining {
        explainer: Explainer::new(mrsch.agent_mut(), encoder, GoalMode::Dynamic),
        printed: 0,
        resource_names,
    };
    let eval = &jobs[150.min(jobs.len())..250.min(jobs.len())];
    // Rebase ids for a standalone run.
    let eval: Vec<Job> = eval
        .iter()
        .enumerate()
        .map(|(i, j)| Job::new(i, j.submit - eval[0].submit, j.runtime, j.estimate, j.demands.clone()))
        .collect();
    let report = Simulator::new(system, eval.clone(), params)
        .expect("valid jobs")
        .run(&mut policy);

    println!(
        "scheduled {} jobs explainably: node util {:.2}, BB util {:.2}, avg wait {:.2} h",
        report.jobs_completed,
        report.resource_utilization[0],
        report.resource_utilization[1],
        report.avg_wait_hours(),
    );
    assert_eq!(report.jobs_completed, eval.len());
}
