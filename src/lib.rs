//! Workspace umbrella crate for the MRSch reproduction.
//!
//! This crate exists so that workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`) can link against every
//! member crate. The actual implementation lives in the `crates/*`
//! members; see [`mrsch`] for the top-level public API.

pub use mrsch;
pub use mrsch_baselines as baselines;
pub use mrsch_dfp as dfp;
pub use mrsch_experiments as experiments;
pub use mrsch_linalg as linalg;
pub use mrsch_nn as nn;
pub use mrsch_workload as workload;
pub use mrsim as sim;
