//! Integration test: the paper's Fig. 1 motivating example reproduces
//! end-to-end through the public experiment API.

use mrsch_experiments::fig1;

#[test]
fn fixed_weights_lose_one_hour_of_makespan() {
    let r = fig1::run();
    assert_eq!(r.fixed_weight_makespan_h, 3.0, "paper: fixed weights -> 3 h");
    assert_eq!(r.ideal_makespan_h, 2.0, "paper: ideal order -> 2 h");
}

#[test]
fn schedules_match_paper_narrative() {
    let r = fig1::run();
    // Fixed weights: (J2, J3) first, then J1, then J4.
    assert_eq!(r.fixed_weight_starts_h[1], 0.0);
    assert_eq!(r.fixed_weight_starts_h[2], 0.0);
    let mut later: Vec<f64> =
        vec![r.fixed_weight_starts_h[0], r.fixed_weight_starts_h[3]];
    later.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(later, vec![1.0, 2.0], "J1 and J4 run in hours 2 and 3");
    // Ideal: (J1, J3) then (J2, J4).
    assert_eq!(r.ideal_starts_h, vec![0.0, 1.0, 0.0, 1.0]);
}
