//! Integration test: a trained agent's network checkpoints through the
//! bytes format and restores into a fresh agent with identical greedy
//! behavior.

use mrsch::prelude::*;
use mrsch_workload::split::paper_split;

fn setup(seed: u64) -> (SystemConfig, Vec<Job>, Vec<Job>) {
    let system = SystemConfig::two_resource(32, 10);
    let cfg = ThetaConfig { machine_nodes: 32, ..ThetaConfig::scaled(250) };
    let trace = cfg.generate(seed);
    let split = paper_split(&trace);
    let spec = WorkloadSpec::s3();
    let train = spec.build(&split.train[..60.min(split.train.len())], &system, seed);
    let eval = spec.build(&split.test[..50.min(split.test.len())], &system, seed + 1);
    (system, train, eval)
}

#[test]
fn restored_agent_reproduces_greedy_schedule() {
    let (system, train, eval) = setup(13);
    let params = SimParams::new(5, true);

    // Train an agent, checkpoint its network.
    let mut trained = MrschBuilder::new(system.clone(), params)
        .seed(21)
        .batches_per_episode(8)
        .build();
    trained.train_episode(&train);
    let ckpt = trained.agent_mut().network_mut().save_checkpoint();
    let trained_report = trained.evaluate(&eval);

    // A fresh agent with different init behaves differently…
    let mut fresh = MrschBuilder::new(system, params).seed(999).build();
    let fresh_report = fresh.evaluate(&eval);
    // (not asserting inequality of full schedules — tiny nets can tie —
    // but after restore they must match exactly)

    // …until the checkpoint is loaded.
    fresh
        .agent_mut()
        .network_mut()
        .load_checkpoint(&ckpt)
        .expect("identical architecture");
    let restored_report = fresh.evaluate(&eval);

    assert_eq!(
        trained_report.records, restored_report.records,
        "restored agent must reproduce the exact schedule"
    );
    let _ = fresh_report;
}

#[test]
fn checkpoint_rejects_mismatched_window() {
    let (system, _, _) = setup(14);
    let mut a = MrschBuilder::new(system.clone(), SimParams::new(5, true))
        .seed(1)
        .build();
    let ckpt = a.agent_mut().network_mut().save_checkpoint();
    let mut b = MrschBuilder::new(system, SimParams::new(6, true))
        .seed(1)
        .build();
    assert!(
        b.agent_mut().network_mut().load_checkpoint(&ckpt).is_err(),
        "different window size -> different architecture -> rejected"
    );
}
