//! Property-based tests over the simulator with randomized workloads.
//!
//! The central invariant: **no schedule ever over-subscribes any
//! resource**. We reconstruct occupancy from the per-job records (start,
//! end, demands) with an event sweep and check it against capacity at
//! every transition — for FCFS and GA, with backfilling on and off.

use mrsch_baselines::{FcfsPolicy, GaPolicy};
use mrsim::job::Job;
use mrsim::resources::SystemConfig;
use mrsim::simulator::{SimParams, Simulator};
use mrsim::SimReport;
use proptest::prelude::*;

/// Random job list valid for an `nodes x bb` system.
fn arb_jobs(nodes: u64, bb: u64, max_jobs: usize) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (
            0u64..5_000,     // submit
            1u64..2_000,     // runtime
            0u64..2_000,     // extra estimate
            1u64..=nodes,    // node demand
            0u64..=bb,       // bb demand
        ),
        1..max_jobs,
    )
    .prop_map(|specs| {
        let mut jobs: Vec<(u64, u64, u64, u64, u64)> = specs;
        jobs.sort_by_key(|j| j.0);
        jobs.into_iter()
            .enumerate()
            .map(|(i, (submit, runtime, extra, n, b))| {
                Job::new(i, submit, runtime, runtime + extra, vec![n, b])
            })
            .collect()
    })
}

/// Sweep the schedule and assert occupancy never exceeds capacity.
fn assert_no_oversubscription(report: &SimReport, jobs: &[Job], caps: &[u64]) {
    // Events: (time, +|-1, demands).
    let mut events: Vec<(u64, i32, &[u64])> = Vec::new();
    for rec in &report.records {
        let demands = jobs[rec.id].demands.as_slice();
        events.push((rec.start, 1, demands));
        events.push((rec.end, -1, demands));
    }
    // Releases before acquisitions at equal timestamps (the simulator
    // frees a finishing job before starting the next).
    events.sort_by_key(|&(t, sign, _)| (t, sign));
    let mut used = vec![0i64; caps.len()];
    for (t, sign, demands) in events {
        for (r, &d) in demands.iter().enumerate() {
            used[r] += sign as i64 * d as i64;
            prop_assert_eq_ok(used[r] >= 0, t, r, used[r]);
            assert!(
                used[r] <= caps[r] as i64,
                "resource {r} oversubscribed at t={t}: {} > {}",
                used[r],
                caps[r]
            );
        }
    }
}

fn prop_assert_eq_ok(cond: bool, t: u64, r: usize, v: i64) {
    assert!(cond, "negative occupancy at t={t} resource {r}: {v}");
}

fn check_report(report: &SimReport, jobs: &[Job], caps: &[u64]) {
    assert_eq!(report.jobs_completed, jobs.len(), "every job must finish");
    for rec in &report.records {
        let job = &jobs[rec.id];
        assert!(rec.start >= job.submit, "job {} started before submit", rec.id);
        assert_eq!(rec.end - rec.start, job.runtime, "job {} wrong runtime", rec.id);
    }
    for u in &report.resource_utilization {
        assert!((0.0..=1.0 + 1e-9).contains(u), "utilization {u}");
    }
    assert_no_oversubscription(report, jobs, caps);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fcfs_with_backfill_never_oversubscribes(jobs in arb_jobs(16, 8, 40)) {
        let system = SystemConfig::two_resource(16, 8);
        let caps = system.capacities();
        let mut sim = Simulator::new(system, jobs.clone(), SimParams::new(6, true)).unwrap();
        let report = sim.run(&mut FcfsPolicy::default());
        check_report(&report, &jobs, &caps);
    }

    #[test]
    fn fcfs_without_backfill_never_oversubscribes(jobs in arb_jobs(16, 8, 40)) {
        let system = SystemConfig::two_resource(16, 8);
        let caps = system.capacities();
        let mut sim = Simulator::new(system, jobs.clone(), SimParams::new(6, false)).unwrap();
        let report = sim.run(&mut FcfsPolicy::default());
        check_report(&report, &jobs, &caps);
    }

    #[test]
    fn ga_never_oversubscribes(jobs in arb_jobs(12, 6, 25)) {
        let system = SystemConfig::two_resource(12, 6);
        let caps = system.capacities();
        let mut sim = Simulator::new(system, jobs.clone(), SimParams::new(5, true)).unwrap();
        let report = sim.run(&mut GaPolicy::with_seed(0));
        check_report(&report, &jobs, &caps);
    }

    #[test]
    fn backfilling_never_hurts_first_job_wait(jobs in arb_jobs(16, 8, 30)) {
        // EASY guarantee (approximated): the *first submitted* job's start
        // time is never later with backfilling than without, because it is
        // always at the queue head and thus never jumped.
        let system = SystemConfig::two_resource(16, 8);
        let run = |backfill: bool| {
            let mut sim = Simulator::new(
                system.clone(),
                jobs.clone(),
                SimParams::new(6, backfill),
            )
            .unwrap();
            sim.run(&mut FcfsPolicy::default())
        };
        let with_bf = run(true);
        let without = run(false);
        let first_id = jobs.iter().min_by_key(|j| (j.submit, j.id)).unwrap().id;
        let start_of = |r: &SimReport| {
            r.records.iter().find(|x| x.id == first_id).unwrap().start
        };
        prop_assert!(
            start_of(&with_bf) <= start_of(&without),
            "backfilling delayed the head-of-queue job: {} vs {}",
            start_of(&with_bf),
            start_of(&without)
        );
    }

    #[test]
    fn timeline_mean_matches_simulator_integral(jobs in arb_jobs(16, 8, 30)) {
        // The post-hoc Timeline reconstruction must agree with the
        // simulator's streaming utilization integral on any schedule.
        let system = SystemConfig::two_resource(16, 8);
        let caps = system.capacities();
        let mut sim = Simulator::new(system, jobs.clone(), SimParams::new(6, true)).unwrap();
        let report = sim.run(&mut FcfsPolicy::default());
        let tl = mrsim::Timeline::from_report(&report, &jobs, &caps);
        let mean = tl.mean_utilization();
        for (r, &sim_util) in report.resource_utilization.iter().enumerate() {
            prop_assert!(
                (mean[r] - sim_util).abs() < 1e-9,
                "resource {r}: timeline {} vs simulator {}", mean[r], sim_util
            );
        }
        // Peak occupancy never exceeds capacity.
        for (p, c) in tl.peak().iter().zip(&caps) {
            prop_assert!(p <= c);
        }
    }

    #[test]
    fn window_one_fcfs_is_strict_arrival_order(jobs in arb_jobs(16, 8, 20)) {
        // With window = 1 and no backfilling, start order must equal
        // submit order.
        let system = SystemConfig::two_resource(16, 8);
        let mut sim = Simulator::new(
            system,
            jobs.clone(),
            SimParams::new(1, false),
        )
        .unwrap();
        let report = sim.run(&mut FcfsPolicy::default());
        let mut by_start: Vec<(u64, usize)> = report
            .records
            .iter()
            .map(|r| (r.start, r.id))
            .collect();
        by_start.sort();
        let started_order: Vec<usize> = by_start.into_iter().map(|(_, id)| id).collect();
        // Submit order = id order (ids assigned by sorted submit in arb_jobs),
        // but equal submit times allow ties; check monotonicity of submit
        // times along the start order instead.
        let submits: Vec<u64> = started_order.iter().map(|&id| jobs[id].submit).collect();
        // Starts can tie; within a start tie the order is free. Check that
        // a job never starts strictly before an earlier-submitted job.
        for i in 0..report.records.len() {
            for j in 0..report.records.len() {
                let (ri, rj) = (&report.records[i], &report.records[j]);
                if jobs[ri.id].submit < jobs[rj.id].submit
                    && jobs[rj.id].submit <= ri.start
                {
                    prop_assert!(
                        ri.start <= rj.start,
                        "FIFO violated: job {} (submit {}) started at {} after job {} (submit {}) at {}",
                        ri.id, jobs[ri.id].submit, ri.start, rj.id, jobs[rj.id].submit, rj.start
                    );
                }
            }
        }
        let _ = submits;
    }
}
