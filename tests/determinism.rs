//! Integration test: the entire pipeline is bit-deterministic under a
//! fixed seed — a DESIGN.md commitment that every figure regenerates
//! identically.

use mrsch::prelude::*;
use mrsch_experiments::{fig1, ExpScale};
use mrsch_workload::split::paper_split;

fn run_once(seed: u64) -> (Vec<f64>, f64, f64) {
    let system = SystemConfig::two_resource(40, 12);
    let cfg = ThetaConfig { machine_nodes: 40, ..ThetaConfig::scaled(300) };
    let trace = cfg.generate(seed);
    let split = paper_split(&trace);
    let spec = WorkloadSpec::s2();
    let train = spec.build(&split.train[..80.min(split.train.len())], &system, seed);
    let eval = spec.build(&split.test[..60.min(split.test.len())], &system, seed + 1);
    let mut mrsch = MrschBuilder::new(system, SimParams::new(5, true))
        .seed(seed)
        .batches_per_episode(4)
        .build();
    mrsch.train_episode(&train);
    let report = mrsch.evaluate(&eval);
    (
        report.resource_utilization.clone(),
        report.avg_wait,
        report.avg_slowdown,
    )
}

#[test]
fn trained_evaluation_is_bit_identical_across_runs() {
    let a = run_once(1234);
    let b = run_once(1234);
    assert_eq!(a, b, "same seed must give identical metrics");
}

#[test]
fn different_seeds_differ() {
    let a = run_once(1);
    let b = run_once(2);
    assert_ne!(a, b, "different seeds should explore different schedules");
}

#[test]
fn fig1_is_pure() {
    assert_eq!(fig1::run(), fig1::run());
}

/// Full disrupted pipeline: train briefly, then evaluate under a
/// cancellation + overrun + drain trace, returning the whole report.
fn run_disrupted(seed: u64) -> SimReport {
    use mrsch_workload::disruption::{DisruptionConfig, DrainSpec};
    let system = SystemConfig::two_resource(40, 12);
    let cfg = ThetaConfig { machine_nodes: 40, ..ThetaConfig::scaled(160) };
    let trace = cfg.generate(seed);
    let split = paper_split(&trace);
    let spec = WorkloadSpec::s2();
    let train = spec.build(&split.train[..50.min(split.train.len())], &system, seed);
    let eval = spec.build(&split.test[..45.min(split.test.len())], &system, seed + 1);
    let disruptions = DisruptionConfig {
        cancel_fraction: 0.15,
        overrun_fraction: 0.15,
        overrun_factor: 1.5,
        drains: vec![DrainSpec { resource: 0, fraction: 0.25, at: 1_500, duration: 4_000 }],
    };
    let disrupted = disruptions.synthesize(&eval, &system, seed + 2);
    let mut mrsch = MrschBuilder::new(
        system,
        SimParams { enforce_walltime: true, tick: Some(900), ..SimParams::new(5, true) },
    )
    .seed(seed)
    .batches_per_episode(4)
    .build();
    mrsch.train_episode(&train);
    mrsch.evaluate_disrupted(&disrupted.jobs, &disrupted.events).expect("valid disruption trace")
}

#[test]
fn disruption_replay_is_bit_identical_serial_vs_parallel_gemm() {
    // Identical seeds must reproduce the identical SimReport — including
    // the disruption counters — regardless of GEMM threading, because
    // the row-band split preserves each output element's reduction order.
    use mrsch_linalg::{set_default_policy, ParallelPolicy};
    set_default_policy(ParallelPolicy::Serial);
    let serial = run_disrupted(77);
    set_default_policy(ParallelPolicy::Threads { max_threads: 4 });
    let parallel = run_disrupted(77);
    set_default_policy(ParallelPolicy::Auto);
    assert_eq!(serial, parallel, "serial vs parallel GEMM must not diverge");
    // The disruption machinery actually fired and every job is accounted.
    assert!(serial.jobs_cancelled > 0, "cancels landed");
    assert!(serial.jobs_killed > 0, "walltime kills landed");
    assert!(serial.capacity_lost_unit_seconds[0] > 0.0, "drain registered");
    assert!(serial.event_counts.count(mrsim::EventKind::Tick) > 0, "ticks fired");
    assert!(serial.all_jobs_accounted(serial.records.len()));
}

#[test]
fn table3_statistics_are_deterministic() {
    use mrsch_experiments::table3;
    let s1 = table3::run(&ExpScale::quick(), 9);
    let s2 = table3::run(&ExpScale::quick(), 9);
    for (a, b) in s1.iter().zip(&s2) {
        assert_eq!(a.realized_participation, b.realized_participation);
        assert_eq!(a.node_seconds, b.node_seconds);
    }
}
