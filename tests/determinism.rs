//! Integration test: the entire pipeline is bit-deterministic under a
//! fixed seed — a DESIGN.md commitment that every figure regenerates
//! identically.

use mrsch::prelude::*;
use mrsch_experiments::{fig1, ExpScale};
use mrsch_workload::split::paper_split;

fn run_once(seed: u64) -> (Vec<f64>, f64, f64) {
    let system = SystemConfig::two_resource(40, 12);
    let cfg = ThetaConfig { machine_nodes: 40, ..ThetaConfig::scaled(300) };
    let trace = cfg.generate(seed);
    let split = paper_split(&trace);
    let spec = WorkloadSpec::s2();
    let train = spec.build(&split.train[..80.min(split.train.len())], &system, seed);
    let eval = spec.build(&split.test[..60.min(split.test.len())], &system, seed + 1);
    let mut mrsch = MrschBuilder::new(system, SimParams { window: 5, backfill: true })
        .seed(seed)
        .batches_per_episode(4)
        .build();
    mrsch.train_episode(&train);
    let report = mrsch.evaluate(&eval);
    (
        report.resource_utilization.clone(),
        report.avg_wait,
        report.avg_slowdown,
    )
}

#[test]
fn trained_evaluation_is_bit_identical_across_runs() {
    let a = run_once(1234);
    let b = run_once(1234);
    assert_eq!(a, b, "same seed must give identical metrics");
}

#[test]
fn different_seeds_differ() {
    let a = run_once(1);
    let b = run_once(2);
    assert_ne!(a, b, "different seeds should explore different schedules");
}

#[test]
fn fig1_is_pure() {
    assert_eq!(fig1::run(), fig1::run());
}

#[test]
fn table3_statistics_are_deterministic() {
    use mrsch_experiments::table3;
    let s1 = table3::run(&ExpScale::quick(), 9);
    let s2 = table3::run(&ExpScale::quick(), 9);
    for (a, b) in s1.iter().zip(&s2) {
        assert_eq!(a.realized_participation, b.realized_participation);
        assert_eq!(a.node_seconds, b.node_seconds);
    }
}
