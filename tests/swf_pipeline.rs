//! Integration test: a real-format (SWF) trace drives the entire
//! pipeline — parse, derive a Table III workload, schedule with MRSch
//! and FCFS — exactly as a synthetic trace would.

use mrsch::prelude::*;
use mrsch_workload::swf::{parse_swf, to_swf};
use mrsch_workload::theta::ThetaConfig;

/// Build an SWF text from a synthetic trace (stand-in for a downloaded
/// Feitelson-archive log).
fn swf_fixture() -> String {
    let trace = ThetaConfig { machine_nodes: 32, ..ThetaConfig::scaled(120) }.generate(55);
    to_swf(&trace)
}

#[test]
fn swf_trace_schedules_end_to_end() {
    let text = swf_fixture();
    let trace = parse_swf(&text).expect("fixture parses");
    assert!(!trace.is_empty());

    let system = SystemConfig::two_resource(32, 10);
    let spec = WorkloadSpec::s2();
    let jobs = spec.build(&trace, &system, 1);
    for j in &jobs {
        system.validate_job(j).unwrap();
    }

    let params = SimParams::new(5, true);
    // FCFS pass.
    let fcfs_report = Simulator::new(system.clone(), jobs.clone(), params)
        .unwrap()
        .run(&mut HeadOfQueue);
    assert_eq!(fcfs_report.jobs_completed, jobs.len());

    // MRSch pass (fresh agent, greedy).
    let mut mrsch = MrschBuilder::new(system, params).seed(2).build();
    let report = mrsch.evaluate(&jobs);
    assert_eq!(report.jobs_completed, jobs.len());
    assert_eq!(report.start_time, fcfs_report.start_time, "same trace horizon");
}

#[test]
fn swf_header_comments_and_reordering_tolerated() {
    // Shuffle lines (SWF files are usually sorted, but parse_swf must
    // sort by submit anyway) and add comments.
    let text = swf_fixture();
    let mut lines: Vec<&str> = text.lines().filter(|l| !l.starts_with(';')).collect();
    lines.reverse();
    let shuffled = format!("; UnixStartTime: 0\n; MaxNodes: 32\n{}", lines.join("\n"));
    let a = parse_swf(&text).unwrap();
    let b = parse_swf(&shuffled).unwrap();
    assert_eq!(a.len(), b.len());
    // Same multiset of jobs after sorting.
    let key = |j: &mrsch_workload::theta::TraceJob| (j.submit, j.runtime, j.nodes);
    let mut ka: Vec<_> = a.iter().map(key).collect();
    let mut kb: Vec<_> = b.iter().map(key).collect();
    ka.sort_unstable();
    kb.sort_unstable();
    assert_eq!(ka, kb);
}
