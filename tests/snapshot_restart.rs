//! Crash/restart drill: kill a disrupted run mid-drain, restore from
//! its last checkpoint, and finish with a **bit-identical** report.
//!
//! The `mrsch-snapshot` PR's contract, locked here end to end:
//!
//! * Each shard of a seeded disrupted fleet (cancels, walltime
//!   overruns, a node-drain episode, a tick chain) is stepped into the
//!   middle of its drain window, checkpointed with
//!   [`mrsim::write_shard_snapshot`], and dropped — the in-memory
//!   simulator is gone, exactly as after a `kill -9`.
//! * Restoring each `shard-NNNN.snap` and running to completion yields
//!   reports `==` (the whole [`SimReport`], every record and f64 bit)
//!   to an uninterrupted reference fleet.
//! * The reference itself is invariant across 1, 2, and 4 workers, and
//!   a restore into **either** event-queue implementation — including
//!   the one the snapshot was not taken under — continues identically.
//! * A fleet running *with* periodic snapshots enabled produces the
//!   same reports as one without (checkpointing never perturbs).
//!
//! Tier-1 drills a 5 000-job fleet; the 100 000-job version of the same
//! checks runs under `--ignored` (CI executes it in the bench job).

use mrsch_workload::disruption::{DisruptionConfig, DrainSpec};
use mrsch_workload::StressConfig;
use mrsim::policy::{HeadOfQueue, Policy};
use mrsim::{
    partition_round_robin, shard_snapshot_name, write_shard_snapshot, BinaryHeapEventQueue,
    EventKind, EventQueue, ShardSpec, ShardedSim, SimParams, SimReport, SimTime, Simulator,
    SystemConfig,
};

const NODES: u64 = 256;
const BB: u64 = 32;
const SEED: u64 = 20_220_517; // MRSch camera-ready date

fn system() -> SystemConfig {
    SystemConfig::two_resource(NODES, BB)
}

fn params() -> SimParams {
    SimParams { enforce_walltime: true, tick: Some(900), ..SimParams::new(10, true) }
}

/// `nshards` disrupted shard specs over an `n`-job stress trace, same
/// recipe as the large-trace determinism suite.
fn disrupted_shards(n: usize, nshards: usize) -> Vec<ShardSpec> {
    let jobs = StressConfig::engine(n, vec![NODES, BB]).generate(SEED);
    let span = jobs.last().expect("nonempty trace").submit;
    partition_round_robin(&jobs, nshards)
        .into_iter()
        .enumerate()
        .map(|(s, shard_jobs)| {
            let disruptions = DisruptionConfig {
                cancel_fraction: 0.08,
                overrun_fraction: 0.08,
                overrun_factor: 1.5,
                drains: vec![DrainSpec {
                    resource: 0,
                    fraction: 0.25,
                    at: span / 4,
                    duration: span / 4,
                }],
            };
            let trace = disruptions.synthesize(&shard_jobs, &system(), SEED + 101 * s as u64);
            ShardSpec {
                config: system(),
                jobs: trace.jobs,
                params: params(),
                events: trace.events,
                relative_cancels: Vec::new(),
            }
        })
        .collect()
}

fn fcfs() -> Box<dyn Policy + Send> {
    Box::new(HeadOfQueue)
}

/// The shard's drain window `[start, end)` from its injected events.
fn drain_window(spec: &ShardSpec) -> (SimTime, SimTime) {
    let mut start = SimTime::MAX;
    let mut end = 0;
    for ev in &spec.events {
        if let EventKind::CapacityChange { delta, .. } = ev.kind {
            if delta < 0 {
                start = start.min(ev.time);
            } else {
                end = end.max(ev.time);
            }
        }
    }
    assert!(start < end, "shard carries a drain episode");
    (start, end)
}

/// Step shard `index` into the middle of its drain window, checkpoint
/// it, and "crash" (drop the simulator).
fn crash_mid_drain<Q: EventQueue>(spec: &ShardSpec, index: usize, dir: &std::path::Path) {
    let (drain_start, drain_end) = drain_window(spec);
    let mut sim: Simulator<Q> =
        Simulator::with_queue(spec.config.clone(), spec.jobs.clone(), spec.params).unwrap();
    sim.inject_all(&spec.events).unwrap();
    let mut policy = HeadOfQueue;
    while sim.step(&mut policy) {
        if sim.now() > drain_start && sim.now() < drain_end {
            break;
        }
    }
    assert!(
        sim.now() > drain_start && sim.now() < drain_end,
        "shard {index} was killed mid-drain (t={})",
        sim.now()
    );
    assert!(
        sim.pools().capacity(0) < sim.pools().base_capacity(0) || sim.pools().draining(0) > 0,
        "shard {index} has capacity offline or drain debt outstanding at the kill point"
    );
    write_shard_snapshot(dir, index, &sim).unwrap();
    // The drop is the crash: only the snapshot file survives.
}

/// Restore shard `index` from its snapshot file into queue impl `Q`
/// and run it to completion.
fn restore_and_finish<Q: EventQueue>(dir: &std::path::Path, index: usize) -> SimReport {
    let bytes = std::fs::read(dir.join(shard_snapshot_name(index))).unwrap();
    let mut sim: Simulator<Q> = Simulator::restore(&bytes).unwrap();
    let mut policy = HeadOfQueue;
    while sim.step(&mut policy) {}
    sim.final_report()
}

fn drill(n: usize, nshards: usize) {
    let dir = std::env::temp_dir().join(format!(
        "mrsch-crash-drill-{}-{}-{}",
        n,
        nshards,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let shards = disrupted_shards(n, nshards);

    // Uninterrupted reference, invariant across 1/2/4 workers.
    let reference = ShardedSim::new(shards.clone()).workers(1).run_with(&|_| fcfs()).unwrap();
    for workers in [2, 4] {
        let got = ShardedSim::new(shards.clone()).workers(workers).run_with(&|_| fcfs()).unwrap();
        assert_eq!(got, reference, "{workers} workers diverged from serial");
    }
    // The disruptions actually fired: the drill must not vacuously pass.
    assert!(reference.iter().any(|r| r.jobs_cancelled > 0), "cancels landed");
    assert!(reference.iter().any(|r| r.jobs_killed > 0), "walltime kills landed");
    assert!(
        reference.iter().all(|r| r.capacity_lost_unit_seconds[0] > 0.0),
        "every shard lost capacity to its drain"
    );

    // A fleet checkpointing as it runs is unperturbed.
    let snap_dir = dir.join("periodic");
    let with_snaps = ShardedSim::new(shards.clone())
        .workers(2)
        .snapshots(256, &snap_dir)
        .run_with(&|_| fcfs())
        .unwrap();
    assert_eq!(with_snaps, reference, "periodic checkpointing perturbed the fleet");

    // Kill every shard mid-drain, then restore and finish — into the
    // same queue impl the snapshot was taken under and into the other.
    let kill_dir = dir.join("killed");
    for (i, spec) in shards.iter().enumerate() {
        crash_mid_drain::<mrsim::IndexedEventQueue>(spec, i, &kill_dir);
    }
    for (i, expected) in reference.iter().enumerate() {
        let same_queue = restore_and_finish::<mrsim::IndexedEventQueue>(&kill_dir, i);
        assert_eq!(&same_queue, expected, "shard {i}: indexed restore diverged");
        let cross_queue = restore_and_finish::<BinaryHeapEventQueue>(&kill_dir, i);
        assert_eq!(&cross_queue, expected, "shard {i}: heap restore diverged");
    }

    // And the mirror-image kill under the heap queue restores into both.
    let heap_dir = dir.join("killed-heap");
    crash_mid_drain::<BinaryHeapEventQueue>(&shards[0], 0, &heap_dir);
    assert_eq!(
        restore_and_finish::<mrsim::IndexedEventQueue>(&heap_dir, 0),
        reference[0],
        "heap snapshot restored into the indexed queue diverged"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_drill_five_thousand_jobs_restores_bit_identically() {
    drill(5_000, 4);
}

/// The full-size drill the issue's acceptance criteria name: a 100k-job
/// disrupted fleet killed mid-drain. Run with
/// `cargo test --release --test snapshot_restart -- --ignored` (CI's
/// bench job does).
#[test]
#[ignore = "large trace: run explicitly or in the CI bench job"]
fn crash_drill_hundred_thousand_jobs_restores_bit_identically() {
    drill(100_000, 4);
}
