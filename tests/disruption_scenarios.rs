//! End-to-end disruption scenarios over the whole stack: synthesized
//! cancellation / overrun / drain traces driving the generalized event
//! engine under both the FCFS baseline and the DFP agent.

use mrsch::prelude::*;
use mrsch_workload::disruption::DrainSpec;

fn system() -> SystemConfig {
    SystemConfig::two_resource(32, 12)
}

fn eval_jobs(n: usize, seed: u64) -> Vec<Job> {
    let cfg = ThetaConfig { machine_nodes: 32, ..ThetaConfig::scaled(n) };
    WorkloadSpec::s1().build(&cfg.generate(seed), &system(), seed + 1)
}

fn full_disruptions() -> DisruptionConfig {
    DisruptionConfig {
        cancel_fraction: 0.15,
        overrun_fraction: 0.15,
        overrun_factor: 1.5,
        drains: vec![DrainSpec { resource: 0, fraction: 0.25, at: 2_000, duration: 5_000 }],
    }
}

fn run_fcfs(trace: &DisruptionTrace, enforce_walltime: bool) -> SimReport {
    let params = SimParams { enforce_walltime, ..SimParams::new(5, true) };
    let mut sim = Simulator::new(system(), trace.jobs.clone(), params).unwrap();
    sim.inject_all(&trace.events).unwrap();
    sim.run(&mut HeadOfQueue)
}

#[test]
fn fcfs_survives_combined_disruptions_with_full_accounting() {
    let jobs = eval_jobs(120, 3);
    let trace = full_disruptions().synthesize(&jobs, &system(), 11);
    let report = run_fcfs(&trace, true);
    assert!(
        report.all_jobs_accounted(trace.jobs.len()),
        "finished {} + cancelled {} + killed {} != {} (unfinished {})",
        report.jobs_completed,
        report.jobs_cancelled,
        report.jobs_killed,
        trace.jobs.len(),
        report.jobs_unfinished
    );
    assert!(report.jobs_cancelled > 0, "cancel events must land");
    assert!(report.jobs_killed > 0, "overrunners must be walltime-killed");
    assert!(report.capacity_lost_unit_seconds[0] > 0.0, "the drain must register");
    // Killed jobs die exactly at their walltime limit.
    for rec in report.records.iter().filter(|r| r.outcome == JobOutcome::Killed) {
        let est = trace.jobs[rec.id].estimate;
        assert_eq!(rec.end, rec.start + est, "job {} killed at start+estimate", rec.id);
    }
    // Cancelled-while-queued records carry zero runtime.
    for rec in report.records.iter().filter(|r| r.outcome == JobOutcome::Cancelled) {
        assert!(rec.end >= rec.start);
    }
}

#[test]
fn dfp_agent_survives_the_same_disruptions() {
    let jobs = eval_jobs(80, 5);
    let trace = full_disruptions().synthesize(&jobs, &system(), 13);
    let mut mrsch = MrschBuilder::new(
        system(),
        SimParams { enforce_walltime: true, ..SimParams::new(5, true) },
    )
    .seed(7)
    .batches_per_episode(4)
    .build();
    mrsch.train_episode(&eval_jobs(60, 6));
    let report = mrsch.evaluate_disrupted(&trace.jobs, &trace.events).unwrap();
    assert!(report.all_jobs_accounted(trace.jobs.len()));
    assert!(report.jobs_cancelled > 0);
    assert!(report.capacity_lost_unit_seconds[0] > 0.0);
}

#[test]
fn drained_utilization_is_normalized_by_online_capacity() {
    // A permanent 50 % drain with a half-machine-wide job stream: static
    // normalization would cap utilization near 0.5; the dynamic report
    // can exceed it because only 16 nodes exist after the drain.
    let jobs: Vec<Job> = (0..30)
        .map(|i| Job::new(i, (i as u64) * 10, 2_000, 2_400, vec![16, 0]))
        .collect();
    let mut sim = Simulator::new(system(), jobs, SimParams::new(5, true)).unwrap();
    sim.inject(InjectedEvent::new(
        1,
        EventKind::CapacityChange { resource: 0, delta: -16 },
    ))
    .unwrap();
    let report = sim.run(&mut HeadOfQueue);
    assert!(report.all_jobs_accounted(30));
    assert!(
        report.resource_utilization[0] > 0.9,
        "16-node jobs on a 16-node machine should saturate it: {}",
        report.resource_utilization[0]
    );
}

#[test]
fn backfill_reservations_survive_capacity_shrink() {
    // J0 holds 24 of 32 nodes until t=1000. J1 (needs 24) is reserved.
    // At t=100 a drain removes the 8 free nodes entirely; at t=500 they
    // return. The reservation must neither crash nor be lost: J1 starts
    // when J0 releases.
    let jobs = vec![
        Job::new(0, 0, 1000, 1000, vec![24, 0]),
        Job::new(1, 10, 100, 100, vec![24, 0]),
        Job::new(2, 20, 100, 100, vec![4, 0]),
    ];
    let mut sim = Simulator::new(system(), jobs, SimParams::new(5, true)).unwrap();
    sim.inject_all(&[
        InjectedEvent::new(100, EventKind::CapacityChange { resource: 0, delta: -8 }),
        InjectedEvent::new(500, EventKind::CapacityChange { resource: 0, delta: 8 }),
    ])
    .unwrap();
    let report = sim.run(&mut HeadOfQueue);
    assert!(report.all_jobs_accounted(3));
    let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
    assert_eq!(rec1.start, 1000, "reservation survives the shrink");
    let rec2 = report.records.iter().find(|r| r.id == 2).unwrap();
    assert!(
        rec2.start < 100 || rec2.start >= 500,
        "the small job runs while nodes exist, not during the total drain: {}",
        rec2.start
    );
}

#[test]
fn tick_driven_run_matches_untipped_schedule() {
    // Ticks add scheduling instances but no state changes: with no
    // disruptions the schedule (records) must be identical with and
    // without ticking.
    let jobs = eval_jobs(60, 9);
    let run = |tick: Option<u64>| {
        let params = SimParams { tick, ..SimParams::new(5, true) };
        let mut sim = Simulator::new(system(), jobs.clone(), params).unwrap();
        sim.run(&mut HeadOfQueue)
    };
    let plain = run(None);
    let ticked = run(Some(300));
    assert_eq!(plain.records, ticked.records, "ticks must not change the schedule");
    assert!(ticked.event_counts.count(EventKind::Tick) > 0);
    assert_eq!(plain.event_counts.count(EventKind::Tick), 0);
}

#[test]
fn cancellations_free_resources_for_later_jobs() {
    // J0 monopolizes the machine for a long time; J1 waits. Cancelling
    // J0 early lets J1 start immediately at the cancel time.
    let jobs = vec![
        Job::new(0, 0, 50_000, 50_000, vec![32, 0]),
        Job::new(1, 10, 100, 100, vec![32, 0]),
    ];
    let mut sim = Simulator::new(system(), jobs, SimParams::new(5, true)).unwrap();
    sim.inject(InjectedEvent::new(200, EventKind::Cancel(0))).unwrap();
    let report = sim.run(&mut HeadOfQueue);
    let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
    assert_eq!(rec1.start, 200);
    assert_eq!(report.end_time, 300);
    assert_eq!(report.jobs_cancelled, 1);
}
