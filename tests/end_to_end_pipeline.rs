//! Integration test spanning every crate: synthesize a trace
//! (mrsch-workload), derive a Table III workload, train an MRSch agent
//! (mrsch / mrsch-dfp / mrsch-nn / mrsch-linalg), evaluate it against all
//! three baselines (mrsch-baselines) under the simulator (mrsim), and
//! sanity-check the reports.

use mrsch::prelude::*;
use mrsch_baselines::scalar_rl::{RlMode, ScalarRlAgent, ScalarRlConfig, ScalarRlPolicy};
use mrsch_baselines::{FcfsPolicy, GaPolicy};
use mrsch_workload::split::paper_split;

fn system() -> SystemConfig {
    SystemConfig::two_resource(48, 16)
}

fn pipeline_jobs(seed: u64) -> (Vec<Job>, Vec<Job>) {
    let cfg = ThetaConfig { machine_nodes: 48, ..ThetaConfig::scaled(320) };
    let trace = cfg.generate(seed);
    let split = paper_split(&trace);
    let spec = WorkloadSpec::s4();
    let train = spec.build(&split.train[..70.min(split.train.len())], &system(), seed);
    let eval = spec.build(&split.test[..50.min(split.test.len())], &system(), seed + 1);
    (train, eval)
}

#[test]
fn full_pipeline_all_methods_complete_all_jobs() {
    let (train, eval) = pipeline_jobs(77);
    let params = SimParams::new(5, true);

    // MRSch.
    let mut mrsch = MrschBuilder::new(system(), params)
        .seed(5)
        .batches_per_episode(6)
        .build();
    mrsch.train_episode(&train);
    let mrsch_report = mrsch.evaluate(&eval);

    // Scalar RL.
    let encoder = StateEncoder::with_hour_scale(system(), 5);
    let mut rl =
        ScalarRlAgent::new(ScalarRlConfig::scaled(encoder.state_dim(), 5, 2), 5);
    {
        let mut p = ScalarRlPolicy::new(&mut rl, encoder.clone(), RlMode::Train);
        Simulator::new(system(), train.clone(), params).unwrap().run(&mut p);
    }
    let rl_report = {
        let mut p = ScalarRlPolicy::new(&mut rl, encoder, RlMode::Evaluate);
        Simulator::new(system(), eval.clone(), params).unwrap().run(&mut p)
    };

    // GA + FCFS.
    let ga_report = Simulator::new(system(), eval.clone(), params)
        .unwrap()
        .run(&mut GaPolicy::with_seed(5));
    let fcfs_report = Simulator::new(system(), eval.clone(), params)
        .unwrap()
        .run(&mut FcfsPolicy::default());

    for (name, r) in [
        ("mrsch", &mrsch_report),
        ("scalar_rl", &rl_report),
        ("ga", &ga_report),
        ("fcfs", &fcfs_report),
    ] {
        assert_eq!(r.jobs_completed, eval.len(), "{name} lost jobs");
        for (res, u) in r.resource_utilization.iter().enumerate() {
            assert!((0.0..=1.0).contains(u), "{name} res{res} util {u}");
        }
        assert!(r.avg_slowdown >= 1.0, "{name} slowdown {}", r.avg_slowdown);
        assert!(r.makespan > 0, "{name} empty makespan");
        // No scheduler should be pathologically worse than FCFS.
        assert!(
            r.makespan <= 3 * fcfs_report.makespan.max(1),
            "{name} makespan {} vs fcfs {}",
            r.makespan,
            fcfs_report.makespan
        );
    }
}

#[test]
fn trained_agent_beats_untrained_or_matches_on_loss() {
    let (train, _) = pipeline_jobs(88);
    let mut mrsch = MrschBuilder::new(system(), SimParams::new(5, true))
        .seed(9)
        .batches_per_episode(8)
        .build();
    let first = mrsch.train_episode(&train);
    let mut last = None;
    for _ in 0..2 {
        last = mrsch.train_episode(&train);
    }
    let (first, last) = (first.unwrap_or(f32::MAX), last.unwrap());
    assert!(
        last <= first * 1.5,
        "training diverged: first {first}, last {last}"
    );
    assert!(last.is_finite());
}

#[test]
fn goal_log_matches_contention_direction() {
    // On S4 (heavy BB demand) the average rBB should exceed the average
    // node weight whenever the BB demand-time dominates — validate the
    // sign of Eq. 1 end-to-end on at least a majority of decisions.
    let (_, eval) = pipeline_jobs(99);
    let mut mrsch = MrschBuilder::new(system(), SimParams::new(5, true))
        .seed(3)
        .build();
    let (_, log) = mrsch.evaluate_with_goal_log(&eval);
    assert!(!log.is_empty());
    for (_, g) in &log {
        let sum: f32 = g.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "goal normalizes: {g:?}");
        assert!(g.iter().all(|&x| x >= 0.0));
    }
}
