//! Integration test: training itself is deterministic and
//! worker-count-invariant — the same master seed produces bit-identical
//! trained network parameters and identical per-episode `SimReport`
//! counters whether episodes roll out on 1 thread or 4.
//!
//! This extends the `tests/determinism.rs` discipline (bit-identical
//! replay under serial vs parallel GEMM) up through the training loop:
//! rollout workers decide *where* an episode runs, never *what* it
//! computes, and per-worker buffers merge into replay in episode order.

use mrsch::prelude::*;

fn tiny_curriculum(seed: u64) -> Curriculum {
    let clean = Scenario::new(
        "clean",
        JobSource::Theta(ThetaConfig {
            machine_nodes: 16,
            mean_interarrival: 120.0,
            ..ThetaConfig::scaled(24)
        }),
        WorkloadSpec::s1(),
        SimParams::new(4, true),
    )
    .with_seed(seed);
    Curriculum::disruption_hardening(
        clean,
        DisruptionConfig {
            cancel_fraction: 0.25,
            overrun_fraction: 0.15,
            overrun_factor: 1.5,
            drains: Vec::new(),
        },
        DisruptionConfig::node_drain(0.25, 600, 2400),
        2,
    )
}

fn train(workers: usize, seed: u64) -> (EngineOutcome, bytes::Bytes, u64) {
    let mut cfg = DfpConfig::scaled(1, 2, 4);
    cfg.state_hidden = vec![32];
    cfg.state_embed = 16;
    cfg.io_hidden = 16;
    cfg.io_embed = 8;
    cfg.stream_hidden = 32;
    cfg.batch_size = 8;
    let trainer = TrainerConfig::default()
        .workers(workers)
        .round_size(3)
        .batches_per_episode(4);
    let mut mrsch = MrschBuilder::new(SystemConfig::two_resource(16, 8), SimParams::new(4, true))
        .seed(seed)
        .trainer(trainer)
        .dfp_config(cfg)
        .build();
    let outcome = mrsch.train_with_curriculum(&tiny_curriculum(seed ^ 0x11));
    let ckpt = mrsch.agent_mut().network_mut().save_checkpoint();
    let steps = mrsch.agent().train_steps();
    (outcome, ckpt, steps)
}

#[test]
fn one_and_four_workers_train_bit_identically() {
    let (o1, c1, s1) = train(1, 77);
    let (o4, c4, s4) = train(4, 77);
    assert_eq!(c1, c4, "network parameters must be bit-identical");
    assert_eq!(s1, s4, "gradient-step counts must match");
    assert_eq!(o1.total_episodes(), o4.total_episodes());
    let (r1, r4): (Vec<_>, Vec<_>) = (o1.reports().collect(), o4.reports().collect());
    assert_eq!(r1.len(), r4.len());
    for (a, b) in r1.iter().zip(&r4) {
        assert_eq!(a, b, "per-episode SimReports (incl. disruption counters) must match");
    }
    // The curriculum actually exercised disruptions.
    assert!(
        o1.phases[1].reports.iter().any(|r| r.jobs_cancelled + r.jobs_killed > 0),
        "cancel-heavy phase landed disruptions"
    );
    assert!(
        o1.phases[2].reports.iter().any(|r| r.capacity_lost_unit_seconds[0] > 0.0),
        "drain-heavy phase lost capacity"
    );
}

#[test]
fn different_master_seeds_diverge() {
    let (_, c1, _) = train(2, 1);
    let (_, c2, _) = train(2, 2);
    assert_ne!(c1, c2, "different seeds must train different weights");
}
