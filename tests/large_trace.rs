//! Large-trace determinism: a seeded disruption trace replays
//! bit-identically across every engine configuration.
//!
//! The PR that introduced the indexed event queue, the job slab, and the
//! sharded runner is locked down here: for a stress trace with cancels,
//! walltime overruns, a node-drain episode, and a tick chain, the full
//! `SimReport` (every record, counter, and metric) must be **equal** —
//! not approximately, `==` on the whole struct — across
//!
//! * the seed's binary-heap event queue vs the indexed calendar queue,
//! * a serial run vs the sharded runner,
//! * 1, 2, and 4 worker threads.
//!
//! Tier-1 runs a 5 000-job trace; the 100 000-job version of the same
//! checks runs under `--ignored` (CI executes it in the bench job).

use mrsch_workload::disruption::{DisruptionConfig, DrainSpec};
use mrsch_workload::StressConfig;
use mrsim::policy::{HeadOfQueue, Policy};
use mrsim::{
    partition_round_robin, BinaryHeapEventQueue, ShardSpec, ShardTotals, ShardedSim, SimParams,
    SimReport, Simulator, SystemConfig,
};

const NODES: u64 = 256;
const BB: u64 = 32;
const SEED: u64 = 20_220_517; // MRSch camera-ready date

fn system() -> SystemConfig {
    SystemConfig::two_resource(NODES, BB)
}

fn params() -> SimParams {
    SimParams { enforce_walltime: true, tick: Some(900), ..SimParams::new(10, true) }
}

/// Build `nshards` disrupted shard specs over an `n`-job stress trace.
/// Disruptions are synthesized per shard (seeded by shard index) so each
/// shard carries cancels, overruns, and a mid-trace drain episode.
fn disrupted_shards(n: usize, nshards: usize) -> Vec<ShardSpec> {
    let jobs = StressConfig::engine(n, vec![NODES, BB]).generate(SEED);
    let span = jobs.last().expect("nonempty trace").submit;
    partition_round_robin(&jobs, nshards)
        .into_iter()
        .enumerate()
        .map(|(s, shard_jobs)| {
            let disruptions = DisruptionConfig {
                cancel_fraction: 0.08,
                overrun_fraction: 0.08,
                overrun_factor: 1.5,
                drains: vec![DrainSpec {
                    resource: 0,
                    fraction: 0.25,
                    at: span / 4,
                    duration: span / 4,
                }],
            };
            let trace = disruptions.synthesize(&shard_jobs, &system(), SEED + 101 * s as u64);
            ShardSpec {
                config: system(),
                jobs: trace.jobs,
                params: params(),
                events: trace.events,
                relative_cancels: Vec::new(),
            }
        })
        .collect()
}

fn fcfs() -> Box<dyn Policy + Send> {
    Box::new(HeadOfQueue)
}

/// The core lockstep check at a given trace size.
fn assert_engine_configurations_agree(n: usize) {
    // Old vs new queue on a single (unsharded) simulator.
    let single = disrupted_shards(n, 1).remove(0);
    let run_single = |report: &mut dyn FnMut() -> SimReport| report();
    let mut indexed_sim =
        Simulator::new(single.config.clone(), single.jobs.clone(), single.params).unwrap();
    indexed_sim.inject_all(&single.events).unwrap();
    let indexed_report = run_single(&mut || indexed_sim.run(&mut HeadOfQueue));
    let mut heap_sim = Simulator::<BinaryHeapEventQueue>::with_queue(
        single.config.clone(),
        single.jobs.clone(),
        single.params,
    )
    .unwrap();
    heap_sim.inject_all(&single.events).unwrap();
    let heap_report = run_single(&mut || heap_sim.run(&mut HeadOfQueue));
    assert_eq!(indexed_report, heap_report, "binary-heap vs indexed queue diverged");

    // The disruptions actually fired: this test must not vacuously pass.
    assert!(indexed_report.jobs_completed > 0, "completions landed");
    assert!(indexed_report.jobs_cancelled > 0, "cancels landed");
    assert!(indexed_report.jobs_killed > 0, "walltime kills landed");
    assert!(indexed_report.event_counts.count(mrsim::EventKind::Tick) > 0, "ticks fired");

    // Sharded: worker count and queue implementation are both invisible.
    let sharded1 = ShardedSim::new(disrupted_shards(n, 4)).workers(1).run_with(&|_| fcfs());
    let sharded2 = ShardedSim::new(disrupted_shards(n, 4)).workers(2).run_with(&|_| fcfs());
    let sharded4 = ShardedSim::new(disrupted_shards(n, 4)).workers(4).run_with(&|_| fcfs());
    let sharded_heap = ShardedSim::new(disrupted_shards(n, 4))
        .workers(4)
        .run_with_queue::<BinaryHeapEventQueue, _>(&|_| fcfs());
    let serial = sharded1.expect("serial fleet runs");
    assert_eq!(serial, sharded2.expect("2-worker fleet runs"), "1 vs 2 workers diverged");
    assert_eq!(serial, sharded4.expect("4-worker fleet runs"), "1 vs 4 workers diverged");
    assert_eq!(
        serial,
        sharded_heap.expect("heap-queue fleet runs"),
        "sharded heap vs indexed queue diverged"
    );

    // Every job in every shard is accounted for in the merged totals.
    let totals = ShardTotals::merge(&serial);
    assert_eq!(
        totals.jobs_completed + totals.jobs_cancelled + totals.jobs_killed
            + totals.jobs_unfinished,
        n,
        "merged totals must account for every job"
    );
}

#[test]
fn five_thousand_job_trace_replays_bit_identically() {
    assert_engine_configurations_agree(5_000);
}

/// The full-size version of the same lockstep check; ~100k jobs with
/// disruptions. Run with `cargo test --release -- --ignored` (CI's bench
/// job does).
#[test]
#[ignore = "large trace: run explicitly or in the CI bench job"]
fn hundred_thousand_job_trace_replays_bit_identically() {
    assert_engine_configurations_agree(100_000);
}
