//! Classic list-scheduling heuristics beyond FCFS.
//!
//! The paper's "Heuristic" baseline is FCFS (the canonical list
//! scheduler); production schedulers also ship shortest-job-first,
//! largest-first and utilization-greedy orderings. These policies give
//! library users a richer comparison set and the test suite additional
//! reference behaviors. All of them run under the same window +
//! reservation + EASY-backfilling mechanics as every other policy.

use mrsim::policy::{Policy, SchedulerView};
use serde::{Deserialize, Serialize};

/// Ordering criterion for [`ListPolicy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ListOrder {
    /// Shortest estimated runtime first (SJF) — favors responsiveness.
    ShortestFirst,
    /// Longest estimated runtime first (LJF).
    LongestFirst,
    /// Smallest node request first — packs many small jobs.
    SmallestFirst,
    /// Largest node request first — classic bin-packing heuristic.
    LargestFirst,
    /// Largest total demand fraction (summed over resources) first —
    /// multi-resource generalization of largest-first.
    MostDemandingFirst,
}

/// A window list scheduler: selects jobs by a static ordering criterion,
/// with arrival order (window position) as the tie-breaker.
#[derive(Clone, Copy, Debug)]
pub struct ListPolicy {
    order: ListOrder,
}

impl ListPolicy {
    /// Build a policy with the given ordering.
    pub fn new(order: ListOrder) -> Self {
        Self { order }
    }

    /// Sort key of a window entry; lower = selected earlier.
    fn key(&self, view: &SchedulerView<'_>, idx: usize) -> f64 {
        let job = view.window[idx].job;
        match self.order {
            ListOrder::ShortestFirst => job.estimate as f64,
            ListOrder::LongestFirst => -(job.estimate as f64),
            ListOrder::SmallestFirst => job.demands[0] as f64,
            ListOrder::LargestFirst => -(job.demands[0] as f64),
            ListOrder::MostDemandingFirst => {
                let caps = view.config.capacities();
                -job.demands
                    .iter()
                    .zip(&caps)
                    .map(|(&d, &c)| if c == 0 { 0.0 } else { d as f64 / c as f64 })
                    .sum::<f64>()
            }
        }
    }
}

impl Policy for ListPolicy {
    fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
        (0..view.window.len()).min_by(|&a, &b| {
            self.key(view, a)
                .partial_cmp(&self.key(view, b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b)) // arrival order breaks ties
        })
    }

    fn name(&self) -> &'static str {
        match self.order {
            ListOrder::ShortestFirst => "sjf",
            ListOrder::LongestFirst => "ljf",
            ListOrder::SmallestFirst => "smallest_first",
            ListOrder::LargestFirst => "largest_first",
            ListOrder::MostDemandingFirst => "most_demanding_first",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsim::job::Job;
    use mrsim::resources::SystemConfig;
    use mrsim::simulator::{SimParams, Simulator};

    fn run(order: ListOrder, jobs: Vec<Job>) -> mrsim::SimReport {
        let mut p = ListPolicy::new(order);
        Simulator::new(SystemConfig::two_resource(4, 4), jobs, SimParams::default())
            .unwrap()
            .run(&mut p)
    }

    fn contended_jobs() -> Vec<Job> {
        // All need the whole machine; only the order differs.
        vec![
            Job::new(0, 0, 300, 300, vec![4, 0]),
            Job::new(1, 0, 100, 100, vec![4, 0]),
            Job::new(2, 0, 200, 200, vec![4, 0]),
        ]
    }

    #[test]
    fn sjf_runs_shortest_first() {
        let r = run(ListOrder::ShortestFirst, contended_jobs());
        let start = |id: usize| r.records.iter().find(|x| x.id == id).unwrap().start;
        assert!(start(1) < start(2) && start(2) < start(0));
    }

    #[test]
    fn ljf_runs_longest_first() {
        let r = run(ListOrder::LongestFirst, contended_jobs());
        let start = |id: usize| r.records.iter().find(|x| x.id == id).unwrap().start;
        assert!(start(0) < start(2) && start(2) < start(1));
    }

    #[test]
    fn sjf_minimizes_avg_wait_on_contended_queue() {
        // Classic result: SJF is optimal for mean wait on a single server.
        let sjf = run(ListOrder::ShortestFirst, contended_jobs());
        let ljf = run(ListOrder::LongestFirst, contended_jobs());
        assert!(sjf.avg_wait < ljf.avg_wait);
    }

    #[test]
    fn size_orderings_respect_node_request() {
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![4, 0]),
            Job::new(1, 0, 100, 100, vec![1, 0]),
        ];
        let r = run(ListOrder::SmallestFirst, jobs.clone());
        let start = |r: &mrsim::SimReport, id: usize| {
            r.records.iter().find(|x| x.id == id).unwrap().start
        };
        assert_eq!(start(&r, 1), 0, "small job first");
        let r = run(ListOrder::LargestFirst, jobs);
        assert_eq!(start(&r, 0), 0, "large job first");
    }

    #[test]
    fn most_demanding_weighs_all_resources() {
        // Job 0: 1 node + whole BB (fraction sum 0.25+1.0=1.25);
        // Job 1: 3 nodes, no BB (0.75). Most-demanding picks job 0 first.
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![1, 4]),
            Job::new(1, 0, 100, 100, vec![3, 0]),
        ];
        let r = run(ListOrder::MostDemandingFirst, jobs);
        let rec0 = r.records.iter().find(|x| x.id == 0).unwrap();
        assert_eq!(rec0.start, 0);
    }

    #[test]
    fn all_orderings_complete_everything() {
        for order in [
            ListOrder::ShortestFirst,
            ListOrder::LongestFirst,
            ListOrder::SmallestFirst,
            ListOrder::LargestFirst,
            ListOrder::MostDemandingFirst,
        ] {
            let jobs: Vec<Job> = (0..15)
                .map(|i| {
                    Job::new(i, (i as u64) * 10, 50 + (i as u64 % 5) * 30, 400,
                             vec![1 + (i as u64 % 4), i as u64 % 3])
                })
                .collect();
            let r = run(order, jobs);
            assert_eq!(r.jobs_completed, 15, "{order:?}");
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = [
            ListOrder::ShortestFirst,
            ListOrder::LongestFirst,
            ListOrder::SmallestFirst,
            ListOrder::LargestFirst,
            ListOrder::MostDemandingFirst,
        ]
        .into_iter()
        .map(|o| ListPolicy::new(o).name())
        .collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
