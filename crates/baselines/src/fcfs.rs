//! The **Heuristic** baseline: first-come, first-serve extended to
//! multi-resource scheduling.
//!
//! FCFS is the canonical instance of list scheduling: jobs are considered
//! strictly in arrival order; the head of the queue either starts (if all
//! of its resource demands fit) or becomes the reservation, after which
//! EASY backfilling fills the gaps. All of that mechanics lives in the
//! simulator — the policy itself merely always picks window slot 0, which
//! is exactly [`mrsim::policy::HeadOfQueue`]. The alias exists so
//! experiment code reads as the paper does.

/// FCFS selection policy (alias of the simulator's head-of-queue policy).
pub type FcfsPolicy = mrsim::policy::HeadOfQueue;

#[cfg(test)]
mod tests {
    use super::*;
    use mrsim::job::Job;
    use mrsim::policy::Policy;
    use mrsim::resources::SystemConfig;
    use mrsim::simulator::{SimParams, Simulator};

    #[test]
    fn fcfs_orders_by_arrival() {
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 1, 10, 10, vec![2, 0]),
            Job::new(2, 2, 10, 10, vec![2, 0]),
        ];
        let mut sim = Simulator::new(
            SystemConfig::two_resource(2, 2),
            jobs,
            SimParams::default(),
        )
        .unwrap();
        let report = sim.run(&mut FcfsPolicy::default());
        let starts: Vec<u64> = report.records.iter().map(|r| r.start).collect();
        assert_eq!(starts, vec![0, 100, 110], "strict arrival order");
    }

    #[test]
    fn policy_name_is_fcfs() {
        assert_eq!(FcfsPolicy::default().name(), "fcfs");
    }
}
