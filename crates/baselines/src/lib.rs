//! The comparison schedulers of §IV-D of the MRSch paper.
//!
//! Three baselines run under *identical* simulator mechanics (same
//! window, same reservation + EASY backfilling) so that differences in
//! the reports isolate the selection policy:
//!
//! * [`fcfs`] — **Heuristic**: FCFS extended to multi-resource
//!   scheduling (a member of the list-scheduling family),
//! * [`ga`] — **Optimization**: the multi-objective genetic-algorithm
//!   scheduler in the style of Fan et al. (HPDC'19), run over the same
//!   W-job window at every scheduling instance,
//! * [`scalar_rl`] — **Scalar RL**: a policy-gradient agent whose reward
//!   collapses the measurement vector with fixed weights
//!   (`0.5·CPU-util + 0.5·BB-util`), the strawman MRSch's dynamic goal
//!   vector is compared against.
//!
//! [`heuristics`] adds the classic list orderings (SJF, LJF,
//! smallest/largest-first, most-demanding-first) beyond the paper's
//! baselines, for richer library-level comparisons.

pub mod fcfs;
pub mod ga;
pub mod heuristics;
pub mod scalar_rl;

pub use fcfs::FcfsPolicy;
pub use heuristics::{ListOrder, ListPolicy};
pub use ga::{GaConfig, GaPolicy};
pub use scalar_rl::{ScalarRlAgent, ScalarRlConfig, ScalarRlPolicy, TrainedScalarRlPolicy};
