//! The **Scalar RL** baseline: policy-gradient RL with a fixed-weight
//! scalar reward (§IV-D).
//!
//! This represents the "simple extension" the paper argues against: take
//! a single-objective RL scheduler and collapse the multi-resource
//! measurement into one number with fixed priorities — here
//! `r = 0.5·CPU-util + 0.5·BB-util` (uniform weights over resources in
//! general). The agent is REINFORCE with a learned value baseline over
//! the same vector state encoding MRSch uses, so the *only* conceptual
//! difference from MRSch is the scalar, statically-weighted objective.

use mrsch::encoder::StateEncoder;
use mrsch_linalg::Matrix;
use mrsch_nn::layer::Activation;
use mrsch_nn::net::Sequential;
use mrsch_nn::opt::{Adam, Optimizer};
use mrsim::metrics::SimReport;
use mrsim::policy::{Policy, SchedulerView, StepFeedback};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the scalar-RL agent.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScalarRlConfig {
    /// State dimension (from the [`StateEncoder`]).
    pub state_dim: usize,
    /// Number of actions (window size).
    pub num_actions: usize,
    /// Fixed per-resource reward weights (paper: 0.5 / 0.5).
    pub reward_weights: Vec<f64>,
    /// Hidden width of policy and value networks.
    pub hidden: usize,
    /// Discount factor.
    pub gamma: f64,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Entropy-free exploration: during training actions are sampled from
    /// the softmax; during evaluation argmax. This flag keeps a floor on
    /// the sampling temperature.
    pub temperature: f32,
}

impl ScalarRlConfig {
    /// Defaults for a given encoder geometry with uniform reward weights
    /// over `num_resources`.
    pub fn scaled(state_dim: usize, num_actions: usize, num_resources: usize) -> Self {
        Self {
            state_dim,
            num_actions,
            reward_weights: vec![1.0 / num_resources as f64; num_resources],
            hidden: 64,
            gamma: 0.99,
            learning_rate: 1e-3,
            temperature: 1.0,
        }
    }
}

/// One trajectory step retained for the episode update.
#[derive(Clone, Debug)]
struct TrajStep {
    state: Vec<f32>,
    action: usize,
    valid: Vec<bool>,
    reward: f64,
}

/// The learning agent (kept separate from the per-run [`ScalarRlPolicy`]
/// so one agent can train across many episodes).
#[derive(Debug)]
pub struct ScalarRlAgent {
    cfg: ScalarRlConfig,
    policy_net: Sequential,
    value_net: Sequential,
    opt_policy: Adam,
    opt_value: Adam,
    rng: StdRng,
    episodes: u64,
}

impl ScalarRlAgent {
    /// Fresh agent.
    pub fn new(cfg: ScalarRlConfig, seed: u64) -> Self {
        assert!(!cfg.reward_weights.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        let policy_net = Sequential::new()
            .dense(cfg.state_dim, cfg.hidden, &mut rng)
            .activation(Activation::LeakyRelu(0.01))
            .dense(cfg.hidden, cfg.num_actions, &mut rng);
        let value_net = Sequential::new()
            .dense(cfg.state_dim, cfg.hidden, &mut rng)
            .activation(Activation::LeakyRelu(0.01))
            .dense(cfg.hidden, 1, &mut rng);
        let opt_policy = Adam::new(cfg.learning_rate);
        let opt_value = Adam::new(cfg.learning_rate);
        Self { cfg, policy_net, value_net, opt_policy, opt_value, rng, episodes: 0 }
    }

    /// Configuration accessor.
    pub fn config(&self) -> &ScalarRlConfig {
        &self.cfg
    }

    /// Episodes trained.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Scalar reward: fixed-weight combination of the measurement vector.
    pub fn scalar_reward(&self, measurement: &[f64]) -> f64 {
        measurement
            .iter()
            .zip(&self.cfg.reward_weights)
            .map(|(m, w)| m * w)
            .sum()
    }

    /// Masked softmax action probabilities for one state.
    fn action_probs(&mut self, state: &[f32], valid: &[bool]) -> Vec<f32> {
        let x = Matrix::row_vector(state.to_vec());
        let logits = self.policy_net.forward(&x);
        masked_softmax(logits.row(0), valid, self.cfg.temperature)
    }

    /// Choose an action: sampled when `explore`, argmax otherwise.
    fn act(&mut self, state: &[f32], valid: &[bool], explore: bool) -> Option<usize> {
        if !valid.iter().any(|&v| v) {
            return None;
        }
        let probs = self.action_probs(state, valid);
        if explore {
            let mut t = self.rng.gen::<f32>();
            for (i, &p) in probs.iter().enumerate() {
                if p <= 0.0 {
                    continue;
                }
                if t < p {
                    return Some(i);
                }
                t -= p;
            }
        }
        // Argmax fallback (and evaluation path).
        greedy_pick(&probs, valid)
    }

    /// Greedy action through a shared reference (cache-free forward):
    /// the evaluation path of [`TrainedScalarRlPolicy`], bit-identical
    /// to [`ScalarRlAgent::act`] with `explore = false`.
    pub fn act_greedy(&self, state: &[f32], valid: &[bool]) -> Option<usize> {
        if !valid.iter().any(|&v| v) {
            return None;
        }
        let x = Matrix::row_vector(state.to_vec());
        let logits = self.policy_net.forward_inference(&x);
        let probs = masked_softmax(logits.row(0), valid, self.cfg.temperature);
        greedy_pick(&probs, valid)
    }

    /// Serialize both networks (policy first, then value) into one
    /// self-describing [`mrsch_nn::checkpoint`] blob — the format the
    /// content-addressed policy cache stores.
    pub fn save_checkpoint(&mut self) -> bytes::Bytes {
        let Self { policy_net, value_net, .. } = self;
        mrsch_nn::checkpoint::save_visitor(|f| {
            policy_net.visit_params(&mut |p, g| f(p, g));
            value_net.visit_params(&mut |p, g| f(p, g));
        })
    }

    /// Load a checkpoint produced by [`ScalarRlAgent::save_checkpoint`]
    /// into an agent with the identical architecture. The episode
    /// counter and RNG are *not* restored — greedy evaluation
    /// ([`ScalarRlAgent::act_greedy`]) touches neither.
    pub fn load_checkpoint(
        &mut self,
        data: &[u8],
    ) -> Result<(), mrsch_nn::checkpoint::CheckpointError> {
        let Self { policy_net, value_net, .. } = self;
        mrsch_nn::checkpoint::load_visitor(
            |f| {
                policy_net.visit_params(&mut |p, g| f(p, g));
                value_net.visit_params(&mut |p, g| f(p, g));
            },
            data,
        )
    }

    /// REINFORCE-with-baseline update over one finished trajectory.
    fn update(&mut self, traj: &[TrajStep]) {
        if traj.is_empty() {
            self.episodes += 1;
            return;
        }
        // Discounted returns.
        let n = traj.len();
        let mut returns = vec![0.0f64; n];
        let mut acc = 0.0f64;
        for t in (0..n).rev() {
            acc = traj[t].reward + self.cfg.gamma * acc;
            returns[t] = acc;
        }
        // Batch matrices.
        let mut states = Matrix::zeros(n, self.cfg.state_dim);
        for (i, s) in traj.iter().enumerate() {
            states.row_mut(i).copy_from_slice(&s.state);
        }
        // Value baseline + value regression toward returns.
        let values = self.value_net.forward(&states);
        let mut value_grad = Matrix::zeros(n, 1);
        let mut advantages = vec![0.0f32; n];
        for i in 0..n {
            let v = values.get(i, 0);
            let g = returns[i] as f32;
            advantages[i] = g - v;
            value_grad.set(i, 0, 2.0 * (v - g) / n as f32);
        }
        self.value_net.zero_grad();
        self.value_net.backward(&value_grad);
        self.value_net.clip_grad_norm(5.0);
        self.opt_value.step(&mut self.value_net);
        // Policy gradient: dL/dlogits = (softmax − onehot(a)) · adv / n.
        let logits = self.policy_net.forward(&states);
        let mut logit_grad = Matrix::zeros(n, self.cfg.num_actions);
        for i in 0..n {
            let probs = masked_softmax(logits.row(i), &traj[i].valid, self.cfg.temperature);
            let adv = advantages[i] / n as f32;
            for (a, &p) in probs.iter().enumerate().take(self.cfg.num_actions) {
                let indicator = if a == traj[i].action { 1.0 } else { 0.0 };
                logit_grad.set(i, a, (p - indicator) * adv);
            }
        }
        self.policy_net.zero_grad();
        self.policy_net.backward(&logit_grad);
        self.policy_net.clip_grad_norm(5.0);
        self.opt_policy.step(&mut self.policy_net);
        self.episodes += 1;
    }
}

/// Deterministic argmax over valid actions (the shared evaluation rule:
/// `max_by` keeps the *last* maximum, so both acting paths tie-break
/// identically).
fn greedy_pick(probs: &[f32], valid: &[bool]) -> Option<usize> {
    probs
        .iter()
        .enumerate()
        .filter(|&(i, _)| valid[i])
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
}

/// Numerically stable masked softmax with temperature.
fn masked_softmax(logits: &[f32], valid: &[bool], temperature: f32) -> Vec<f32> {
    let t = temperature.max(1e-3);
    let max = logits
        .iter()
        .zip(valid)
        .filter(|&(_, &v)| v)
        .map(|(&l, _)| l)
        .fold(f32::NEG_INFINITY, f32::max);
    let mut exps: Vec<f32> = logits
        .iter()
        .zip(valid)
        .map(|(&l, &v)| if v { ((l - max) / t).exp() } else { 0.0 })
        .collect();
    let sum: f32 = exps.iter().sum();
    if sum > 0.0 {
        for e in &mut exps {
            *e /= sum;
        }
    }
    exps
}

/// Operating mode of the per-run policy wrapper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RlMode {
    /// Sample actions and learn at episode end.
    Train,
    /// Greedy actions, no learning.
    Evaluate,
}

/// [`Policy`] adapter running a [`ScalarRlAgent`] inside the simulator.
pub struct ScalarRlPolicy<'a> {
    agent: &'a mut ScalarRlAgent,
    encoder: StateEncoder,
    mode: RlMode,
    traj: Vec<TrajStep>,
    pending: Option<(Vec<f32>, usize, Vec<bool>)>,
}

impl<'a> ScalarRlPolicy<'a> {
    /// Wrap an agent for one simulation run.
    pub fn new(agent: &'a mut ScalarRlAgent, encoder: StateEncoder, mode: RlMode) -> Self {
        assert_eq!(agent.cfg.state_dim, encoder.state_dim());
        assert_eq!(agent.cfg.num_actions, encoder.window());
        Self { agent, encoder, mode, traj: Vec::new(), pending: None }
    }
}

impl Policy for ScalarRlPolicy<'_> {
    fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
        if view.window.is_empty() {
            return None;
        }
        let state = self.encoder.encode(view);
        let valid = self.encoder.valid_actions(view);
        let action = self.agent.act(&state, &valid, self.mode == RlMode::Train)?;
        if self.mode == RlMode::Train {
            self.pending = Some((state, action, valid));
        }
        Some(action)
    }

    fn feedback(&mut self, fb: &StepFeedback) {
        if self.mode == RlMode::Train {
            if let Some((state, action, valid)) = self.pending.take() {
                let reward = self.agent.scalar_reward(&fb.measurement);
                self.traj.push(TrajStep { state, action, valid, reward });
            }
        }
    }

    fn episode_end(&mut self, _report: &SimReport) {
        if self.mode == RlMode::Train {
            let traj = std::mem::take(&mut self.traj);
            self.agent.update(&traj);
        }
    }

    fn name(&self) -> &'static str {
        "scalar_rl"
    }
}

/// Owned, evaluation-only wrapper around a trained [`ScalarRlAgent`]:
/// the boxed-`Policy` form the `mrsch_eval` registry hands to the
/// evaluation harness. Acts greedily through the cache-free forward
/// pass; it carries no per-episode state, so [`Policy::reset`] is the
/// default no-op and one instance can be reused across episodes.
pub struct TrainedScalarRlPolicy {
    agent: ScalarRlAgent,
    encoder: StateEncoder,
}

impl TrainedScalarRlPolicy {
    /// Take ownership of a trained agent for evaluation runs.
    pub fn new(agent: ScalarRlAgent, encoder: StateEncoder) -> Self {
        assert_eq!(agent.cfg.state_dim, encoder.state_dim());
        assert_eq!(agent.cfg.num_actions, encoder.window());
        Self { agent, encoder }
    }

    /// The wrapped agent.
    pub fn agent(&self) -> &ScalarRlAgent {
        &self.agent
    }

    /// Mutable access to the wrapped agent (checkpoint save/load).
    pub fn agent_mut(&mut self) -> &mut ScalarRlAgent {
        &mut self.agent
    }
}

impl Policy for TrainedScalarRlPolicy {
    fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
        if view.window.is_empty() {
            return None;
        }
        let state = self.encoder.encode(view);
        let valid = self.encoder.valid_actions(view);
        self.agent.act_greedy(&state, &valid)
    }

    fn name(&self) -> &'static str {
        "scalar_rl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsim::job::Job;
    use mrsim::resources::SystemConfig;
    use mrsim::simulator::{SimParams, Simulator};

    fn setup() -> (SystemConfig, StateEncoder, ScalarRlAgent) {
        let system = SystemConfig::two_resource(8, 4);
        let encoder = StateEncoder::with_hour_scale(system.clone(), 4);
        let cfg = ScalarRlConfig::scaled(encoder.state_dim(), 4, 2);
        let agent = ScalarRlAgent::new(cfg, 9);
        (system, encoder, agent)
    }

    fn jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| {
                Job::new(i, (i as u64) * 25, 100 + (i as u64 % 4) * 50, 600,
                         vec![1 + (i as u64 % 4), i as u64 % 3])
            })
            .collect()
    }

    #[test]
    fn checkpoint_round_trips_both_networks() {
        let (_, _, mut trained) = setup();
        // Nudge the weights away from init so the round trip is not
        // trivially comparing two fresh agents.
        trained.policy_net.visit_params(&mut |p, _| {
            for v in p.as_mut_slice() {
                *v += 0.125;
            }
        });
        let ckpt = trained.save_checkpoint();
        let (_, encoder, mut fresh) = setup();
        fresh.load_checkpoint(&ckpt).expect("identical architecture");
        let state = vec![0.1f32; encoder.state_dim()];
        let valid = vec![true, true, false, true];
        assert_eq!(
            trained.act_greedy(&state, &valid),
            fresh.act_greedy(&state, &valid),
            "restored agent must act identically"
        );
        // A different architecture is rejected, not silently loaded.
        let mut other = ScalarRlAgent::new(
            ScalarRlConfig::scaled(7, 4, 2),
            9,
        );
        assert!(other.load_checkpoint(&ckpt).is_err());
    }

    #[test]
    fn scalar_reward_is_fixed_weighted_sum() {
        let (_, _, agent) = setup();
        assert!((agent.scalar_reward(&[0.8, 0.4]) - 0.6).abs() < 1e-12);
        assert!((agent.scalar_reward(&[0.0, 0.0])).abs() < 1e-12);
    }

    #[test]
    fn masked_softmax_zeroes_invalid() {
        let p = masked_softmax(&[1.0, 2.0, 3.0], &[true, false, true], 1.0);
        assert_eq!(p[1], 0.0);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p[2] > p[0]);
    }

    #[test]
    fn masked_softmax_all_invalid_is_zero() {
        let p = masked_softmax(&[1.0, 2.0], &[false, false], 1.0);
        assert_eq!(p, vec![0.0, 0.0]);
    }

    #[test]
    fn training_episode_updates_agent() {
        let (system, encoder, mut agent) = setup();
        {
            let mut policy = ScalarRlPolicy::new(&mut agent, encoder, RlMode::Train);
            let mut sim =
                Simulator::new(system, jobs(25), SimParams::new(4, true))
                    .unwrap();
            let report = sim.run(&mut policy);
            assert_eq!(report.jobs_completed, 25);
        }
        assert_eq!(agent.episodes(), 1);
    }

    #[test]
    fn evaluation_is_deterministic_and_side_effect_free() {
        let (system, encoder, mut agent) = setup();
        let run = |agent: &mut ScalarRlAgent, encoder: StateEncoder| {
            let mut policy = ScalarRlPolicy::new(agent, encoder, RlMode::Evaluate);
            Simulator::new(system.clone(), jobs(15), SimParams::new(4, true))
                .unwrap()
                .run(&mut policy)
        };
        let a = run(&mut agent, encoder.clone());
        let b = run(&mut agent, encoder);
        assert_eq!(a.records, b.records);
        assert_eq!(agent.episodes(), 0);
    }

    #[test]
    fn update_moves_policy_toward_rewarded_actions() {
        // Single-state bandit: action 0 yields reward 1, action 1 yields 0.
        let cfg = ScalarRlConfig {
            state_dim: 2,
            num_actions: 2,
            reward_weights: vec![1.0],
            hidden: 8,
            gamma: 0.0,
            learning_rate: 5e-2,
            temperature: 1.0,
        };
        let mut agent = ScalarRlAgent::new(cfg, 3);
        let state = vec![1.0f32, 0.0];
        let valid = vec![true, true];
        for _ in 0..60 {
            let traj = vec![
                TrajStep { state: state.clone(), action: 0, valid: valid.clone(), reward: 1.0 },
                TrajStep { state: state.clone(), action: 1, valid: valid.clone(), reward: 0.0 },
            ];
            agent.update(&traj);
        }
        let probs = agent.action_probs(&state, &valid);
        assert!(
            probs[0] > 0.7,
            "policy should prefer the rewarded action: {probs:?}"
        );
    }

    #[test]
    fn owned_eval_policy_matches_borrowed_eval_policy() {
        let (system, encoder, mut agent) = setup();
        let borrowed = {
            let mut policy = ScalarRlPolicy::new(&mut agent, encoder.clone(), RlMode::Evaluate);
            Simulator::new(system.clone(), jobs(20), SimParams::new(4, true))
                .unwrap()
                .run(&mut policy)
        };
        let mut owned = TrainedScalarRlPolicy::new(agent, encoder);
        let owned_report = Simulator::new(system, jobs(20), SimParams::new(4, true))
            .unwrap()
            .run(&mut owned);
        assert_eq!(borrowed.records, owned_report.records, "acting paths must agree");
    }

    #[test]
    fn uniform_weights_match_paper_for_two_resources() {
        let cfg = ScalarRlConfig::scaled(10, 4, 2);
        assert_eq!(cfg.reward_weights, vec![0.5, 0.5]);
    }
}
