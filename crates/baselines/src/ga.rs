//! The **Optimization** baseline: multi-objective genetic-algorithm
//! scheduling over the waiting window.
//!
//! Following the paper's description of [13] (Fan et al., "Scheduling
//! Beyond CPUs for HPC", HPDC 2019), each scheduling instance is
//! formulated as a multi-objective optimization problem — maximize the
//! post-placement utilization of every resource — and solved with an
//! NSGA-II-style genetic algorithm over *orderings* of the window jobs:
//! an individual is a permutation, decoded by greedily starting jobs in
//! permutation order while they fit. From the final Pareto front the
//! knee point (maximal sum of normalized objectives) is selected, for a
//! fair single decision per instance. The chosen ordering is then fed to
//! the simulator one selection at a time.
//!
//! The window size matches MRSch's (§IV-D: "For a fair comparison, we
//! apply the same window size as in MRSch").

use mrsim::job::JobId;
use mrsim::policy::{Policy, SchedulerView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Genetic-algorithm hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Generations per scheduling instance.
    pub generations: usize,
    /// Probability of order-crossover per offspring.
    pub crossover_rate: f64,
    /// Probability of a swap mutation per offspring.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            population: 32,
            generations: 20,
            crossover_rate: 0.9,
            mutation_rate: 0.2,
            tournament: 3,
        }
    }
}

/// The GA scheduling policy.
#[derive(Debug)]
pub struct GaPolicy {
    cfg: GaConfig,
    seed: u64,
    rng: StdRng,
    plan: VecDeque<JobId>,
    plan_instance: Option<u64>,
}

impl GaPolicy {
    /// Build with the given hyper-parameters and seed.
    pub fn new(cfg: GaConfig, seed: u64) -> Self {
        assert!(cfg.population >= 2 && cfg.tournament >= 1);
        Self {
            cfg,
            seed,
            rng: StdRng::seed_from_u64(seed),
            plan: VecDeque::new(),
            plan_instance: None,
        }
    }

    /// Default-configured policy.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(GaConfig::default(), seed)
    }

    /// Optimize an ordering for the current instance.
    fn optimize(&mut self, view: &SchedulerView<'_>) -> Vec<JobId> {
        let n = view.window.len();
        if n <= 1 {
            return view.window.iter().map(|jv| jv.job.id).collect();
        }
        let demands: Vec<&[u64]> = view.window.iter().map(|jv| jv.job.demands.as_slice()).collect();
        let free: Vec<u64> = (0..view.config.num_resources())
            .map(|r| view.pools.free(r))
            .collect();
        let caps = view.config.capacities();

        let mut population: Vec<Vec<usize>> = (0..self.cfg.population)
            .map(|i| {
                let mut perm: Vec<usize> = (0..n).collect();
                if i > 0 {
                    shuffle(&mut perm, &mut self.rng);
                }
                perm
            })
            .collect();

        for _ in 0..self.cfg.generations {
            let scored: Vec<(Vec<usize>, Vec<f64>)> = population
                .iter()
                .map(|p| (p.clone(), evaluate(p, &demands, &free, &caps)))
                .collect();
            let ranked = nsga_rank(&scored);
            let mut next = Vec::with_capacity(self.cfg.population);
            // Elitism: carry the two best forward.
            next.push(ranked[0].0.clone());
            next.push(ranked[1.min(ranked.len() - 1)].0.clone());
            while next.len() < self.cfg.population {
                let a = tournament(&ranked, self.cfg.tournament, &mut self.rng);
                let b = tournament(&ranked, self.cfg.tournament, &mut self.rng);
                let mut child = if self.rng.gen::<f64>() < self.cfg.crossover_rate {
                    order_crossover(&ranked[a].0, &ranked[b].0, &mut self.rng)
                } else {
                    ranked[a].0.clone()
                };
                if self.rng.gen::<f64>() < self.cfg.mutation_rate {
                    swap_mutation(&mut child, &mut self.rng);
                }
                next.push(child);
            }
            population = next;
        }

        // Knee point of the final front: max sum of normalized objectives.
        let scored: Vec<(Vec<usize>, Vec<f64>)> = population
            .iter()
            .map(|p| (p.clone(), evaluate(p, &demands, &free, &caps)))
            .collect();
        let ranked = nsga_rank(&scored);
        let front: Vec<&(Vec<usize>, Vec<f64>)> =
            ranked.iter().take_while(|e| e.2 == 0).map(|e| &scored[e.3]).collect();
        let best = knee_point(&front);
        best.iter().map(|&w| view.window[w].job.id).collect()
    }
}

impl Policy for GaPolicy {
    fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
        if view.window.is_empty() {
            return None;
        }
        if self.plan_instance != Some(view.instance) {
            let order = self.optimize(view);
            self.plan = order.into();
            self.plan_instance = Some(view.instance);
        }
        // Emit the next planned job that is still in the window.
        while let Some(jid) = self.plan.pop_front() {
            if let Some(idx) = view.window.iter().position(|jv| jv.job.id == jid) {
                return Some(idx);
            }
        }
        None
    }

    /// Re-seed the RNG and drop the cached plan: after a reset the next
    /// episode is bit-identical to one run on a freshly built policy
    /// (the GA is stochastic *within* an episode but seeded at birth).
    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.plan.clear();
        self.plan_instance = None;
    }

    fn name(&self) -> &'static str {
        "optimization"
    }
}

/// Greedy decode: walk the permutation, start whatever fits, and return
/// the post-placement utilization per resource.
fn evaluate(perm: &[usize], demands: &[&[u64]], free: &[u64], caps: &[u64]) -> Vec<f64> {
    let mut f = free.to_vec();
    for &w in perm {
        let d = demands[w];
        if d.iter().zip(&f).all(|(x, y)| x <= y) {
            for (fi, di) in f.iter_mut().zip(d) {
                *fi -= di;
            }
        }
    }
    caps.iter()
        .zip(&f)
        .map(|(&c, &fr)| if c == 0 { 0.0 } else { (c - fr) as f64 / c as f64 })
        .collect()
}

/// `a` dominates `b` iff `a >= b` element-wise with at least one strict.
fn dominates(a: &[f64], b: &[f64]) -> bool {
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strict = true;
        }
    }
    strict
}

/// Fast non-dominated sort + crowding distance.
///
/// Returns entries `(perm, objectives, front_rank, original_index)` sorted
/// by `(front_rank asc, crowding desc)`.
type Ranked = Vec<(Vec<usize>, Vec<f64>, usize, usize)>;
fn nsga_rank(scored: &[(Vec<usize>, Vec<f64>)]) -> Ranked {
    let n = scored.len();
    let mut rank = vec![usize::MAX; n];
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut front = 0usize;
    while !remaining.is_empty() {
        let mut this_front = Vec::new();
        'outer: for &i in &remaining {
            for &j in &remaining {
                if i != j && dominates(&scored[j].1, &scored[i].1) {
                    continue 'outer;
                }
            }
            this_front.push(i);
        }
        if this_front.is_empty() {
            // All mutually dominated under fp ties: dump remainder.
            this_front = remaining.clone();
        }
        for &i in &this_front {
            rank[i] = front;
        }
        remaining.retain(|i| !this_front.contains(i));
        front += 1;
    }
    // Crowding distance per front.
    let nobj = scored.first().map(|s| s.1.len()).unwrap_or(0);
    let mut crowding = vec![0.0f64; n];
    for f in 0..front {
        let members: Vec<usize> = (0..n).filter(|&i| rank[i] == f).collect();
        for obj in 0..nobj {
            let mut sorted = members.clone();
            sorted.sort_by(|&a, &b| {
                scored[a].1[obj].partial_cmp(&scored[b].1[obj]).unwrap()
            });
            if let (Some(&first), Some(&last)) = (sorted.first(), sorted.last()) {
                crowding[first] = f64::INFINITY;
                crowding[last] = f64::INFINITY;
                let span = (scored[last].1[obj] - scored[first].1[obj]).max(1e-12);
                for w in sorted.windows(3) {
                    crowding[w[1]] +=
                        (scored[w[2]].1[obj] - scored[w[0]].1[obj]) / span;
                }
            }
        }
    }
    let mut out: Ranked = scored
        .iter()
        .enumerate()
        .map(|(i, (p, o))| (p.clone(), o.clone(), rank[i], i))
        .collect();
    out.sort_by(|a, b| {
        a.2.cmp(&b.2).then(
            crowding[b.3]
                .partial_cmp(&crowding[a.3])
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    });
    out
}

/// Tournament selection over the ranked list (lower index = better).
fn tournament(ranked: &Ranked, k: usize, rng: &mut StdRng) -> usize {
    (0..k.max(1)).map(|_| rng.gen_range(0..ranked.len())).min().unwrap()
}

/// Knee point: member of the front maximizing the sum of min-max
/// normalized objectives.
fn knee_point<'a>(front: &[&'a (Vec<usize>, Vec<f64>)]) -> &'a Vec<usize> {
    assert!(!front.is_empty());
    let nobj = front[0].1.len();
    let mut lo = vec![f64::INFINITY; nobj];
    let mut hi = vec![f64::NEG_INFINITY; nobj];
    for (_, objs) in front {
        for (k, &v) in objs.iter().enumerate() {
            lo[k] = lo[k].min(v);
            hi[k] = hi[k].max(v);
        }
    }
    let score = |objs: &[f64]| -> f64 {
        objs.iter()
            .enumerate()
            .map(|(k, &v)| {
                let span = (hi[k] - lo[k]).max(1e-12);
                (v - lo[k]) / span
            })
            .sum()
    };
    &front
        .iter()
        .max_by(|a, b| score(&a.1).partial_cmp(&score(&b.1)).unwrap())
        .unwrap()
        .0
}

/// Order crossover (OX) for permutations.
fn order_crossover(a: &[usize], b: &[usize], rng: &mut StdRng) -> Vec<usize> {
    let n = a.len();
    if n < 2 {
        return a.to_vec();
    }
    let (mut i, mut j) = (rng.gen_range(0..n), rng.gen_range(0..n));
    if i > j {
        std::mem::swap(&mut i, &mut j);
    }
    let mut child = vec![usize::MAX; n];
    child[i..=j].copy_from_slice(&a[i..=j]);
    let mut pos = (j + 1) % n;
    for &g in b.iter().cycle().skip(j + 1).take(n) {
        if !child[i..=j].contains(&g) {
            child[pos] = g;
            pos = (pos + 1) % n;
            if pos == i {
                break;
            }
        }
    }
    child
}

/// Swap two random positions.
fn swap_mutation(perm: &mut [usize], rng: &mut StdRng) {
    if perm.len() >= 2 {
        let i = rng.gen_range(0..perm.len());
        let j = rng.gen_range(0..perm.len());
        perm.swap(i, j);
    }
}

/// Fisher–Yates shuffle.
fn shuffle(perm: &mut [usize], rng: &mut StdRng) {
    for i in (1..perm.len()).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsim::job::Job;
    use mrsim::resources::SystemConfig;
    use mrsim::simulator::{SimParams, Simulator};

    #[test]
    fn evaluate_decodes_greedy_placement() {
        // Window: A(4n), B(4n), C(2n); 6 nodes free, capacity 8.
        let demands: Vec<&[u64]> = vec![&[4, 0], &[4, 0], &[2, 0]];
        let free = vec![6u64, 4];
        let caps = vec![8u64, 4];
        // Order A,B,C: A fits (2 left), B no, C fits (0 left) -> util 8-0... free 6->2->2->0 ; used 8 of 8.
        let objs = evaluate(&[0, 1, 2], &demands, &free, &caps);
        assert!((objs[0] - 1.0).abs() < 1e-12);
        // Order B,A,C identical by symmetry; order A,B only would differ.
    }

    #[test]
    fn dominates_strictness() {
        assert!(dominates(&[1.0, 1.0], &[1.0, 0.5]));
        assert!(!dominates(&[1.0, 0.4], &[0.9, 0.5]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
    }

    #[test]
    fn nsga_rank_orders_fronts() {
        let scored = vec![
            (vec![0], vec![0.9, 0.9]), // dominates everything
            (vec![1], vec![0.5, 0.2]),
            (vec![2], vec![0.2, 0.5]),
            (vec![3], vec![0.1, 0.1]), // dominated by all
        ];
        let ranked = nsga_rank(&scored);
        assert_eq!(ranked[0].1, vec![0.9, 0.9]);
        assert_eq!(ranked[0].2, 0);
        assert_eq!(ranked.last().unwrap().2, 2, "worst individual in last front");
        // 1 and 2 are mutually non-dominated: same front.
        let mid: Vec<usize> = ranked.iter().filter(|e| e.2 == 1).map(|e| e.3).collect();
        assert_eq!(mid.len(), 2);
    }

    #[test]
    fn order_crossover_produces_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: Vec<usize> = (0..8).collect();
        let b: Vec<usize> = (0..8).rev().collect();
        for _ in 0..50 {
            let mut c = order_crossover(&a, &b, &mut rng);
            c.sort_unstable();
            assert_eq!(c, a, "child must be a permutation");
        }
    }

    #[test]
    fn knee_point_picks_balanced_solution() {
        let front_owned = [
            (vec![0usize], vec![1.0, 0.0]),
            (vec![1], vec![0.8, 0.8]),
            (vec![2], vec![0.0, 1.0]),
        ];
        let front: Vec<&(Vec<usize>, Vec<f64>)> = front_owned.iter().collect();
        assert_eq!(knee_point(&front), &vec![1]);
    }

    #[test]
    fn ga_packs_better_than_fcfs_on_adversarial_case() {
        // The paper's Fig. 1 pattern: FCFS head-of-queue order wastes
        // capacity; reordering within the window packs tighter.
        // System: 10 nodes, 10 BB.
        // J0: 6n/0bb 100s, J1: 6n/0bb 100s, J2: 4n/0bb 100s.
        // FCFS: J0 -> J1 doesn't fit -> reserve, backfill J2 (fits, est
        //       100 > shadow? shadow=100, 0+100<=100 ok -> backfills).
        // Both orders pack here; use BB conflict instead:
        // J0: 5n/8bb, J1: 5n/8bb, J2: 5n/2bb. FCFS starts J0, reserves J1
        // (bb), backfill J2 fits bb(2)<=extra? extra_bb = 10-8=2 OK. Hmm.
        // GA should at least match FCFS makespan on these.
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![5, 8]),
            Job::new(1, 0, 100, 100, vec![5, 8]),
            Job::new(2, 0, 100, 100, vec![5, 2]),
        ];
        let system = SystemConfig::two_resource(10, 10);
        let mut fcfs = crate::fcfs::FcfsPolicy::default();
        let mut ga = GaPolicy::with_seed(1);
        let r_fcfs = Simulator::new(system.clone(), jobs.clone(), SimParams::default())
            .unwrap()
            .run(&mut fcfs);
        let r_ga = Simulator::new(system, jobs, SimParams::default())
            .unwrap()
            .run(&mut ga);
        assert!(r_ga.makespan <= r_fcfs.makespan, "GA must not be worse here");
        assert_eq!(r_ga.jobs_completed, 3);
    }

    #[test]
    fn ga_completes_arbitrary_workload() {
        let jobs: Vec<Job> = (0..25)
            .map(|i| {
                Job::new(
                    i,
                    (i as u64) * 20,
                    60 + (i as u64 % 7) * 30,
                    600,
                    vec![1 + (i as u64 % 5), (i as u64 % 4)],
                )
            })
            .collect();
        let system = SystemConfig::two_resource(8, 6);
        let mut ga = GaPolicy::with_seed(2);
        let report = Simulator::new(system, jobs, SimParams::default())
            .unwrap()
            .run(&mut ga);
        assert_eq!(report.jobs_completed, 25);
        assert_eq!(ga.name(), "optimization");
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let jobs: Vec<Job> = (0..15)
            .map(|i| Job::new(i, (i as u64) * 15, 90, 300, vec![1 + (i as u64 % 4), i as u64 % 3]))
            .collect();
        let system = SystemConfig::two_resource(6, 4);
        let run = |seed| {
            let mut ga = GaPolicy::with_seed(seed);
            Simulator::new(system.clone(), jobs.clone(), SimParams::default())
                .unwrap()
                .run(&mut ga)
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.records, b.records);
    }
}
