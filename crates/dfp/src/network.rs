//! The DFP network: three input modules, a joint representation, and the
//! dueling expectation/action streams (Fig. 2 of the MRSch paper).
//!
//! Layout of the combined prediction for a batch row: actions are blocks
//! of width `M·T` (measurements × offsets), so element `a·MT + τ·M + m` is
//! the predicted change of measurement `m` at offset `τ` under action `a`:
//!
//! ```text
//! p_a = E + (A_a − mean_b A_b)          (dueling combination)
//! ```

use crate::config::{DfpConfig, StateModuleKind};
use mrsch_linalg::Matrix;
use mrsch_nn::layer::Activation;
use mrsch_nn::net::Sequential;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The five-subnet DFP network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DfpNetwork {
    cfg: DfpConfig,
    state_net: Sequential,
    meas_net: Sequential,
    goal_net: Sequential,
    expectation: Sequential,
    action: Sequential,
}

impl DfpNetwork {
    /// Build a freshly initialized network from a validated config.
    pub fn new<R: Rng + ?Sized>(cfg: DfpConfig, rng: &mut R) -> Self {
        cfg.validate().expect("DfpConfig invalid");
        let act = Activation::LeakyRelu(cfg.leaky_slope);

        let state_net = match cfg.state_module {
            StateModuleKind::Mlp => {
                let mut net = Sequential::new();
                let mut width = cfg.state_dim;
                for &h in &cfg.state_hidden {
                    net = net.dense(width, h, rng).activation(act);
                    width = h;
                }
                net.dense(width, cfg.state_embed, rng)
            }
            StateModuleKind::Cnn => {
                // 1-D conv over the state vector (original DFP used a CNN
                // perception module). Kernel/stride chosen so two layers
                // fit any state_dim >= 16.
                let l = cfg.state_dim;
                let c1_out = 4;
                let (k1, s1) = (8.min(l), 4);
                let l1 = (l - k1) / s1 + 1;
                let c2_out = 8;
                let (k2, s2) = (4.min(l1), 2);
                let l2 = (l1 - k2) / s2 + 1;
                Sequential::new()
                    .conv1d(1, c1_out, k1, s1, l, rng)
                    .activation(act)
                    .conv1d(c1_out, c2_out, k2, s2, l1, rng)
                    .activation(act)
                    .dense(c2_out * l2, cfg.state_embed, rng)
            }
        };

        // Three-layer fully-connected measurement and goal modules
        // (paper §IV-C: "a three-layer fully-connected network with 128
        // neurons parses the measurement and goal modules").
        let io_net = |rng: &mut R| {
            Sequential::new()
                .dense(cfg.measurement_dim, cfg.io_hidden, rng)
                .activation(act)
                .dense(cfg.io_hidden, cfg.io_hidden, rng)
                .activation(act)
                .dense(cfg.io_hidden, cfg.io_embed, rng)
        };
        let meas_net = io_net(rng);
        let goal_net = io_net(rng);

        let joint = cfg.state_embed + 2 * cfg.io_embed;
        let mt = cfg.pred_width();
        let expectation = Sequential::new()
            .dense(joint, cfg.stream_hidden, rng)
            .activation(act)
            .dense(cfg.stream_hidden, mt, rng);
        let action = Sequential::new()
            .dense(joint, cfg.stream_hidden, rng)
            .activation(act)
            .dense(cfg.stream_hidden, cfg.num_actions * mt, rng);

        Self { cfg, state_net, meas_net, goal_net, expectation, action }
    }

    /// The configuration this network was built from.
    pub fn config(&self) -> &DfpConfig {
        &self.cfg
    }

    /// Total trainable parameters across all five subnets.
    pub fn param_count(&self) -> usize {
        self.state_net.param_count()
            + self.meas_net.param_count()
            + self.goal_net.param_count()
            + self.expectation.param_count()
            + self.action.param_count()
    }

    /// Forward pass. Inputs are `(batch, dim)` matrices; returns the
    /// combined per-action predictions `(batch, A·M·T)`.
    ///
    /// Caches are retained for a subsequent [`DfpNetwork::backward`].
    pub fn forward(&mut self, state: &Matrix, meas: &Matrix, goal: &Matrix) -> Matrix {
        let se = self.state_net.forward(state);
        let me = self.meas_net.forward(meas);
        let ge = self.goal_net.forward(goal);
        let joint = Matrix::hcat(&[&se, &me, &ge]);
        let e = self.expectation.forward(&joint);
        let a = self.action.forward(&joint);
        combine(&e, &a, self.cfg.num_actions)
    }

    /// Forward pass without caching backward state: bit-identical to
    /// [`DfpNetwork::forward`] but usable through `&self`, so a frozen
    /// network can score actions from many rollout threads at once
    /// (shared behind an `Arc`) without per-thread copies.
    pub fn forward_inference(&self, state: &Matrix, meas: &Matrix, goal: &Matrix) -> Matrix {
        let se = self.state_net.forward_inference(state);
        let me = self.meas_net.forward_inference(meas);
        let ge = self.goal_net.forward_inference(goal);
        let joint = Matrix::hcat(&[&se, &me, &ge]);
        let e = self.expectation.forward_inference(&joint);
        let a = self.action.forward_inference(&joint);
        combine(&e, &a, self.cfg.num_actions)
    }

    /// Backward pass from the gradient w.r.t. the combined predictions.
    /// Accumulates parameter gradients in every subnet.
    pub fn backward(&mut self, grad_combined: &Matrix) {
        let _ = self.backward_with_input_grads(grad_combined);
    }

    /// Backward pass that also returns the gradients w.r.t. the three
    /// *inputs* `(state, measurement, goal)` — the basis of the
    /// input-saliency explanations in `mrsch::explain` (the paper's §VI
    /// future-work direction on interpretability).
    pub fn backward_with_input_grads(
        &mut self,
        grad_combined: &Matrix,
    ) -> (Matrix, Matrix, Matrix) {
        let (grad_e, grad_a) = split_combined_grad(grad_combined, self.cfg.num_actions);
        let je = self.expectation.backward(&grad_e);
        let ja = self.action.backward(&grad_a);
        let joint_grad = je.add(&ja);
        let parts = joint_grad.hsplit(&[
            self.cfg.state_embed,
            self.cfg.io_embed,
            self.cfg.io_embed,
        ]);
        let gs = self.state_net.backward(&parts[0]);
        let gm = self.meas_net.backward(&parts[1]);
        let gg = self.goal_net.backward(&parts[2]);
        (gs, gm, gg)
    }

    /// Per-action predicted measurement changes for one sample, reshaped
    /// as `pred[action][offset][measurement]` — the raw material of a
    /// decision explanation.
    pub fn predicted_changes(
        &mut self,
        state: &[f32],
        meas: &[f32],
        goal: &[f32],
    ) -> Vec<Vec<Vec<f32>>> {
        let s = Matrix::row_vector(state.to_vec());
        let m = Matrix::row_vector(meas.to_vec());
        let g = Matrix::row_vector(goal.to_vec());
        let pred = self.forward(&s, &m, &g);
        let mt = self.cfg.pred_width();
        let mdim = self.cfg.measurement_dim;
        (0..self.cfg.num_actions)
            .map(|a| {
                (0..self.cfg.offsets.len())
                    .map(|oi| {
                        (0..mdim)
                            .map(|mi| pred.get(0, a * mt + oi * mdim + mi))
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    /// Saliency of the chosen action's goal-weighted score w.r.t. each
    /// state feature: `|d(score_a)/d(state_i)|` for one sample.
    ///
    /// Parameter gradients accumulated by this call are an artifact of
    /// the shared backward machinery; callers should `zero_grad`
    /// afterwards if they intend to keep training.
    pub fn state_saliency(
        &mut self,
        state: &[f32],
        meas: &[f32],
        goal: &[f32],
        action: usize,
    ) -> Vec<f32> {
        assert!(action < self.cfg.num_actions, "state_saliency: bad action");
        let s = Matrix::row_vector(state.to_vec());
        let m = Matrix::row_vector(meas.to_vec());
        let g = Matrix::row_vector(goal.to_vec());
        let _ = self.forward(&s, &m, &g);
        // d(score_a)/d(pred) = extended goal on action a's block, 0 elsewhere.
        let mt = self.cfg.pred_width();
        let mut grad = Matrix::zeros(1, self.cfg.num_actions * mt);
        let w = self.extended_goal(goal);
        grad.row_mut(0)[action * mt..(action + 1) * mt].copy_from_slice(&w);
        let (gs, _, _) = self.backward_with_input_grads(&grad);
        gs.row(0).iter().map(|x| x.abs()).collect()
    }

    /// Zero gradients in every subnet.
    pub fn zero_grad(&mut self) {
        self.state_net.zero_grad();
        self.meas_net.zero_grad();
        self.goal_net.zero_grad();
        self.expectation.zero_grad();
        self.action.zero_grad();
    }

    /// Visit `(param, grad)` pairs of every subnet in a stable order.
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut Matrix, &mut Matrix)) {
        self.state_net.visit_params(f);
        self.meas_net.visit_params(f);
        self.goal_net.visit_params(f);
        self.expectation.visit_params(f);
        self.action.visit_params(f);
    }

    /// Global gradient-norm clip across all subnets; returns pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let mut acc = 0.0f32;
        self.visit_params(&mut |_, g| acc += g.norm_sq());
        let norm = acc.sqrt();
        if norm > max_norm && norm > 0.0 {
            let k = max_norm / norm;
            self.visit_params(&mut |_, g| g.scale_assign(k));
        }
        norm
    }

    /// Score every action for a single sample: `score_a = Σ_k w_k p_{a,k}`
    /// where `w` extends the goal over offsets with the configured offset
    /// weights. Returns a vector of `num_actions` scores.
    pub fn action_scores(&mut self, state: &[f32], meas: &[f32], goal: &[f32]) -> Vec<f32> {
        // The cache-free path is numerically identical; routing the
        // cached entry point through it keeps the live agent and shared
        // snapshots on one decision rule.
        self.action_scores_shared(state, meas, goal)
    }

    /// [`DfpNetwork::action_scores`] through a shared reference (no
    /// backward caches touched) — the acting path of frozen snapshots.
    pub fn action_scores_shared(&self, state: &[f32], meas: &[f32], goal: &[f32]) -> Vec<f32> {
        let s = Matrix::row_vector(state.to_vec());
        let m = Matrix::row_vector(meas.to_vec());
        let g = Matrix::row_vector(goal.to_vec());
        let pred = self.forward_inference(&s, &m, &g);
        let w = self.extended_goal(goal);
        let mt = self.cfg.pred_width();
        (0..self.cfg.num_actions)
            .map(|a| {
                let block = &pred.row(0)[a * mt..(a + 1) * mt];
                block.iter().zip(&w).map(|(p, wk)| p * wk).sum()
            })
            .collect()
    }

    /// Batched [`DfpNetwork::action_scores_shared`]: score every action
    /// for `B` independent samples in one packed forward pass.
    ///
    /// Row `r` of the result is **bit-identical** to
    /// `action_scores_shared(states.row(r), meas.row(r), goals.row(r))`:
    /// the GEMM determinism contract makes each output element a
    /// per-(row, column) reduction chain independent of the batch
    /// extent, the dueling combination is per-row, and the goal-weighted
    /// dot below runs in the exact same order. This is the correctness
    /// basis of the serving micro-batcher — coalescing requests cannot
    /// change a decision.
    pub fn action_scores_batched(
        &self,
        states: &Matrix,
        meas: &Matrix,
        goals: &Matrix,
    ) -> Vec<Vec<f32>> {
        let batch = states.rows();
        assert_eq!(meas.rows(), batch, "action_scores_batched: meas rows");
        assert_eq!(goals.rows(), batch, "action_scores_batched: goal rows");
        if batch == 0 {
            return Vec::new();
        }
        let pred = self.forward_inference(states, meas, goals);
        let mt = self.cfg.pred_width();
        (0..batch)
            .map(|r| {
                let w = self.extended_goal(goals.row(r));
                let row = pred.row(r);
                (0..self.cfg.num_actions)
                    .map(|a| {
                        let block = &row[a * mt..(a + 1) * mt];
                        block.iter().zip(&w).map(|(p, wk)| p * wk).sum()
                    })
                    .collect()
            })
            .collect()
    }

    /// Serialize all subnet parameters into a self-describing checkpoint.
    pub fn save_checkpoint(&mut self) -> bytes::Bytes {
        mrsch_nn::checkpoint::save_visitor(|f| self.visit_params(&mut |p, g| f(p, g)))
    }

    /// Load a checkpoint produced by [`DfpNetwork::save_checkpoint`] from
    /// a network with the identical architecture.
    pub fn load_checkpoint(
        &mut self,
        data: &[u8],
    ) -> Result<(), mrsch_nn::checkpoint::CheckpointError> {
        mrsch_nn::checkpoint::load_visitor(|f| self.visit_params(&mut |p, g| f(p, g)), data)
    }

    /// Extend a goal over offsets: element `τ·M + m` = `offset_weights[τ] ·
    /// goal[m]`.
    pub fn extended_goal(&self, goal: &[f32]) -> Vec<f32> {
        assert_eq!(goal.len(), self.cfg.measurement_dim);
        let mut w = Vec::with_capacity(self.cfg.pred_width());
        for &ow in &self.cfg.offset_weights {
            for &gm in goal {
                w.push(ow * gm);
            }
        }
        w
    }
}

/// Dueling combination: `p_{a} = E + A_a − mean_b A_b` per batch row.
fn combine(e: &Matrix, a: &Matrix, num_actions: usize) -> Matrix {
    let batch = e.rows();
    let mt = e.cols();
    debug_assert_eq!(a.cols(), num_actions * mt);
    let mut out = Matrix::zeros(batch, num_actions * mt);
    for b in 0..batch {
        let e_row = e.row(b);
        let a_row = a.row(b);
        let out_row = out.row_mut(b);
        for k in 0..mt {
            let mut mean = 0.0f32;
            for act in 0..num_actions {
                mean += a_row[act * mt + k];
            }
            mean /= num_actions as f32;
            for act in 0..num_actions {
                out_row[act * mt + k] = e_row[k] + a_row[act * mt + k] - mean;
            }
        }
    }
    out
}

/// Gradient of [`combine`]: given dL/dp, produce (dL/dE, dL/dA).
fn split_combined_grad(grad: &Matrix, num_actions: usize) -> (Matrix, Matrix) {
    let batch = grad.rows();
    let mt = grad.cols() / num_actions;
    let mut grad_e = Matrix::zeros(batch, mt);
    let mut grad_a = Matrix::zeros(batch, num_actions * mt);
    for b in 0..batch {
        let g_row = grad.row(b);
        for k in 0..mt {
            let mut sum = 0.0f32;
            for act in 0..num_actions {
                sum += g_row[act * mt + k];
            }
            grad_e.row_mut(b)[k] = sum;
            let mean = sum / num_actions as f32;
            for act in 0..num_actions {
                grad_a.row_mut(b)[act * mt + k] = g_row[act * mt + k] - mean;
            }
        }
    }
    (grad_e, grad_a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cfg() -> DfpConfig {
        let mut c = DfpConfig::scaled(20, 2, 3);
        c.offsets = vec![1, 2];
        c.offset_weights = vec![0.5, 1.0];
        c.state_hidden = vec![16];
        c.state_embed = 8;
        c.io_hidden = 8;
        c.io_embed = 4;
        c.stream_hidden = 16;
        c
    }

    fn rand_input(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
        mrsch_linalg::init::gaussian_matrix(rng, rows, cols, 1.0)
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = tiny_cfg();
        let mut net = DfpNetwork::new(cfg.clone(), &mut rng);
        let s = rand_input(&mut rng, 5, cfg.state_dim);
        let m = rand_input(&mut rng, 5, cfg.measurement_dim);
        let g = rand_input(&mut rng, 5, cfg.measurement_dim);
        let p = net.forward(&s, &m, &g);
        assert_eq!(p.shape(), (5, cfg.num_actions * cfg.pred_width()));
        assert!(p.all_finite());
    }

    #[test]
    fn dueling_normalization_holds() {
        // For every (batch, k), mean over actions of p_{a,k} must equal E_k,
        // i.e. the action stream is zero-mean across actions.
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = tiny_cfg();
        let mut net = DfpNetwork::new(cfg.clone(), &mut rng);
        let s = rand_input(&mut rng, 3, cfg.state_dim);
        let m = rand_input(&mut rng, 3, cfg.measurement_dim);
        let g = rand_input(&mut rng, 3, cfg.measurement_dim);
        let p = net.forward(&s, &m, &g);
        let mt = cfg.pred_width();
        // Recompute E by running the subnets manually is overkill; instead
        // verify the *variance* property: for fixed k, subtracting the
        // action-mean twice is idempotent, i.e. mean_a (p_{a,k}) is the
        // same for any goal-invariant transformation. We settle for
        // checking mean_a p_{a,k} is identical across two different action
        // permutations of the same forward output (structural sanity).
        for b in 0..3 {
            for k in 0..mt {
                let mean: f32 = (0..cfg.num_actions)
                    .map(|a| p.get(b, a * mt + k))
                    .sum::<f32>()
                    / cfg.num_actions as f32;
                assert!(mean.is_finite());
            }
        }
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = tiny_cfg();
        let mut net = DfpNetwork::new(cfg.clone(), &mut rng);
        let s = rand_input(&mut rng, 2, cfg.state_dim);
        let m = rand_input(&mut rng, 2, cfg.measurement_dim);
        let g = rand_input(&mut rng, 2, cfg.measurement_dim);
        // Loss = 0.5 ||p||².
        let p = net.forward(&s, &m, &g);
        net.zero_grad();
        net.backward(&p);
        // Finite-difference the first parameter of the state net.
        let mut analytic = None;
        net.visit_params(&mut |_, gr| {
            if analytic.is_none() {
                analytic = Some(gr.get(0, 0));
            }
        });
        let analytic = analytic.unwrap();
        let eps = 1e-2f32;
        let loss_with = |net: &DfpNetwork, delta: f32| -> f32 {
            let mut n = net.clone();
            let mut first = true;
            n.visit_params(&mut |p, _| {
                if first {
                    p.set(0, 0, p.get(0, 0) + delta);
                    first = false;
                }
            });
            0.5 * n.forward(&s, &m, &g).norm_sq()
        };
        let numeric = (loss_with(&net, eps) - loss_with(&net, -eps)) / (2.0 * eps);
        let scale = analytic.abs().max(numeric.abs()).max(1e-3);
        assert!(
            (analytic - numeric).abs() / scale < 0.08,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn goal_module_gradient_flows() {
        // Perturbing a goal-net parameter must change the output: verify
        // the goal module receives gradient (catches hsplit routing bugs).
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = tiny_cfg();
        let mut net = DfpNetwork::new(cfg.clone(), &mut rng);
        let s = rand_input(&mut rng, 2, cfg.state_dim);
        let m = rand_input(&mut rng, 2, cfg.measurement_dim);
        let g = rand_input(&mut rng, 2, cfg.measurement_dim);
        let p = net.forward(&s, &m, &g);
        net.zero_grad();
        net.backward(&p);
        // Params are visited state→meas→goal→expectation→action; count
        // state+meas params, then assert some goal gradient is nonzero.
        let mut idx = 0usize;
        let state_meas_params = {
            let mut n = 0;
            net.state_net.visit_params(&mut |_, _| n += 1);
            net.meas_net.visit_params(&mut |_, _| n += 1);
            n
        };
        let goal_params = {
            let mut n = 0;
            net.goal_net.visit_params(&mut |_, _| n += 1);
            n
        };
        let mut goal_grad_norm = 0.0f32;
        net.visit_params(&mut |_, gr| {
            if idx >= state_meas_params && idx < state_meas_params + goal_params {
                goal_grad_norm += gr.norm_sq();
            }
            idx += 1;
        });
        assert!(goal_grad_norm > 0.0, "goal module must receive gradient");
    }

    #[test]
    fn action_scores_respect_goal_sign() {
        // With a goal of +1 on measurement 0 vs -1, the argmax should
        // (generically) differ — scores are linear in the extended goal.
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = tiny_cfg();
        let mut net = DfpNetwork::new(cfg.clone(), &mut rng);
        let state = vec![0.3; cfg.state_dim];
        let meas = vec![0.5, 0.5];
        let pos = net.action_scores(&state, &meas, &[1.0, 0.0]);
        let neg = net.action_scores(&state, &meas, &[-1.0, 0.0]);
        assert_eq!(pos.len(), cfg.num_actions);
        // Scores must flip sign relative to E-offset; check they are not
        // identical (linearity makes exact antisymmetry hold only for the
        // goal-scored part).
        assert_ne!(pos, neg);
    }

    #[test]
    fn extended_goal_layout() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = tiny_cfg(); // offsets weights [0.5, 1.0], M=2
        let net = DfpNetwork::new(cfg, &mut rng);
        let w = net.extended_goal(&[0.3, 0.7]);
        assert_eq!(w.len(), 4);
        assert!((w[0] - 0.15).abs() < 1e-6); // offset0, m0
        assert!((w[1] - 0.35).abs() < 1e-6); // offset0, m1
        assert!((w[2] - 0.3).abs() < 1e-6); // offset1, m0
        assert!((w[3] - 0.7).abs() < 1e-6); // offset1, m1
    }

    #[test]
    fn cnn_state_module_builds_and_runs() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut cfg = tiny_cfg();
        cfg.state_dim = 64;
        cfg.state_module = StateModuleKind::Cnn;
        let mut net = DfpNetwork::new(cfg.clone(), &mut rng);
        let s = rand_input(&mut rng, 2, 64);
        let m = rand_input(&mut rng, 2, 2);
        let g = rand_input(&mut rng, 2, 2);
        let p = net.forward(&s, &m, &g);
        assert_eq!(p.shape(), (2, cfg.num_actions * cfg.pred_width()));
        net.zero_grad();
        net.backward(&p);
        let mut norm = 0.0;
        net.visit_params(&mut |_, g| norm += g.norm_sq());
        assert!(norm > 0.0, "CNN path must be trainable");
    }

    #[test]
    fn inference_forward_matches_training_forward() {
        for kind in [StateModuleKind::Mlp, StateModuleKind::Cnn] {
            let mut rng = StdRng::seed_from_u64(12);
            let mut cfg = tiny_cfg();
            cfg.state_dim = 64;
            cfg.state_module = kind;
            let mut net = DfpNetwork::new(cfg.clone(), &mut rng);
            let s = rand_input(&mut rng, 3, cfg.state_dim);
            let m = rand_input(&mut rng, 3, cfg.measurement_dim);
            let g = rand_input(&mut rng, 3, cfg.measurement_dim);
            let cached = net.forward(&s, &m, &g);
            let shared = net.forward_inference(&s, &m, &g);
            assert_eq!(cached, shared, "{kind:?}: shared path must be bit-identical");
        }
    }

    /// Micro-batching contract: one packed B-row scoring pass must be
    /// bit-identical to B independent single-sample calls.
    #[test]
    fn batched_scores_bit_identical_to_shared() {
        let mut rng = StdRng::seed_from_u64(14);
        let cfg = tiny_cfg();
        let net = DfpNetwork::new(cfg.clone(), &mut rng);
        for batch in [1usize, 4, 8] {
            let s = rand_input(&mut rng, batch, cfg.state_dim);
            let m = rand_input(&mut rng, batch, cfg.measurement_dim);
            let g = rand_input(&mut rng, batch, cfg.measurement_dim);
            let batched = net.action_scores_batched(&s, &m, &g);
            assert_eq!(batched.len(), batch);
            for r in 0..batch {
                let single = net.action_scores_shared(s.row(r), m.row(r), g.row(r));
                assert_eq!(batched[r].len(), single.len());
                for (a, b) in batched[r].iter().zip(&single) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "batch={batch} row={r}: batched scores drifted"
                    );
                }
            }
        }
    }

    #[test]
    fn checkpoint_roundtrip_restores_behavior() {
        let mut rng = StdRng::seed_from_u64(10);
        let cfg = tiny_cfg();
        let mut a = DfpNetwork::new(cfg.clone(), &mut rng);
        let mut b = DfpNetwork::new(cfg.clone(), &mut rng);
        let state = vec![0.2; cfg.state_dim];
        let meas = vec![0.5, 0.5];
        let goal = vec![0.6, 0.4];
        assert_ne!(
            a.action_scores(&state, &meas, &goal),
            b.action_scores(&state, &meas, &goal)
        );
        let ckpt = a.save_checkpoint();
        b.load_checkpoint(&ckpt).unwrap();
        assert_eq!(
            a.action_scores(&state, &meas, &goal),
            b.action_scores(&state, &meas, &goal)
        );
    }

    #[test]
    fn checkpoint_rejects_different_architecture() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut a = DfpNetwork::new(tiny_cfg(), &mut rng);
        let mut other_cfg = tiny_cfg();
        other_cfg.stream_hidden = 24;
        let mut b = DfpNetwork::new(other_cfg, &mut rng);
        let ckpt = a.save_checkpoint();
        assert!(b.load_checkpoint(&ckpt).is_err());
    }

    #[test]
    fn param_count_larger_for_theta_arch() {
        let mut rng = StdRng::seed_from_u64(8);
        let small = DfpNetwork::new(DfpConfig::scaled(100, 2, 5), &mut rng);
        let big = DfpNetwork::new(DfpConfig::theta(100, 2, 5), &mut rng);
        assert!(big.param_count() > 10 * small.param_count());
    }

    #[test]
    fn combine_and_split_are_adjoint() {
        // <combine(e,a), g> == <e, grad_e> + <a, grad_a> for the linear map.
        let mut rng = StdRng::seed_from_u64(9);
        let e = rand_input(&mut rng, 2, 4);
        let a = rand_input(&mut rng, 2, 12);
        let g = rand_input(&mut rng, 2, 12);
        let p = combine(&e, &a, 3);
        let (ge, ga) = split_combined_grad(&g, 3);
        let lhs: f32 = p.hadamard(&g).sum();
        let rhs: f32 = e.hadamard(&ge).sum() + a.hadamard(&ga).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
