//! Direct Future Prediction (DFP) — the multi-objective RL algorithm at
//! the heart of MRSch.
//!
//! DFP (Dosovitskiy & Koltun, *Learning to Act by Predicting the Future*,
//! ICLR 2017) replaces the scalar reward of classical RL with a
//! **measurement vector** and trains a network to predict, for every
//! action, the *future changes* of those measurements at several temporal
//! offsets, conditioned on the current state, current measurements, and a
//! **goal vector** expressing the relative importance of each measurement.
//! Acting greedily w.r.t. `goal · predicted-changes` then pursues whatever
//! objective the goal encodes — and because the goal is an *input*, it can
//! change at every decision without retraining. That property is exactly
//! what MRSch's dynamic resource prioritizing (Eq. 1) exploits.
//!
//! This crate implements DFP from scratch on the [`mrsch_nn`] stack:
//!
//! * [`config`] — architecture & training hyper-parameters,
//! * [`network`] — the three input modules (state / measurement / goal),
//!   joint representation, and the dueling expectation + action streams
//!   of the original paper (§II-B of the MRSch paper),
//! * [`replay`] — the experience memory,
//! * [`agent`] — ε-greedy acting, episode bookkeeping, future-target
//!   construction, and minibatch training,
//! * [`rollout`] — frozen [`rollout::PolicySnapshot`]s and the
//!   [`rollout::EpisodeRecorder`], so episodes can be generated on
//!   worker threads and absorbed back into the learner
//!   deterministically.

pub mod agent;
pub mod config;
pub mod network;
pub mod replay;
pub mod rollout;

pub use agent::DfpAgent;
pub use config::{DfpConfig, StateModuleKind};
pub use network::DfpNetwork;
pub use replay::{Experience, ReplayBuffer};
pub use rollout::{greedy_from_scores, EpisodeRecorder, PolicySnapshot};
