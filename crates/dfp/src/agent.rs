//! The DFP agent: ε-greedy acting, episode bookkeeping, future-target
//! construction, and minibatch training.
//!
//! Within an episode the agent records `(state, measurement, goal,
//! action)` at each decision. When the episode ends (or lazily, once
//! enough later measurements exist) each step is converted into an
//! [`Experience`] whose regression targets are the *observed* measurement
//! changes `m_{t+τ} − m_t` at every configured offset τ; offsets that run
//! past the episode end are masked.

use crate::config::DfpConfig;
use crate::network::DfpNetwork;
use crate::replay::{Experience, ReplayBuffer};
use crate::rollout::{EpisodeRecorder, PolicySnapshot};
use mrsch_linalg::Matrix;
use mrsch_nn::loss::masked_mse;
use mrsch_nn::opt::{Adam, ExpDecay, Optimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The DFP agent.
#[derive(Debug)]
pub struct DfpAgent {
    cfg: DfpConfig,
    net: DfpNetwork,
    opt: Adam,
    replay: ReplayBuffer,
    rng: StdRng,
    epsilon: f32,
    episodes: u64,
    train_steps: u64,
    /// Current-episode history (inline training path).
    recorder: EpisodeRecorder,
}

impl DfpAgent {
    /// Build an agent with freshly initialized networks.
    pub fn new(cfg: DfpConfig, seed: u64) -> Self {
        cfg.validate().expect("DfpConfig invalid");
        let mut rng = StdRng::seed_from_u64(seed);
        let net = DfpNetwork::new(cfg.clone(), &mut rng);
        let opt = Adam::new(cfg.learning_rate);
        let replay = ReplayBuffer::new(cfg.replay_capacity);
        let epsilon = cfg.epsilon_start;
        Self {
            cfg,
            net,
            opt,
            replay,
            rng,
            epsilon,
            episodes: 0,
            train_steps: 0,
            recorder: EpisodeRecorder::new(),
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &DfpConfig {
        &self.cfg
    }

    /// Mutable access to the underlying network (checkpointing, tests).
    pub fn network_mut(&mut self) -> &mut DfpNetwork {
        &mut self.net
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Episodes finished so far.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Gradient steps taken so far.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// Experiences currently stored in replay.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Sample stored experiences with an external RNG (diagnostics and
    /// tests; training uses the agent's own RNG).
    pub fn sample_experiences<'a, R: rand::Rng + ?Sized>(
        &'a self,
        rng: &mut R,
        n: usize,
    ) -> Vec<&'a Experience> {
        self.replay.sample(rng, n)
    }

    /// Choose an action for the given inputs.
    ///
    /// `valid` marks selectable window slots (shorter windows leave the
    /// tail invalid). With `explore`, an ε-greedy coin decides between a
    /// uniformly random valid action and the greedy argmax of
    /// `goal · predicted-changes`; without, the choice is always greedy.
    /// Returns `None` when no action is valid.
    pub fn act(
        &mut self,
        state: &[f32],
        meas: &[f32],
        goal: &[f32],
        valid: &[bool],
        explore: bool,
    ) -> Option<usize> {
        crate::rollout::act_epsilon_greedy(
            &self.net,
            self.epsilon,
            state,
            meas,
            goal,
            valid,
            explore,
            &mut self.rng,
        )
    }

    /// Record a decision taken with [`DfpAgent::act`] so it can become a
    /// training experience once its future measurements are observed.
    pub fn record_step(&mut self, state: &[f32], meas: &[f32], goal: &[f32], action: usize) {
        debug_assert_eq!(state.len(), self.cfg.state_dim);
        debug_assert_eq!(meas.len(), self.cfg.measurement_dim);
        self.recorder.record_step(state, meas, goal, action);
    }

    /// Record the post-action measurement (the environment's feedback for
    /// the most recent step).
    pub fn record_outcome(&mut self, meas_after: &[f32]) {
        debug_assert_eq!(meas_after.len(), self.cfg.measurement_dim);
        self.recorder.record_outcome(meas_after);
    }

    /// Close the episode: convert every pending step into an experience
    /// (masking offsets that overrun the episode), decay ε, clear state.
    pub fn finish_episode(&mut self) {
        let exps = self.recorder.finish(&self.cfg.offsets, self.cfg.measurement_dim);
        self.absorb_episode(exps);
    }

    /// Freeze the acting parts of this agent into a [`PolicySnapshot`]
    /// that rollout workers share (one `Arc`, no per-worker clone) and
    /// drive with their own RNGs.
    pub fn snapshot(&self) -> PolicySnapshot {
        PolicySnapshot::new(self.net.clone(), self.epsilon)
    }

    /// Feed one finished episode's experiences into replay — the learner
    /// half of the snapshot/rollout split. Bookkeeping matches an inline
    /// [`DfpAgent::finish_episode`]: the episode counter advances and ε
    /// decays once, so detached and inline episodes are interchangeable.
    pub fn absorb_episode(&mut self, experiences: Vec<Experience>) {
        for e in experiences {
            debug_assert_eq!(e.state.len(), self.cfg.state_dim);
            debug_assert_eq!(e.targets.len(), self.cfg.pred_width());
            self.replay.push(e);
        }
        self.episodes += 1;
        self.epsilon = (self.epsilon * self.cfg.epsilon_decay).max(self.cfg.epsilon_min);
    }

    /// Sample `n` replay indices and fill the five batch matrices
    /// directly from the buffer — no per-experience clones. Returns
    /// `(states, measurements, goals, targets, mask)` with `targets` and
    /// `mask` scattered into each row's action block.
    fn materialize_batch(
        replay: &ReplayBuffer,
        cfg: &DfpConfig,
        rng: &mut StdRng,
        n: usize,
    ) -> (Matrix, Matrix, Matrix, Matrix, Matrix) {
        let mt = cfg.pred_width();
        let a_total = cfg.num_actions * mt;
        let indices = replay.sample_indices(rng, n);
        let n = indices.len();
        let mut s = Matrix::zeros(n, cfg.state_dim);
        let mut me = Matrix::zeros(n, cfg.measurement_dim);
        let mut g = Matrix::zeros(n, cfg.measurement_dim);
        let mut target = Matrix::zeros(n, a_total);
        let mut mask = Matrix::zeros(n, a_total);
        for (i, &idx) in indices.iter().enumerate() {
            let e = replay.get(idx);
            s.row_mut(i).copy_from_slice(&e.state);
            me.row_mut(i).copy_from_slice(&e.meas);
            g.row_mut(i).copy_from_slice(&e.goal);
            let base = e.action * mt;
            target.row_mut(i)[base..base + mt].copy_from_slice(&e.targets);
            mask.row_mut(i)[base..base + mt].copy_from_slice(&e.mask);
        }
        (s, me, g, target, mask)
    }

    /// One minibatch gradient step. Returns the masked-MSE loss, or
    /// `None` when replay holds fewer than one batch.
    pub fn train_batch(&mut self) -> Option<f32> {
        if self.replay.len() < self.cfg.batch_size {
            return None;
        }
        let (s, me, g, target, mask) =
            Self::materialize_batch(&self.replay, &self.cfg, &mut self.rng, self.cfg.batch_size);
        let pred = self.net.forward(&s, &me, &g);
        let (loss, grad) = masked_mse(&pred, &target, &mask);
        self.net.zero_grad();
        self.net.backward(&grad);
        self.net.clip_grad_norm(self.cfg.grad_clip);
        // Per-step exponential learning-rate decay: damps Adam's
        // constant-magnitude tail steps (see DfpConfig::lr_decay).
        let schedule = ExpDecay::new(self.cfg.learning_rate, self.cfg.lr_decay, self.cfg.lr_min);
        self.opt.set_learning_rate(schedule.at(self.train_steps));
        // Adam over all five subnets via a thin adapter.
        step_adam(&mut self.opt, &mut self.net);
        self.train_steps += 1;
        Some(loss)
    }

    /// Evaluate the current masked-MSE loss on a fresh sample without
    /// updating parameters (used for the Fig. 4 convergence curves).
    pub fn eval_loss(&mut self, samples: usize) -> Option<f32> {
        if self.replay.is_empty() {
            return None;
        }
        let (s, me, g, target, mask) =
            Self::materialize_batch(&self.replay, &self.cfg, &mut self.rng, samples);
        let pred = self.net.forward(&s, &me, &g);
        let (loss, _) = masked_mse(&pred, &target, &mask);
        Some(loss)
    }
}

/// Adam step over all five DFP subnets via the shared parameter visitor.
fn step_adam(opt: &mut Adam, net: &mut DfpNetwork) {
    opt.step_visitor(|f| net.visit_params(&mut |p, g| f(p, g)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn tiny_cfg() -> DfpConfig {
        let mut c = DfpConfig::scaled(12, 2, 3);
        c.offsets = vec![1, 2];
        c.offset_weights = vec![0.5, 1.0];
        c.state_hidden = vec![16];
        c.state_embed = 8;
        c.io_hidden = 8;
        c.io_embed = 4;
        c.stream_hidden = 16;
        c.batch_size = 8;
        c.replay_capacity = 512;
        c
    }

    fn record_episode(agent: &mut DfpAgent, steps: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for t in 0..steps {
            let state: Vec<f32> = (0..12).map(|_| rng.gen::<f32>()).collect();
            let meas = vec![t as f32 * 0.01, 0.5];
            let goal = vec![0.6, 0.4];
            let valid = vec![true, true, false];
            let a = agent.act(&state, &meas, &goal, &valid, true).unwrap();
            assert!(a < 2, "invalid action chosen");
            agent.record_step(&state, &meas, &goal, a);
        }
        agent.finish_episode();
    }

    #[test]
    fn act_respects_validity_mask() {
        let mut agent = DfpAgent::new(tiny_cfg(), 1);
        let state = vec![0.0; 12];
        let meas = vec![0.5, 0.5];
        let goal = vec![0.5, 0.5];
        for _ in 0..50 {
            let a = agent.act(&state, &meas, &goal, &[false, true, false], true);
            assert_eq!(a, Some(1));
        }
        assert_eq!(
            agent.act(&state, &meas, &goal, &[false, false, false], true),
            None
        );
    }

    #[test]
    fn greedy_act_is_deterministic() {
        let mut agent = DfpAgent::new(tiny_cfg(), 2);
        let state = vec![0.1; 12];
        let meas = vec![0.4, 0.6];
        let goal = vec![0.7, 0.3];
        let a1 = agent.act(&state, &meas, &goal, &[true, true, true], false);
        let a2 = agent.act(&state, &meas, &goal, &[true, true, true], false);
        assert_eq!(a1, a2);
    }

    #[test]
    fn finish_episode_builds_masked_targets() {
        let mut agent = DfpAgent::new(tiny_cfg(), 3);
        record_episode(&mut agent, 5, 100);
        // 5 steps, offsets {1,2}: step 4 has no valid offsets, step 3 has
        // only offset 1.
        assert_eq!(agent.replay_len(), 5);
        assert_eq!(agent.episodes(), 1);
        // ε decayed once.
        assert!((agent.epsilon() - 0.995).abs() < 1e-6);
    }

    #[test]
    fn targets_are_future_differences() {
        let mut agent = DfpAgent::new(tiny_cfg(), 4);
        // Deterministic measurement ramp: meas[0] = 0.1 * t.
        for t in 0..4 {
            let state = vec![0.0; 12];
            let meas = vec![0.1 * t as f32, 0.0];
            agent.record_step(&state, &meas, &[1.0, 0.0], 0);
        }
        agent.finish_episode();
        // Inspect replay contents through sampling.
        let mut rng = StdRng::seed_from_u64(0);
        for e in agent.replay.sample(&mut rng, 64) {
            let t = (e.meas[0] / 0.1).round() as usize;
            // offset 1 target for measurement 0 = 0.1 when valid.
            if e.mask[0] > 0.0 {
                assert!(
                    (e.targets[0] - 0.1).abs() < 1e-5,
                    "step {t}: offset-1 change {}",
                    e.targets[0]
                );
            }
            // Masked entries are zeroed.
            for (tgt, m) in e.targets.iter().zip(&e.mask) {
                if *m == 0.0 {
                    assert_eq!(*tgt, 0.0);
                }
            }
        }
    }

    #[test]
    fn train_batch_requires_enough_replay() {
        let mut agent = DfpAgent::new(tiny_cfg(), 5);
        assert_eq!(agent.train_batch(), None);
        record_episode(&mut agent, 12, 200);
        let loss = agent.train_batch().expect("enough replay now");
        assert!(loss.is_finite() && loss >= 0.0);
        assert_eq!(agent.train_steps(), 1);
    }

    #[test]
    fn learning_rate_decays_per_train_step() {
        let mut cfg = tiny_cfg();
        cfg.lr_decay = 0.5;
        cfg.lr_min = 1e-5;
        let lr0 = cfg.learning_rate;
        let mut agent = DfpAgent::new(cfg, 5);
        record_episode(&mut agent, 12, 200);
        agent.train_batch().unwrap();
        // Step 0 trained at lr0; the optimizer now holds schedule.at(0).
        assert_eq!(agent.opt.learning_rate(), lr0);
        agent.train_batch().unwrap();
        assert!((agent.opt.learning_rate() - lr0 * 0.5).abs() < 1e-9);
        for _ in 0..30 {
            agent.train_batch().unwrap();
        }
        assert_eq!(agent.opt.learning_rate(), 1e-5, "floor respected");
    }

    #[test]
    fn training_reduces_loss_on_fixed_data() {
        let mut agent = DfpAgent::new(tiny_cfg(), 6);
        for ep in 0..4 {
            record_episode(&mut agent, 20, 300 + ep);
        }
        let initial = agent.eval_loss(256).unwrap();
        for _ in 0..200 {
            agent.train_batch();
        }
        let trained = agent.eval_loss(256).unwrap();
        assert!(
            trained < initial,
            "loss should decrease: {initial} -> {trained}"
        );
    }

    #[test]
    fn epsilon_floor_respected() {
        let mut cfg = tiny_cfg();
        cfg.epsilon_min = 0.5;
        cfg.epsilon_decay = 0.1;
        let mut agent = DfpAgent::new(cfg, 7);
        for ep in 0..10 {
            record_episode(&mut agent, 3, 400 + ep);
        }
        assert_eq!(agent.epsilon(), 0.5);
    }

    #[test]
    fn record_outcome_overwrites_provisional_measurement() {
        let mut agent = DfpAgent::new(tiny_cfg(), 8);
        let state = vec![0.0; 12];
        agent.record_step(&state, &[0.0, 0.0], &[1.0, 0.0], 0);
        agent.record_outcome(&[0.9, 0.9]);
        agent.record_step(&state, &[0.9, 0.9], &[1.0, 0.0], 0);
        agent.finish_episode();
        let mut rng = StdRng::seed_from_u64(0);
        let first = agent
            .replay
            .sample(&mut rng, 32)
            .into_iter()
            .find(|e| e.meas[0] == 0.0)
            .expect("first step present");
        // offset-1 target = meas_log[1] - meas[0] = 0.9 - 0.0.
        assert!((first.targets[0] - 0.9).abs() < 1e-6);
    }
}
