//! DFP hyper-parameters.

use serde::{Deserialize, Serialize};

/// Which architecture the state module uses.
///
/// The original DFP processes images with a CNN; MRSch replaces it with an
/// MLP because scheduler state has no spatial structure (§III-A). Both are
/// implemented so the Fig. 3 ablation can be reproduced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateModuleKind {
    /// Multilayer perceptron (MRSch's choice).
    Mlp,
    /// 1-D convolutional network over the state vector (original DFP's
    /// choice, transplanted to vector input).
    Cnn,
}

/// Full configuration of a DFP agent.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DfpConfig {
    /// Dimension of the state vector.
    pub state_dim: usize,
    /// Number of measurements `M` (one per schedulable resource).
    pub measurement_dim: usize,
    /// Number of actions `A` (the window size `W`).
    pub num_actions: usize,
    /// Temporal offsets (in decisions) at which future measurement
    /// changes are predicted. DFP's canonical set is {1, 2, 4, 8, 16, 32}.
    pub offsets: Vec<usize>,
    /// Per-offset weights used when scoring actions (later offsets matter
    /// most; DFP's canonical choice weights the last three).
    pub offset_weights: Vec<f32>,
    /// State module architecture.
    pub state_module: StateModuleKind,
    /// Hidden widths of the state MLP (the paper's Theta config is
    /// [4000, 1000] with a 512-wide output).
    pub state_hidden: Vec<usize>,
    /// Embedding width of the state module output.
    pub state_embed: usize,
    /// Hidden width of the measurement/goal modules (paper: 128, 3 layers).
    pub io_hidden: usize,
    /// Embedding width of the measurement/goal module outputs.
    pub io_embed: usize,
    /// Hidden width of the expectation/action streams.
    pub stream_hidden: usize,
    /// Leaky-ReLU slope (paper's state module uses leaky rectifiers).
    pub leaky_slope: f32,
    /// Adam learning rate (initial value of the decay schedule).
    pub learning_rate: f32,
    /// Multiplicative learning-rate decay per gradient step
    /// ([`mrsch_nn::opt::ExpDecay`]): shrinks Adam's constant-magnitude
    /// tail steps so late training settles instead of oscillating. 1.0
    /// disables the schedule.
    pub lr_decay: f32,
    /// Learning-rate floor of the decay schedule.
    pub lr_min: f32,
    /// Replay capacity (experiences).
    pub replay_capacity: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Initial exploration rate (paper: ε = 1.0).
    pub epsilon_start: f32,
    /// Multiplicative ε decay per episode (paper: α = 0.995).
    pub epsilon_decay: f32,
    /// Exploration floor.
    pub epsilon_min: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
}

impl DfpConfig {
    /// Laptop-scale defaults for a given state dimension, measurement
    /// count and window size. Mirrors the paper's architecture with
    /// proportionally narrower layers.
    pub fn scaled(state_dim: usize, measurement_dim: usize, num_actions: usize) -> Self {
        Self {
            state_dim,
            measurement_dim,
            num_actions,
            offsets: vec![1, 2, 4, 8, 16, 32],
            offset_weights: vec![0.0, 0.0, 0.0, 0.5, 0.5, 1.0],
            state_module: StateModuleKind::Mlp,
            state_hidden: vec![256, 128],
            state_embed: 64,
            io_hidden: 64,
            io_embed: 32,
            stream_hidden: 128,
            leaky_slope: 0.01,
            learning_rate: 1e-3,
            lr_decay: 0.999,
            lr_min: 1e-4,
            replay_capacity: 20_000,
            batch_size: 32,
            epsilon_start: 1.0,
            epsilon_decay: 0.995,
            epsilon_min: 0.02,
            grad_clip: 5.0,
        }
    }

    /// The paper's full Theta-scale architecture (§IV-C): state module
    /// [4000, 1000] hidden with a 512-wide output, 128-wide three-layer
    /// measurement/goal modules. Expensive — used for parity tests and
    /// the decision-latency benchmark, not for training runs.
    pub fn theta(state_dim: usize, measurement_dim: usize, num_actions: usize) -> Self {
        Self {
            state_hidden: vec![4000, 1000],
            state_embed: 512,
            io_hidden: 128,
            io_embed: 128,
            stream_hidden: 512,
            ..Self::scaled(state_dim, measurement_dim, num_actions)
        }
    }

    /// `M × T`: width of one action's prediction block.
    pub fn pred_width(&self) -> usize {
        self.measurement_dim * self.offsets.len()
    }

    /// The exploration rate in force *during* episode `episode`
    /// (0-based): `max(ε_start · decay^episode, ε_min)`. An agent that
    /// has finished `k` episodes acts at `epsilon_at(k)` — rollout
    /// schedulers use this to precompute per-episode rates for episodes
    /// generated ahead of the learner under a frozen snapshot.
    pub fn epsilon_at(&self, episode: u64) -> f32 {
        let mut eps = self.epsilon_start;
        for _ in 0..episode {
            eps *= self.epsilon_decay;
            if eps <= self.epsilon_min {
                return self.epsilon_min;
            }
        }
        eps.max(self.epsilon_min)
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets must be non-empty".into());
        }
        if self.offsets.len() != self.offset_weights.len() {
            return Err(format!(
                "offsets ({}) and offset_weights ({}) must match",
                self.offsets.len(),
                self.offset_weights.len()
            ));
        }
        if !self.offsets.windows(2).all(|w| w[0] < w[1]) {
            return Err("offsets must be strictly increasing".into());
        }
        if self.num_actions == 0 || self.measurement_dim == 0 || self.state_dim == 0 {
            return Err("dimensions must be positive".into());
        }
        if self.batch_size == 0 || self.replay_capacity < self.batch_size {
            return Err("replay capacity must hold at least one batch".into());
        }
        if !(self.lr_decay > 0.0 && self.lr_decay <= 1.0) {
            return Err("lr_decay must be in (0, 1]".into());
        }
        if !(self.lr_min >= 0.0 && self.lr_min <= self.learning_rate) {
            return Err("lr_min must be in [0, learning_rate]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_config_validates() {
        let c = DfpConfig::scaled(100, 2, 10);
        c.validate().unwrap();
        assert_eq!(c.pred_width(), 12);
        assert_eq!(c.epsilon_decay, 0.995, "paper's α");
        assert_eq!(c.epsilon_start, 1.0, "paper's initial ε");
        assert_eq!(c.lr_decay, 0.999, "per-step lr decay wired by default");
        assert!(c.lr_min > 0.0 && c.lr_min < c.learning_rate);
    }

    #[test]
    fn theta_config_matches_paper_architecture() {
        let c = DfpConfig::theta(11410, 2, 10);
        c.validate().unwrap();
        assert_eq!(c.state_hidden, vec![4000, 1000]);
        assert_eq!(c.state_embed, 512);
        assert_eq!(c.io_hidden, 128);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = DfpConfig::scaled(10, 2, 5);
        c.offsets = vec![];
        assert!(c.validate().is_err());

        let mut c = DfpConfig::scaled(10, 2, 5);
        c.offsets = vec![1, 1];
        c.offset_weights = vec![0.5, 0.5];
        assert!(c.validate().is_err());

        let mut c = DfpConfig::scaled(10, 2, 5);
        c.offset_weights = vec![1.0];
        assert!(c.validate().is_err());

        let mut c = DfpConfig::scaled(10, 2, 5);
        c.replay_capacity = 1;
        assert!(c.validate().is_err());

        let mut c = DfpConfig::scaled(10, 2, 5);
        c.lr_decay = 0.0;
        assert!(c.validate().is_err());

        let mut c = DfpConfig::scaled(10, 2, 5);
        c.lr_min = 1.0;
        assert!(c.validate().is_err(), "floor above the initial rate");
    }
}
