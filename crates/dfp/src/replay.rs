//! Experience replay memory.
//!
//! DFP trains on randomly sampled minibatches of past experiences. Each
//! experience stores the inputs at decision time plus the *observed*
//! future measurement changes (the regression targets) and a validity
//! mask (offsets that ran past the episode end are masked out).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One training sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Experience {
    /// State vector at decision time.
    pub state: Vec<f32>,
    /// Measurement vector at decision time.
    pub meas: Vec<f32>,
    /// Goal vector at decision time.
    pub goal: Vec<f32>,
    /// Action taken (window index).
    pub action: usize,
    /// Observed future measurement changes, layout `offset-major`
    /// (`τ·M + m`), length `M·T`.
    pub targets: Vec<f32>,
    /// 1.0 where the target is valid, 0.0 where the offset exceeded the
    /// episode; same layout/length as `targets`.
    pub mask: Vec<f32>,
}

/// Fixed-capacity ring buffer of experiences with uniform sampling.
#[derive(Clone, Debug)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Experience>,
    next: usize,
    total_pushed: u64,
}

impl ReplayBuffer {
    /// Buffer holding at most `capacity` experiences.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ReplayBuffer: capacity must be positive");
        Self { capacity, items: Vec::new(), next: 0, total_pushed: 0 }
    }

    /// Insert an experience, evicting the oldest once full.
    pub fn push(&mut self, exp: Experience) {
        if self.items.len() < self.capacity {
            self.items.push(exp);
        } else {
            self.items[self.next] = exp;
            self.next = (self.next + 1) % self.capacity;
        }
        self.total_pushed += 1;
    }

    /// Number of stored experiences.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Lifetime number of pushes (≥ `len`).
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Sample `n` experiences uniformly with replacement.
    ///
    /// Returns references; empty buffer yields an empty vector.
    pub fn sample<'a, R: Rng + ?Sized>(&'a self, rng: &mut R, n: usize) -> Vec<&'a Experience> {
        self.sample_indices(rng, n).into_iter().map(|i| &self.items[i]).collect()
    }

    /// Sample `n` slot indices uniformly with replacement (empty buffer
    /// yields an empty vector). Draws the identical RNG stream as
    /// [`ReplayBuffer::sample`], so the two are interchangeable; batch
    /// builders use indices to fill matrices straight from the buffer
    /// without cloning experiences.
    pub fn sample_indices<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<usize> {
        if self.items.is_empty() {
            return Vec::new();
        }
        (0..n).map(|_| rng.gen_range(0..self.items.len())).collect()
    }

    /// The experience stored at slot `index` (from
    /// [`ReplayBuffer::sample_indices`]).
    ///
    /// # Panics
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> &Experience {
        &self.items[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exp(tag: f32) -> Experience {
        Experience {
            state: vec![tag],
            meas: vec![tag],
            goal: vec![tag],
            action: 0,
            targets: vec![tag; 2],
            mask: vec![1.0; 2],
        }
    }

    #[test]
    fn push_grows_until_capacity() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(exp(i as f32));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.total_pushed(), 5);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut buf = ReplayBuffer::new(2);
        buf.push(exp(0.0));
        buf.push(exp(1.0));
        buf.push(exp(2.0)); // evicts 0.0
        let tags: Vec<f32> = buf.items.iter().map(|e| e.state[0]).collect();
        assert!(tags.contains(&1.0) && tags.contains(&2.0) && !tags.contains(&0.0));
    }

    #[test]
    fn sample_returns_requested_count() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..4 {
            buf.push(exp(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(buf.sample(&mut rng, 7).len(), 7);
        assert!(ReplayBuffer::new(5).sample(&mut rng, 3).is_empty());
    }

    #[test]
    fn sample_covers_buffer_eventually() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(exp(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for e in buf.sample(&mut rng, 400) {
            seen.insert(e.state[0] as i64);
        }
        assert_eq!(seen.len(), 8, "uniform sampling should hit every slot");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        ReplayBuffer::new(0);
    }
}
