//! Detached rollout machinery: a frozen policy snapshot and an episode
//! recorder that together let experiences be generated *away* from the
//! live [`crate::DfpAgent`] — on worker threads, with per-episode RNGs —
//! and merged back deterministically afterwards.
//!
//! The split mirrors how distributed RL systems separate *actors* from
//! the *learner*: a [`PolicySnapshot`] is an immutable-weights copy of
//! the agent taken at a synchronization point, an [`EpisodeRecorder`]
//! accumulates the `(state, measurement, goal, action)` stream of one
//! episode and converts it into masked future-difference
//! [`Experience`]s exactly as `DfpAgent::finish_episode` does, and
//! `DfpAgent::absorb_episode` feeds a finished episode back into the
//! learner's replay with the same bookkeeping (episode count, ε decay)
//! as an inline episode. Because every piece is seeded explicitly, a
//! rollout's result depends only on `(snapshot, episode spec, seed, ε)`
//! — never on which thread ran it.

use crate::config::DfpConfig;
use crate::network::DfpNetwork;
use crate::replay::Experience;
use rand::Rng;

/// One in-flight decision awaiting its future measurements.
#[derive(Clone, Debug)]
struct PendingStep {
    state: Vec<f32>,
    meas: Vec<f32>,
    goal: Vec<f32>,
    action: usize,
}

/// Records one episode's decision stream and converts it into training
/// experiences (the future-target construction of DFP).
///
/// The measurement timeline interleaves decision-time and post-action
/// values; DFP's offsets index decisions, so the recorder keeps the
/// *latest observed* measurement per step ([`EpisodeRecorder::record_outcome`]
/// overwrites the provisional decision-time entry) and masks offsets
/// that run past the episode end.
#[derive(Clone, Debug, Default)]
pub struct EpisodeRecorder {
    pending: Vec<PendingStep>,
    meas_log: Vec<Vec<f32>>,
}

impl EpisodeRecorder {
    /// Fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded (still-pending) steps.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Record a decision so it can become a training experience once its
    /// future measurements are observed.
    pub fn record_step(&mut self, state: &[f32], meas: &[f32], goal: &[f32], action: usize) {
        self.pending.push(PendingStep {
            state: state.to_vec(),
            meas: meas.to_vec(),
            goal: goal.to_vec(),
            action,
        });
        self.meas_log.push(meas.to_vec());
    }

    /// Record the post-action measurement (the environment's feedback for
    /// the most recent step), overwriting the provisional decision-time
    /// entry.
    pub fn record_outcome(&mut self, meas_after: &[f32]) {
        if let Some(last) = self.meas_log.last_mut() {
            *last = meas_after.to_vec();
        }
    }

    /// Close the episode: convert every pending step into an experience,
    /// masking offsets that overrun the episode, and reset the recorder.
    ///
    /// `offsets` and `measurement_dim` come from the agent's
    /// [`DfpConfig`]; targets are laid out offset-major (`τ·M + m`).
    pub fn finish(&mut self, offsets: &[usize], measurement_dim: usize) -> Vec<Experience> {
        let m = measurement_dim;
        let t_count = offsets.len();
        let steps = self.pending.len();
        let mut out = Vec::with_capacity(steps);
        for (t, step) in self.pending.drain(..).enumerate() {
            let mut targets = vec![0.0f32; m * t_count];
            let mut mask = vec![0.0f32; m * t_count];
            for (oi, &off) in offsets.iter().enumerate() {
                let future = t + off;
                if future < steps {
                    for mi in 0..m {
                        targets[oi * m + mi] = self.meas_log[future][mi] - step.meas[mi];
                        mask[oi * m + mi] = 1.0;
                    }
                }
            }
            out.push(Experience {
                state: step.state,
                meas: step.meas,
                goal: step.goal,
                action: step.action,
                targets,
                mask,
            });
        }
        self.meas_log.clear();
        out
    }
}

/// A frozen copy of an agent's acting parts: network weights, config,
/// and the exploration rate at snapshot time.
///
/// Acting goes through the cache-free inference forward pass and an
/// *external* RNG, so a **single** snapshot can be shared (`&self` /
/// `Arc`) by every rollout worker of a round — no per-worker network
/// clone, no contention — and an episode's action stream stays a pure
/// function of `(snapshot, inputs, rng seed, ε)`. Per-episode ε
/// schedules pass the rate per call ([`PolicySnapshot::act_with_epsilon`])
/// instead of mutating the shared snapshot.
#[derive(Clone, Debug)]
pub struct PolicySnapshot {
    cfg: DfpConfig,
    net: DfpNetwork,
    epsilon: f32,
}

impl PolicySnapshot {
    /// Build a snapshot from a network copy and the exploration rate to
    /// freeze (use [`crate::DfpAgent::snapshot`] in normal flow).
    pub fn new(net: DfpNetwork, epsilon: f32) -> Self {
        Self { cfg: net.config().clone(), net, epsilon }
    }

    /// The frozen exploration rate.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Override the exploration rate (per-episode ε schedules: episode
    /// `k` of a round rolls out at the rate the agent *will* have after
    /// absorbing the preceding `k` episodes).
    pub fn set_epsilon(&mut self, epsilon: f32) {
        self.epsilon = epsilon;
    }

    /// The snapshot's configuration.
    pub fn config(&self) -> &DfpConfig {
        &self.cfg
    }

    /// The frozen network, for callers that batch their own scoring
    /// (e.g. the serving engine coalesces concurrent requests into one
    /// [`DfpNetwork::action_scores_batched`] pass and then applies the
    /// same greedy rule via [`greedy_from_scores`]).
    pub fn network(&self) -> &DfpNetwork {
        &self.net
    }

    /// Choose an action ε-greedily with an external RNG — the same
    /// decision rule as `DfpAgent::act` (both delegate to
    /// [`act_epsilon_greedy`]). Pass `explore = false` for greedy
    /// evaluation. Returns `None` when no action is valid.
    pub fn act<R: Rng + ?Sized>(
        &self,
        state: &[f32],
        meas: &[f32],
        goal: &[f32],
        valid: &[bool],
        explore: bool,
        rng: &mut R,
    ) -> Option<usize> {
        self.act_with_epsilon(self.epsilon, state, meas, goal, valid, explore, rng)
    }

    /// [`PolicySnapshot::act`] with an explicit exploration rate,
    /// leaving the (possibly shared) snapshot untouched: episode `k` of
    /// a round rolls out at the rate the agent *will* have after
    /// absorbing the preceding `k` episodes, while every worker reads
    /// the same frozen weights.
    #[allow(clippy::too_many_arguments)]
    pub fn act_with_epsilon<R: Rng + ?Sized>(
        &self,
        epsilon: f32,
        state: &[f32],
        meas: &[f32],
        goal: &[f32],
        valid: &[bool],
        explore: bool,
        rng: &mut R,
    ) -> Option<usize> {
        act_epsilon_greedy(&self.net, epsilon, state, meas, goal, valid, explore, rng)
    }
}

/// The DFP decision rule, shared by the live agent and frozen
/// snapshots so the two can never drift: under the ε coin (`explore`
/// only) a uniformly random valid action, otherwise the greedy argmax
/// of `goal · predicted-changes` with a deterministic lowest-index
/// tie-break. Returns `None` when no action is valid. Takes the network
/// by shared reference (cache-free inference forward), so callers can
/// act through an `Arc`-shared frozen network.
#[allow(clippy::too_many_arguments)]
pub fn act_epsilon_greedy<R: Rng + ?Sized>(
    net: &DfpNetwork,
    epsilon: f32,
    state: &[f32],
    meas: &[f32],
    goal: &[f32],
    valid: &[bool],
    explore: bool,
    rng: &mut R,
) -> Option<usize> {
    assert_eq!(valid.len(), net.config().num_actions, "valid mask length");
    let valid_indices: Vec<usize> =
        valid.iter().enumerate().filter(|(_, &v)| v).map(|(i, _)| i).collect();
    if valid_indices.is_empty() {
        return None;
    }
    if explore && rng.gen::<f32>() < epsilon {
        let pick = valid_indices[rng.gen_range(0..valid_indices.len())];
        return Some(pick);
    }
    let scores = net.action_scores_shared(state, meas, goal);
    greedy_from_scores(&scores, valid)
}

/// The pure greedy tail of [`act_epsilon_greedy`]: argmax of the
/// goal-weighted scores over valid actions with the deterministic
/// lowest-index tie-break. Factored out so batched scoring paths (the
/// serving engine scores `B` requests in one packed forward pass) decide
/// *exactly* like the per-sample rule. Returns `None` when no action is
/// valid.
pub fn greedy_from_scores(scores: &[f32], valid: &[bool]) -> Option<usize> {
    valid
        .iter()
        .enumerate()
        .filter(|(_, &v)| v)
        .map(|(i, _)| i)
        .max_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a)) // deterministic tie-break: lowest index
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::DfpAgent;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cfg() -> DfpConfig {
        let mut c = DfpConfig::scaled(12, 2, 3);
        c.offsets = vec![1, 2];
        c.offset_weights = vec![0.5, 1.0];
        c.state_hidden = vec![16];
        c.state_embed = 8;
        c.io_hidden = 8;
        c.io_embed = 4;
        c.stream_hidden = 16;
        c.batch_size = 8;
        c.replay_capacity = 512;
        c
    }

    #[test]
    fn recorder_builds_masked_future_differences() {
        let mut rec = EpisodeRecorder::new();
        // Deterministic ramp: meas[0] = 0.1 * t over 4 steps.
        for t in 0..4 {
            rec.record_step(&[0.0; 12], &[0.1 * t as f32, 0.0], &[1.0, 0.0], 0);
        }
        let exps = rec.finish(&[1, 2], 2);
        assert_eq!(exps.len(), 4);
        assert!(rec.is_empty(), "finish resets the recorder");
        // Step 0: offset-1 target = 0.1, offset-2 target = 0.2.
        assert!((exps[0].targets[0] - 0.1).abs() < 1e-6);
        assert!((exps[0].targets[2] - 0.2).abs() < 1e-6);
        assert_eq!(exps[0].mask, vec![1.0, 1.0, 1.0, 1.0]);
        // Step 3: both offsets overrun -> fully masked, zero targets.
        assert_eq!(exps[3].mask, vec![0.0; 4]);
        assert_eq!(exps[3].targets, vec![0.0; 4]);
        // Step 2: offset 1 valid, offset 2 masked.
        assert_eq!(exps[2].mask, vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn recorder_outcome_overwrites_provisional_measurement() {
        let mut rec = EpisodeRecorder::new();
        rec.record_step(&[0.0; 12], &[0.0, 0.0], &[1.0, 0.0], 0);
        rec.record_outcome(&[0.9, 0.9]);
        rec.record_step(&[0.0; 12], &[0.9, 0.9], &[1.0, 0.0], 0);
        let exps = rec.finish(&[1], 2);
        // offset-1 target of step 0 = outcome(0) - meas(0) = 0.9.
        assert!((exps[0].targets[0] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn snapshot_greedy_matches_agent_greedy() {
        let mut agent = DfpAgent::new(tiny_cfg(), 9);
        let snap = agent.snapshot();
        let mut rng = StdRng::seed_from_u64(1);
        let state = vec![0.3; 12];
        let meas = vec![0.4, 0.6];
        let goal = vec![0.7, 0.3];
        let valid = vec![true, true, true];
        let from_agent = agent.act(&state, &meas, &goal, &valid, false);
        let from_snap = snap.act(&state, &meas, &goal, &valid, false, &mut rng);
        assert_eq!(from_agent, from_snap, "greedy actions agree");
    }

    #[test]
    fn snapshot_act_is_deterministic_per_seed() {
        let agent = DfpAgent::new(tiny_cfg(), 10);
        let mut a = agent.snapshot();
        let mut b = agent.snapshot();
        a.set_epsilon(0.5);
        b.set_epsilon(0.5);
        let mut ra = StdRng::seed_from_u64(42);
        let mut rb = StdRng::seed_from_u64(42);
        for t in 0..50 {
            let state = vec![t as f32 * 0.01; 12];
            let meas = vec![0.5, 0.5];
            let goal = vec![0.5, 0.5];
            let valid = vec![true, true, false];
            assert_eq!(
                a.act(&state, &meas, &goal, &valid, true, &mut ra),
                b.act(&state, &meas, &goal, &valid, true, &mut rb),
            );
        }
    }

    #[test]
    fn snapshot_respects_validity_mask() {
        let agent = DfpAgent::new(tiny_cfg(), 11);
        let mut snap = agent.snapshot();
        snap.set_epsilon(1.0); // always explore: random picks must stay valid
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let a = snap.act(&[0.0; 12], &[0.5; 2], &[0.5; 2], &[false, true, false], true, &mut rng);
            assert_eq!(a, Some(1));
        }
        assert_eq!(
            snap.act(&[0.0; 12], &[0.5; 2], &[0.5; 2], &[false, false, false], true, &mut rng),
            None
        );
    }
}
