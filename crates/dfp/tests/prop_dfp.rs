//! Property-based tests of the DFP agent's episode bookkeeping: for any
//! episode length and measurement trajectory, the generated experiences
//! have correctly masked, correctly differenced targets.

use mrsch_dfp::{DfpAgent, DfpConfig};
use proptest::prelude::*;

fn tiny_cfg() -> DfpConfig {
    let mut c = DfpConfig::scaled(6, 2, 3);
    c.offsets = vec![1, 3];
    c.offset_weights = vec![0.5, 1.0];
    c.state_hidden = vec![8];
    c.state_embed = 4;
    c.io_hidden = 4;
    c.io_embed = 4;
    c.stream_hidden = 8;
    c.batch_size = 4;
    c.replay_capacity = 4096;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn replay_targets_are_exact_future_differences(
        meas_a in prop::collection::vec(0.0f32..1.0, 2..40),
        meas_b in prop::collection::vec(0.0f32..1.0, 2..40),
    ) {
        let len = meas_a.len().min(meas_b.len());
        let cfg = tiny_cfg();
        let mut agent = DfpAgent::new(cfg.clone(), 0);
        // Encode the step index into the state so experiences are
        // attributable afterwards.
        for t in 0..len {
            let mut state = vec![0.0f32; 6];
            state[0] = t as f32;
            let meas = vec![meas_a[t], meas_b[t]];
            agent.record_step(&state, &meas, &[0.5, 0.5], t % 3);
        }
        agent.finish_episode();
        prop_assert_eq!(agent.replay_len(), len);
        // Drain all experiences by sampling many times and indexing by the
        // encoded step. (Uniform sampling with replacement: sample enough.)
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let samples = agent.sample_experiences(&mut rng, len * 30);
        for e in samples {
            let t = e.state[0] as usize;
            for (oi, &off) in cfg.offsets.iter().enumerate() {
                let future = t + off;
                for m in 0..2 {
                    let idx = oi * 2 + m;
                    if future < len {
                        prop_assert_eq!(e.mask[idx], 1.0);
                        let series = if m == 0 { &meas_a } else { &meas_b };
                        let expect = series[future] - series[t];
                        prop_assert!(
                            (e.targets[idx] - expect).abs() < 1e-6,
                            "t={t} off={off} m={m}: {} vs {}",
                            e.targets[idx],
                            expect
                        );
                    } else {
                        prop_assert_eq!(e.mask[idx], 0.0);
                        prop_assert_eq!(e.targets[idx], 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn act_always_returns_valid_action(
        valid_bits in prop::collection::vec(prop::bool::ANY, 3),
        seed in 0u64..500,
    ) {
        let cfg = tiny_cfg();
        let mut agent = DfpAgent::new(cfg, seed);
        let state = vec![0.1; 6];
        let meas = vec![0.5, 0.5];
        let goal = vec![0.5, 0.5];
        for explore in [true, false] {
            match agent.act(&state, &meas, &goal, &valid_bits, explore) {
                Some(a) => prop_assert!(valid_bits[a], "chose invalid action {a}"),
                None => prop_assert!(valid_bits.iter().all(|&v| !v)),
            }
        }
    }

    #[test]
    fn epsilon_decays_monotonically(episodes in 1usize..60) {
        let cfg = tiny_cfg();
        let mut agent = DfpAgent::new(cfg.clone(), 3);
        let mut prev = agent.epsilon();
        for _ in 0..episodes {
            agent.record_step(&[0.0; 6], &[0.1, 0.1], &[0.5, 0.5], 0);
            agent.finish_episode();
            let eps = agent.epsilon();
            prop_assert!(eps <= prev);
            prop_assert!(eps >= cfg.epsilon_min);
            prev = eps;
        }
    }
}
