//! `mrsch-snapshot` — a compact, self-describing little-endian binary
//! codec for checkpoint/restart payloads.
//!
//! The vendored `serde` facade is a no-op (its derives satisfy trait
//! bounds but serialize nothing), which blocked mid-run simulator
//! snapshots since PR 2. This crate is the real serialization layer:
//! a derive-free [`Encode`]/[`Decode`] pair over an explicit [`Writer`]/
//! [`Reader`], plus a *frame* container every persisted artifact shares:
//!
//! ```text
//! +-------+---------+-------------+-----------------+----------+
//! | magic | version |  payload    |    payload      | checksum |
//! | 4 B   | u16 LE  |  len u64 LE |    bytes        | u64 LE   |
//! +-------+---------+-------------+-----------------+----------+
//!                                  <- FNV-1a-64 over everything ->
//!                                     before the checksum field
//! ```
//!
//! Within a payload every field is little-endian and length-framed where
//! variable-sized (`Vec`/`String` carry a `u64` element count; `Option`
//! a one-byte tag), so payloads are self-describing enough to skip and
//! validate without a schema registry. Floating-point values round-trip
//! as exact IEEE-754 bit patterns — a decoded snapshot continues
//! *bit-identically*, which is the acceptance contract of the simulator
//! checkpoint layer built on top (`mrsim::snapshot`).
//!
//! Decoding never panics: every read is bounds-checked first and
//! truncated or corrupted input surfaces as a typed [`CodecError`]
//! (property-tested in `tests/prop_codec.rs`, including bit-flip and
//! truncation attacks).

use std::fmt;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of a byte string — the frame checksum (and the
/// same function `mrsch_nn::checkpoint` fingerprints shapes with).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Typed decode failures. Every malformed input maps to one of these —
/// the decoder never panics, whatever the bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The frame does not start with the expected magic.
    BadMagic {
        /// Magic the caller expected.
        expected: [u8; 4],
        /// Magic actually present (zero-padded if the input was shorter).
        found: [u8; 4],
    },
    /// The frame's format version is newer than this decoder understands.
    UnsupportedVersion {
        /// Version found in the frame header.
        version: u16,
        /// Newest version this decoder supports.
        supported: u16,
    },
    /// The input ended before a fixed-size field could be read.
    Truncated {
        /// Bytes the next read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The trailing FNV-1a checksum does not match the frame contents.
    ChecksumMismatch {
        /// Checksum recorded in the frame.
        expected: u64,
        /// Checksum recomputed over the received bytes.
        actual: u64,
    },
    /// Bytes remain after the frame (or payload) should have ended.
    TrailingBytes {
        /// Number of unexpected trailing bytes.
        remaining: usize,
    },
    /// A field's bytes decoded to an invalid value (bad bool/Option tag,
    /// invalid UTF-8, unknown enum discriminant, out-of-range index).
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            CodecError::UnsupportedVersion { version, supported } => {
                write!(f, "unsupported format version {version} (decoder supports <= {supported})")
            }
            CodecError::Truncated { needed, remaining } => {
                write!(f, "truncated input: needed {needed} bytes, {remaining} remaining")
            }
            CodecError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: frame says {expected:#018x}, got {actual:#018x}")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} unexpected trailing bytes")
            }
            CodecError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian byte sink. Encoding is infallible.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with pre-reserved capacity (snapshotting large state).
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` as its exact IEEE-754 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Bounds-checked little-endian byte source. Every read validates the
/// remaining length first and returns [`CodecError::Truncated`] instead
/// of panicking.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reader over a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the input is fully consumed — the "no trailing
    /// garbage" check run after decoding a complete payload.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes { remaining: self.remaining() })
        }
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { needed: n, remaining: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("take(2)")))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take(4)")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take(8)")))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("take(8)")))
    }

    /// Read an `f32` from its bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }
}

/// Types that serialize themselves onto a [`Writer`]. Infallible.
pub trait Encode {
    /// Append this value's encoding.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encode into a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// Types that parse themselves from a [`Reader`], returning typed errors
/// (never panicking) on malformed input.
pub trait Decode: Sized {
    /// Parse one value, consuming exactly its encoding.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

macro_rules! impl_scalar {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.$put(*self);
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                r.$get()
            }
        }
    };
}

impl_scalar!(u8, put_u8, get_u8);
impl_scalar!(u16, put_u16, get_u16);
impl_scalar!(u32, put_u32, get_u32);
impl_scalar!(u64, put_u64, get_u64);
impl_scalar!(i64, put_i64, get_i64);
impl_scalar!(f32, put_f32, get_f32);
impl_scalar!(f64, put_f64, get_f64);

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("bool tag not 0/1")),
        }
    }
}

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        usize::try_from(r.get_u64()?).map_err(|_| CodecError::Malformed("usize out of range"))
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        w.put_raw(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = decode_len(r)?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Malformed("string not UTF-8"))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(CodecError::Malformed("Option tag not 0/1")),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = decode_len(r)?;
        // Cap the pre-allocation by what could possibly remain: a
        // corrupted length then fails element-by-element with a typed
        // error instead of attempting a giant allocation up front.
        let mut out = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Read a `u64` length prefix and narrow it to `usize`.
fn decode_len(r: &mut Reader<'_>) -> Result<usize, CodecError> {
    usize::try_from(r.get_u64()?).map_err(|_| CodecError::Malformed("length out of range"))
}

/// Size of the frame header (magic + version + payload length).
const HEADER_LEN: usize = 4 + 2 + 8;
/// Size of the trailing checksum.
const CHECKSUM_LEN: usize = 8;

/// Wrap a payload in the standard frame: magic, version, length-framed
/// payload, trailing FNV-1a-64 checksum over everything before it.
pub fn frame(magic: [u8; 4], version: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// First four bytes of a blob, if present — the format-sniffing hook
/// legacy readers use to keep old magics loadable.
pub fn sniff_magic(buf: &[u8]) -> Option<[u8; 4]> {
    buf.get(..4).map(|b| b.try_into().expect("4-byte slice"))
}

/// Validate and open a frame: checks magic, length, and checksum, and
/// returns `(version, payload)`. Rejects trailing bytes after the frame.
pub fn unframe(expected_magic: [u8; 4], buf: &[u8]) -> Result<(u16, &[u8]), CodecError> {
    if buf.len() < 4 {
        let mut found = [0u8; 4];
        found[..buf.len()].copy_from_slice(buf);
        return Err(CodecError::BadMagic { expected: expected_magic, found });
    }
    let found: [u8; 4] = buf[..4].try_into().expect("4-byte slice");
    if found != expected_magic {
        return Err(CodecError::BadMagic { expected: expected_magic, found });
    }
    if buf.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(CodecError::Truncated {
            needed: HEADER_LEN + CHECKSUM_LEN,
            remaining: buf.len(),
        });
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().expect("2-byte slice"));
    let payload_len = u64::from_le_bytes(buf[6..HEADER_LEN].try_into().expect("8-byte slice"));
    let payload_len = usize::try_from(payload_len)
        .map_err(|_| CodecError::Malformed("payload length out of range"))?;
    let total = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(CHECKSUM_LEN))
        .ok_or(CodecError::Malformed("payload length out of range"))?;
    if buf.len() < total {
        return Err(CodecError::Truncated { needed: total, remaining: buf.len() });
    }
    if buf.len() > total {
        return Err(CodecError::TrailingBytes { remaining: buf.len() - total });
    }
    let body = &buf[..HEADER_LEN + payload_len];
    let expected =
        u64::from_le_bytes(buf[total - CHECKSUM_LEN..total].try_into().expect("8-byte slice"));
    let actual = fnv1a64(body);
    if expected != actual {
        return Err(CodecError::ChecksumMismatch { expected, actual });
    }
    Ok((version, &buf[HEADER_LEN..HEADER_LEN + payload_len]))
}

/// Encode a value and wrap it in a frame in one step.
pub fn encode_framed<T: Encode>(magic: [u8; 4], version: u16, value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    frame(magic, version, &w.into_bytes())
}

/// Open a frame and decode one value spanning the whole payload.
/// `max_version` rejects frames newer than the caller understands.
pub fn decode_framed<T: Decode>(
    expected_magic: [u8; 4],
    max_version: u16,
    buf: &[u8],
) -> Result<(u16, T), CodecError> {
    let (version, payload) = unframe(expected_magic, buf)?;
    if version > max_version {
        return Err(CodecError::UnsupportedVersion { version, supported: max_version });
    }
    let mut r = Reader::new(payload);
    let value = T::decode(&mut r)?;
    r.expect_end()?;
    Ok((version, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_exactly() {
        let mut w = Writer::new();
        0xABu8.encode(&mut w);
        0xBEEFu16.encode(&mut w);
        0xDEAD_BEEFu32.encode(&mut w);
        u64::MAX.encode(&mut w);
        (-42i64).encode(&mut w);
        1.5f32.encode(&mut w);
        std::f64::consts::PI.encode(&mut w);
        true.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(u8::decode(&mut r).unwrap(), 0xAB);
        assert_eq!(u16::decode(&mut r).unwrap(), 0xBEEF);
        assert_eq!(u32::decode(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::decode(&mut r).unwrap(), u64::MAX);
        assert_eq!(i64::decode(&mut r).unwrap(), -42);
        assert_eq!(f32::decode(&mut r).unwrap(), 1.5);
        assert_eq!(f64::decode(&mut r).unwrap(), std::f64::consts::PI);
        assert!(bool::decode(&mut r).unwrap());
        r.expect_end().unwrap();
    }

    #[test]
    fn nan_bit_patterns_survive() {
        // Bit-identical continuation needs exact f64 bits, NaNs included.
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        let bytes = weird.encode_to_vec();
        let got = f64::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(got.to_bits(), weird.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<(u64, String)>> =
            vec![None, Some((7, "hello".to_string())), Some((0, String::new()))];
        let bytes = v.encode_to_vec();
        let mut r = Reader::new(&bytes);
        assert_eq!(Vec::<Option<(u64, String)>>::decode(&mut r).unwrap(), v);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let bytes = 0x1234_5678_9abc_def0u64.encode_to_vec();
        for cut in 0..bytes.len() {
            let err = u64::decode(&mut Reader::new(&bytes[..cut])).unwrap_err();
            assert_eq!(err, CodecError::Truncated { needed: 8, remaining: cut });
        }
    }

    #[test]
    fn invalid_tags_are_malformed_not_panics() {
        assert!(matches!(
            bool::decode(&mut Reader::new(&[2])).unwrap_err(),
            CodecError::Malformed(_)
        ));
        assert!(matches!(
            Option::<u8>::decode(&mut Reader::new(&[9, 0])).unwrap_err(),
            CodecError::Malformed(_)
        ));
        // Length prefix claims 4 bytes of string but only 2 follow.
        let mut w = Writer::new();
        w.put_u64(4);
        w.put_raw(b"ab");
        assert!(matches!(
            String::decode(&mut Reader::new(&w.into_bytes())).unwrap_err(),
            CodecError::Truncated { .. }
        ));
        // Non-UTF-8 string bytes.
        let mut w = Writer::new();
        w.put_u64(2);
        w.put_raw(&[0xFF, 0xFE]);
        assert!(matches!(
            String::decode(&mut Reader::new(&w.into_bytes())).unwrap_err(),
            CodecError::Malformed(_)
        ));
    }

    #[test]
    fn huge_length_prefix_does_not_allocate() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let err = Vec::<u64>::decode(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }

    #[test]
    fn frame_round_trips_and_validates() {
        let framed = encode_framed(*b"TEST", 3, &vec![1u64, 2, 3]);
        let (version, payload) = decode_framed::<Vec<u64>>(*b"TEST", 3, &framed).unwrap();
        assert_eq!(version, 3);
        assert_eq!(payload, vec![1, 2, 3]);
    }

    #[test]
    fn frame_rejects_wrong_magic() {
        let framed = frame(*b"AAAA", 1, b"x");
        assert_eq!(
            unframe(*b"BBBB", &framed).unwrap_err(),
            CodecError::BadMagic { expected: *b"BBBB", found: *b"AAAA" }
        );
    }

    #[test]
    fn frame_rejects_newer_version() {
        let framed = frame(*b"TEST", 9, &2u64.encode_to_vec());
        assert_eq!(
            decode_framed::<u64>(*b"TEST", 3, &framed).unwrap_err(),
            CodecError::UnsupportedVersion { version: 9, supported: 3 }
        );
    }

    #[test]
    fn frame_detects_any_single_bit_flip() {
        let framed = frame(*b"TEST", 1, b"payload bytes here");
        for byte in 0..framed.len() {
            for bit in 0..8u8 {
                let mut corrupted = framed.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    unframe(*b"TEST", &corrupted).is_err(),
                    "flip at byte {byte} bit {bit} must not pass validation"
                );
            }
        }
    }

    #[test]
    fn frame_detects_truncation_and_trailing_garbage() {
        let framed = frame(*b"TEST", 1, b"abc");
        for cut in 0..framed.len() {
            assert!(unframe(*b"TEST", &framed[..cut]).is_err(), "cut at {cut}");
        }
        let mut extended = framed.clone();
        extended.push(0);
        assert_eq!(
            unframe(*b"TEST", &extended).unwrap_err(),
            CodecError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn sniffing_identifies_magics() {
        assert_eq!(sniff_magic(b"MRS1rest"), Some(*b"MRS1"));
        assert_eq!(sniff_magic(b"ab"), None);
    }

    #[test]
    fn error_display_is_informative() {
        let err = CodecError::Truncated { needed: 8, remaining: 3 };
        assert!(err.to_string().contains("needed 8"));
        let err = CodecError::BadMagic { expected: *b"AAAA", found: *b"BBBB" };
        assert!(err.to_string().contains("AAAA"));
    }
}
