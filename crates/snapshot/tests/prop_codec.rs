//! Property tests pinning the codec's two core contracts.
//!
//! 1. **Round-trip**: any value written through [`Encode`] decodes back
//!    bit-identically through [`Decode`] — including `f32`/`f64` NaN
//!    payloads (floats travel as raw bits) and multi-byte UTF-8.
//! 2. **Totality on garbage**: decoding never panics, whatever the
//!    bytes. Every prefix of a valid frame is rejected with a typed
//!    [`CodecError`], every single-bit flip anywhere in a frame is
//!    detected (the trailing FNV checksum covers the whole header, so
//!    even version/length corruption cannot slip through), and a length
//!    prefix claiming terabytes fails element-by-element instead of
//!    attempting the allocation.

use mrsch_snapshot::{
    decode_framed, frame, sniff_magic, unframe, CodecError, Decode, Encode, Reader, Writer,
};
use proptest::prelude::*;

const MAGIC: [u8; 4] = *b"PTST";

/// Strategy for arbitrary (possibly multi-byte, possibly empty) strings:
/// random code points, surrogates replaced so every draw is a valid
/// `char`.
fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x11_0000, 0..24)
        .prop_map(|cps| cps.into_iter().map(|c| char::from_u32(c).unwrap_or('\u{FFFD}')).collect())
}

proptest! {
    #[test]
    fn scalars_round_trip(
        a in 0u8..=u8::MAX,
        b in 0u16..=u16::MAX,
        c in 0u32..=u32::MAX,
        d in 0u64..=u64::MAX,
        e in i64::MIN..=i64::MAX,
        f in prop::bool::ANY,
    ) {
        let mut w = Writer::new();
        a.encode(&mut w);
        b.encode(&mut w);
        c.encode(&mut w);
        d.encode(&mut w);
        e.encode(&mut w);
        f.encode(&mut w);
        (d as usize).encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(u8::decode(&mut r).unwrap(), a);
        prop_assert_eq!(u16::decode(&mut r).unwrap(), b);
        prop_assert_eq!(u32::decode(&mut r).unwrap(), c);
        prop_assert_eq!(u64::decode(&mut r).unwrap(), d);
        prop_assert_eq!(i64::decode(&mut r).unwrap(), e);
        prop_assert_eq!(bool::decode(&mut r).unwrap(), f);
        prop_assert_eq!(usize::decode(&mut r).unwrap(), d as usize);
        prop_assert!(r.expect_end().is_ok());
    }

    /// Floats round-trip as raw bits: NaN payloads, signed zeros, and
    /// infinities all survive (the strategies draw *bit patterns*, so
    /// every representable value comes up, not just numeric ones).
    #[test]
    fn floats_round_trip_bit_exactly(
        fbits in 0u32..=u32::MAX,
        dbits in 0u64..=u64::MAX,
    ) {
        let (f, d) = (f32::from_bits(fbits), f64::from_bits(dbits));
        let mut w = Writer::new();
        f.encode(&mut w);
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(f32::decode(&mut r).unwrap().to_bits(), fbits);
        prop_assert_eq!(f64::decode(&mut r).unwrap().to_bits(), dbits);
    }

    #[test]
    fn containers_round_trip(
        xs in prop::collection::vec(0u64..=u64::MAX, 0..32),
        opt_some in prop::bool::ANY,
        opt_val in 0u32..=u32::MAX,
        s in arb_string(),
    ) {
        let opt = opt_some.then_some(opt_val);
        let pair = (xs.clone(), s.clone());
        let mut w = Writer::new();
        xs.encode(&mut w);
        opt.encode(&mut w);
        s.encode(&mut w);
        pair.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(Vec::<u64>::decode(&mut r).unwrap(), xs);
        prop_assert_eq!(Option::<u32>::decode(&mut r).unwrap(), opt);
        prop_assert_eq!(String::decode(&mut r).unwrap(), s);
        prop_assert_eq!(<(Vec<u64>, String)>::decode(&mut r).unwrap(), pair);
        prop_assert!(r.expect_end().is_ok());
    }

    #[test]
    fn frames_round_trip(
        payload in prop::collection::vec(0u8..=u8::MAX, 0..64),
        version in 0u16..=u16::MAX,
    ) {
        let framed = frame(MAGIC, version, &payload);
        prop_assert_eq!(sniff_magic(&framed), Some(MAGIC));
        let (v, p) = unframe(MAGIC, &framed).unwrap();
        prop_assert_eq!(v, version);
        prop_assert_eq!(p, &payload[..]);
        // A different expected magic is rejected up front.
        prop_assert!(matches!(
            unframe(*b"XXXX", &framed),
            Err(CodecError::BadMagic { .. })
        ));
    }

    /// Every strict prefix of a valid frame is rejected with a typed
    /// error — exhaustively, not just at sampled cut points.
    #[test]
    fn every_truncation_is_a_typed_error(
        payload in prop::collection::vec(0u8..=u8::MAX, 0..48),
        version in 0u16..=u16::MAX,
    ) {
        let framed = frame(MAGIC, version, &payload);
        for cut in 0..framed.len() {
            match unframe(MAGIC, &framed[..cut]) {
                Err(CodecError::BadMagic { .. }) | Err(CodecError::Truncated { .. }) => {}
                other => {
                    return Err(TestCaseError::fail(format!(
                        "prefix of {cut}/{} bytes gave {other:?}",
                        framed.len()
                    )))
                }
            }
        }
    }

    /// Every single-bit flip anywhere in a frame is detected: the
    /// checksum covers the entire header and payload, so version and
    /// length corruption cannot slip through either.
    #[test]
    fn every_bit_flip_is_detected(
        payload in prop::collection::vec(0u8..=u8::MAX, 0..40),
        version in 0u16..=u16::MAX,
    ) {
        let framed = frame(MAGIC, version, &payload);
        for byte in 0..framed.len() {
            for bit in 0..8u8 {
                let mut corrupt = framed.clone();
                corrupt[byte] ^= 1 << bit;
                if unframe(MAGIC, &corrupt).is_ok() {
                    return Err(TestCaseError::fail(format!(
                        "flip of bit {bit} in byte {byte} went undetected"
                    )));
                }
            }
        }
    }

    /// Decoding structured types out of arbitrary bytes returns `Ok` or
    /// a typed error — never a panic, never a runaway allocation.
    #[test]
    fn decoding_garbage_never_panics(noise in prop::collection::vec(0u8..=u8::MAX, 0..64)) {
        let _ = decode_framed::<Vec<u64>>(MAGIC, u16::MAX, &noise);
        let _ = unframe(MAGIC, &noise);
        let mut r = Reader::new(&noise);
        let _ = Vec::<String>::decode(&mut r);
        let mut r = Reader::new(&noise);
        let _ = Vec::<(u64, Option<String>)>::decode(&mut r);
        let mut r = Reader::new(&noise);
        let _ = String::decode(&mut r);
    }

    /// A length prefix claiming up to `u64::MAX` elements on a tiny
    /// buffer fails with `Truncated`, proving the pre-allocation cap
    /// (`n.min(remaining)`) turned the lie into a cheap typed error.
    #[test]
    fn huge_length_claims_fail_without_allocating(
        claimed in 1u64..=u64::MAX,
        tail in prop::collection::vec(0u8..=u8::MAX, 0..7),
    ) {
        let mut w = Writer::new();
        w.put_u64(claimed);
        w.put_raw(&tail);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        // Fewer than 8 trailing bytes can't hold even one u64 element,
        // so any claimed length >= 1 must come up short.
        prop_assert!(matches!(
            Vec::<u64>::decode(&mut r),
            Err(CodecError::Truncated { .. })
        ));
    }
}
