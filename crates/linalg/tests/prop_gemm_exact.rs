//! Property test: the packed/tiled GEMM is **bit-identical** to the
//! naive triple-loop reference — not approximately equal — across
//! random shapes (including the `K = 0`, `1 × N`, `M × 1` edges), all
//! three entry points, and every [`ParallelPolicy`] variant.
//!
//! This is the determinism contract of `mrsch_linalg::gemm` stated as
//! an executable spec: each output element is one fused-multiply-add
//! chain in increasing-k order, no matter which kernel path (direct vs
//! packed), tile edge, or thread count computed it.

use mrsch_linalg::{gemm, Matrix, ParallelPolicy};
use proptest::prelude::*;

/// Deterministic matrix fill from a seed, so shapes and content shrink
/// independently (dims and seed halve; the data follows).
fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Roughly uniform in [-8, 8) with exact zeros sprinkled in so
        // the old zero-skip shortcut could never hide behind the data.
        let v = ((state >> 33) as f32 / (1u64 << 28) as f32) - 16.0;
        if (state >> 21) & 0xF == 0 {
            0.0
        } else {
            v
        }
    };
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
}

const POLICIES: [ParallelPolicy; 4] = [
    ParallelPolicy::Serial,
    ParallelPolicy::Threads { max_threads: 2 },
    ParallelPolicy::Threads { max_threads: 5 },
    ParallelPolicy::Auto,
];

/// Assert bitwise equality with a readable failure location.
fn assert_bit_identical(got: &Matrix, want: &Matrix, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.shape(), want.shape(), "{}: shape", what);
    for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{}: element {} differs: {} vs {}",
            what,
            i,
            x,
            y
        );
    }
    Ok(())
}

/// Exercise all three entry points under every policy for one (m, k, n).
fn check_all_ops(m: usize, k: usize, n: usize, seed: u64) -> Result<(), TestCaseError> {
    // C = A · B
    let a = lcg_matrix(m, k, seed);
    let b = lcg_matrix(k, n, seed ^ 0x9E37);
    let want = gemm::reference::matmul(&a, &b);
    for policy in POLICIES {
        let got = gemm::matmul_with(&a, &b, policy);
        assert_bit_identical(&got, &want, &format!("matmul {m}x{k}x{n} {policy:?}"))?;
    }
    // C = A · Bᵀ (B stored (n, k))
    let bt = lcg_matrix(n, k, seed ^ 0x51DE);
    let want = gemm::reference::matmul_a_bt(&a, &bt);
    for policy in POLICIES {
        let got = gemm::matmul_a_bt_with(&a, &bt, policy);
        assert_bit_identical(&got, &want, &format!("matmul_a_bt {m}x{k}x{n} {policy:?}"))?;
    }
    // C = Aᵀ · B (A stored (k, m))
    let at = lcg_matrix(k, m, seed ^ 0xA77A);
    let want = gemm::reference::matmul_at_b(&at, &b);
    for policy in POLICIES {
        let got = gemm::matmul_at_b_with(&at, &b, policy);
        assert_bit_identical(&got, &want, &format!("matmul_at_b {m}x{k}x{n} {policy:?}"))?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes around the dispatch and tile boundaries: `m`
    /// straddles `MR` (direct vs packed), `n` straddles `NR` panels,
    /// and `m·n·k` straddles the direct-path flop threshold.
    #[test]
    fn random_shapes_bit_identical(
        m in 1usize..40,
        k in 0usize..48,
        n in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        check_all_ops(m, k, n, seed)?;
    }

    /// Shapes big enough to guarantee the packed micro-kernel path
    /// (several MR×NR tiles plus edge tiles) under every policy.
    #[test]
    fn packed_path_bit_identical(
        dm in 0usize..13,
        dn in 0usize..17,
        seed in 0u64..1_000_000,
    ) {
        check_all_ops(24 + dm, 33, 32 + dn, seed)?;
    }

    /// Degenerate extents: empty reduction (`K = 0` must yield exact
    /// +0.0 everywhere), single-row, and single-column outputs.
    #[test]
    fn edge_shapes_bit_identical(
        m in 1usize..20,
        k in 0usize..24,
        n in 1usize..20,
        seed in 0u64..1_000_000,
    ) {
        check_all_ops(1, k, n, seed)?;      // 1 × N
        check_all_ops(m, k, 1, seed)?;      // M × 1
        check_all_ops(m, 0, n, seed)?;      // K = 0
        check_all_ops(1, 1, 1, seed)?;      // scalar
    }
}

#[test]
fn k_zero_is_exact_positive_zero() {
    let a = Matrix::zeros(3, 0);
    let b = Matrix::zeros(0, 4);
    for policy in POLICIES {
        let c = gemm::matmul_with(&a, &b, policy);
        assert_eq!(c.shape(), (3, 4));
        for &v in c.as_slice() {
            assert_eq!(v.to_bits(), 0.0f32.to_bits(), "K=0 must give +0.0, got {v}");
        }
    }
}
