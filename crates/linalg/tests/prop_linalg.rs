//! Property-based tests of the linear-algebra substrate.

use mrsch_linalg::{matmul, matmul_a_bt, matmul_at_b, Matrix};
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_matrix(4, 5),
        b in arb_matrix(5, 3),
        c in arb_matrix(5, 3),
    ) {
        // A(B + C) = AB + AC
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        prop_assert!(approx_eq(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn matmul_associates(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 2),
        c in arb_matrix(2, 5),
    ) {
        let lhs = matmul(&matmul(&a, &b), &c);
        let rhs = matmul(&a, &matmul(&b, &c));
        prop_assert!(approx_eq(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn transpose_reverses_product(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 2),
    ) {
        // (AB)ᵀ = Bᵀ Aᵀ
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        prop_assert!(approx_eq(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn fused_transpose_kernels_agree(
        a in arb_matrix(4, 6),
        b in arb_matrix(5, 6),
        c in arb_matrix(4, 5),
    ) {
        prop_assert!(approx_eq(&matmul_a_bt(&a, &b), &matmul(&a, &b.transpose()), 1e-4));
        prop_assert!(approx_eq(&matmul_at_b(&c, &a), &matmul(&c.transpose(), &a), 1e-4));
    }

    #[test]
    fn hcat_hsplit_roundtrip(
        a in arb_matrix(3, 2),
        b in arb_matrix(3, 4),
        c in arb_matrix(3, 1),
    ) {
        let joint = Matrix::hcat(&[&a, &b, &c]);
        let parts = joint.hsplit(&[2, 4, 1]);
        prop_assert_eq!(&parts[0], &a);
        prop_assert_eq!(&parts[1], &b);
        prop_assert_eq!(&parts[2], &c);
    }

    #[test]
    fn sum_rows_matches_transpose_ones(m in arb_matrix(4, 3)) {
        // Σ_rows M == 1ᵀ M
        let ones = Matrix::filled(1, 4, 1.0);
        let via_matmul = matmul(&ones, &m);
        prop_assert!(approx_eq(&m.sum_rows(), &via_matmul, 1e-4));
    }

    #[test]
    fn quantile_bounds_and_monotone(
        mut xs in prop::collection::vec(-1e6f64..1e6, 1..50),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        use mrsch_linalg::stats::quantile;
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let vlo = quantile(&xs, lo);
        let vhi = quantile(&xs, hi);
        prop_assert!(vlo <= vhi, "quantile must be monotone: {vlo} > {vhi}");
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(vlo >= xs[0] && vhi <= *xs.last().unwrap());
    }
}
