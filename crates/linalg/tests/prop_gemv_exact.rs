//! Property test: the fused batch-1 gemv kernels are **bit-identical**
//! to the naive triple-loop reference across random `K`/`N` (including
//! the `K = 0`, `K = 1`, `N = 1` edges), on both ISA instantiations
//! (hardware-dispatched and forced-portable), and with or without the
//! fused bias / bias+ReLU epilogue.
//!
//! This extends the GEMM determinism contract to the serving hot path:
//! routing `matmul` through `gemv` when `m == 1` must never change a
//! single bit, and fusing the dense-layer epilogue must match the
//! unfused `add_row_broadcast` + `max(0.0)` sequence exactly.

use mrsch_linalg::gemv::{
    gemv_at_into, gemv_at_portable_into, gemv_into, gemv_portable_into, Epilogue,
};
use mrsch_linalg::{gemm, Matrix};
use proptest::prelude::*;

/// Deterministic matrix fill from a seed (exact zeros sprinkled in).
fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = ((state >> 33) as f32 / (1u64 << 28) as f32) - 16.0;
        if (state >> 21) & 0xF == 0 {
            0.0
        } else {
            v
        }
    };
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
}

fn assert_bits(got: &[f32], want: &[f32], what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "{}: length", what);
    for (i, (x, y)) in got.iter().zip(want).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{}: element {} differs: {} vs {}",
            what,
            i,
            x,
            y
        );
    }
    Ok(())
}

/// The unfused specification of each epilogue, applied to the reference
/// contraction result.
fn apply_reference_epilogue(y: &mut Matrix, bias: &Matrix, relu: bool) {
    y.add_row_broadcast(bias);
    if relu {
        y.map_inplace(|v| v.max(0.0));
    }
}

/// One (k, n, seed) case: both kernels, both ISA paths, all epilogues,
/// against the naive reference.
fn check_gemv(k: usize, n: usize, seed: u64) -> Result<(), TestCaseError> {
    let x = lcg_matrix(1, k, seed);
    let b = lcg_matrix(k, n, seed ^ 0x9E37);
    let bt = lcg_matrix(n, k, seed ^ 0x51DE);
    let bias = lcg_matrix(1, n, seed ^ 0xB1A5);

    // y = x · B, no epilogue, vs reference; dispatched and portable.
    let want = gemm::reference::matmul(&x, &b);
    let mut got = vec![0.0f32; n];
    gemv_into(&mut got, x.as_slice(), &b, Epilogue::None);
    assert_bits(&got, want.as_slice(), &format!("gemv {k}x{n}"))?;
    gemv_portable_into(&mut got, x.as_slice(), &b, Epilogue::None);
    assert_bits(&got, want.as_slice(), &format!("gemv portable {k}x{n}"))?;

    // y = x · Bᵀ likewise.
    let want_at = gemm::reference::matmul_a_bt(&x, &bt);
    gemv_at_into(&mut got, x.as_slice(), &bt, Epilogue::None);
    assert_bits(&got, want_at.as_slice(), &format!("gemv_at {k}x{n}"))?;
    gemv_at_portable_into(&mut got, x.as_slice(), &bt, Epilogue::None);
    assert_bits(&got, want_at.as_slice(), &format!("gemv_at portable {k}x{n}"))?;

    // Fused epilogues vs the unfused op sequence, both ISA paths.
    for relu in [false, true] {
        let ep = if relu {
            Epilogue::BiasRelu(bias.as_slice())
        } else {
            Epilogue::Bias(bias.as_slice())
        };
        let mut want_ep = want.clone();
        apply_reference_epilogue(&mut want_ep, &bias, relu);
        gemv_into(&mut got, x.as_slice(), &b, ep);
        assert_bits(&got, want_ep.as_slice(), &format!("gemv epilogue relu={relu} {k}x{n}"))?;
        gemv_portable_into(&mut got, x.as_slice(), &b, ep);
        assert_bits(
            &got,
            want_ep.as_slice(),
            &format!("gemv portable epilogue relu={relu} {k}x{n}"),
        )?;

        let mut want_at_ep = want_at.clone();
        apply_reference_epilogue(&mut want_at_ep, &bias, relu);
        gemv_at_into(&mut got, x.as_slice(), &bt, ep);
        assert_bits(&got, want_at_ep.as_slice(), &format!("gemv_at epilogue relu={relu} {k}x{n}"))?;
        gemv_at_portable_into(&mut got, x.as_slice(), &bt, ep);
        assert_bits(
            &got,
            want_at_ep.as_slice(),
            &format!("gemv_at portable epilogue relu={relu} {k}x{n}"),
        )?;
    }

    // The matmul routing itself (m == 1 dispatches into gemv).
    let routed = mrsch_linalg::matmul(&x, &b);
    assert_bits(routed.as_slice(), want.as_slice(), &format!("matmul routing {k}x{n}"))?;
    let routed_at = mrsch_linalg::matmul_a_bt(&x, &bt);
    assert_bits(routed_at.as_slice(), want_at.as_slice(), &format!("a_bt routing {k}x{n}"))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random K/N straddling the NB = 32 column-block edge and the
    /// 4-row chunking of the transposed kernel.
    #[test]
    fn random_kn_bit_identical(
        k in 0usize..96,
        n in 1usize..80,
        seed in 0u64..1_000_000,
    ) {
        check_gemv(k, n, seed)?;
    }

    /// Degenerate extents pinned: empty reduction, single-element
    /// reduction, single output column.
    #[test]
    fn edge_kn_bit_identical(
        k in 0usize..48,
        n in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        check_gemv(0, n, seed)?;  // K = 0
        check_gemv(1, n, seed)?;  // K = 1
        check_gemv(k, 1, seed)?;  // N = 1
        check_gemv(1, 1, seed)?;  // scalar
    }
}

#[test]
fn k_zero_is_exact_positive_zero() {
    let x = Matrix::zeros(1, 0);
    let b = Matrix::zeros(0, 7);
    let mut y = vec![1.0f32; 7];
    gemv_into(&mut y, x.as_slice(), &b, Epilogue::None);
    for &v in &y {
        assert_eq!(v.to_bits(), 0.0f32.to_bits(), "K=0 must give +0.0, got {v}");
    }
    let bt = Matrix::zeros(7, 0);
    let mut y = vec![1.0f32; 7];
    gemv_at_into(&mut y, x.as_slice(), &bt, Epilogue::None);
    for &v in &y {
        assert_eq!(v.to_bits(), 0.0f32.to_bits(), "K=0 must give +0.0, got {v}");
    }
}
