//! Summary statistics over `f64` series.
//!
//! The experiment harness reports means, quantiles and box-plot summaries
//! (Figure 9 of the paper is a box plot of the goal-vector component
//! `rBB`); those reductions live here so every crate computes them the
//! same way.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linearly interpolated quantile (`q` in `[0, 1]`) of an unsorted slice.
///
/// Uses the same convention as NumPy's default (`linear`): the quantile of
/// a sorted n-sample at rank `q (n-1)`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile: q must be in [0,1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The five-number summary drawn by a box plot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxSummary {
    /// Minimum observation.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Maximum observation.
    pub max: f64,
    /// Arithmetic mean (the paper's Fig. 9 discussion references it).
    pub mean: f64,
}

/// Compute the box-plot summary of a series.
///
/// Returns `None` for an empty series.
pub fn box_summary(xs: &[f64]) -> Option<BoxSummary> {
    if xs.is_empty() {
        return None;
    }
    Some(BoxSummary {
        min: quantile(xs, 0.0),
        q1: quantile(xs, 0.25),
        median: quantile(xs, 0.5),
        q3: quantile(xs, 0.75),
        max: quantile(xs, 1.0),
        mean: mean(xs),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert!(box_summary(&[]).is_none());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn box_summary_ordering_invariant() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        let s = box_summary(&xs).unwrap();
        assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn single_element_summary() {
        let s = box_summary(&[42.0]).unwrap();
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.mean, 42.0);
    }
}
