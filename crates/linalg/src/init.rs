//! Weight initializers and the Gaussian sampler they share.
//!
//! `rand` (without `rand_distr`) only provides uniform sampling, so the
//! normal draws used by Xavier/He initialization are produced by the
//! Box–Muller transform implemented here.

use crate::matrix::Matrix;
use rand::Rng;

/// Draw one standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Draw a normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f32, std_dev: f32) -> f32 {
    mean + std_dev * standard_normal(rng)
}

/// Xavier/Glorot-normal initialization: `N(0, sqrt(2 / (fan_in + fan_out)))`.
///
/// Suitable for the tanh/linear layers of the measurement and goal modules.
pub fn xavier_normal<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let std_dev = (2.0 / (rows + cols) as f32).sqrt();
    gaussian_matrix(rng, rows, cols, std_dev)
}

/// He-normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// Suitable for the leaky-ReLU layers of the state module (the paper's
/// state network uses leaky rectifiers).
pub fn he_normal<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let std_dev = (2.0 / rows as f32).sqrt();
    gaussian_matrix(rng, rows, cols, std_dev)
}

/// A matrix of iid `N(0, std_dev²)` entries.
pub fn gaussian_matrix<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    std_dev: f32,
) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| std_dev * standard_normal(rng))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// A matrix of iid uniform entries in `[lo, hi)`.
pub fn uniform_matrix<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    lo: f32,
    hi: f32,
) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn he_std_dev_matches_fan_in() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = he_normal(&mut rng, 512, 256);
        let var = m.norm_sq() / m.len() as f32;
        let expect = 2.0 / 512.0;
        assert!((var - expect).abs() / expect < 0.15, "var {var} expect {expect}");
    }

    #[test]
    fn xavier_std_dev_matches_fans() {
        let mut rng = StdRng::seed_from_u64(12);
        let m = xavier_normal(&mut rng, 300, 200);
        let var = m.norm_sq() / m.len() as f32;
        let expect = 2.0 / 500.0;
        assert!((var - expect).abs() / expect < 0.15, "var {var} expect {expect}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = he_normal(&mut StdRng::seed_from_u64(3), 8, 8);
        let b = he_normal(&mut StdRng::seed_from_u64(3), 8, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = uniform_matrix(&mut rng, 10, 10, -0.5, 0.5);
        assert!(m.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }
}
