//! Row-major dense `f32` matrix with shape-checked element-wise ops.

use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32`.
///
/// Shapes are `rows x cols`; element `(r, c)` lives at `data[r * cols + c]`.
/// All binary operations panic on shape mismatch — in a scheduling agent a
/// silent broadcast is always a bug.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build a `1 x n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self { rows: 1, cols, data }
    }

    /// Build an `n x 1` column vector.
    pub fn col_vector(data: Vec<f32>) -> Self {
        let rows = data.len();
        Self { rows, cols: 1, data }
    }

    /// Identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix, returning the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshape to `rows x cols` in place and zero-fill, reusing the
    /// backing allocation. This is the scratch-arena primitive: once a
    /// buffer has grown to its steady-state size, repeated resets are
    /// allocation-free.
    pub fn reset_to_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Become a copy of `other` (shape and contents), reusing the
    /// backing allocation when it is large enough.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self += other`, element-wise.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.check_same_shape(other, "add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// `self -= other`, element-wise.
    pub fn sub_assign(&mut self, other: &Matrix) {
        self.check_same_shape(other, "sub_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= *b;
        }
    }

    /// `self + other`, element-wise.
    pub fn add(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// `self - other`, element-wise.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.check_same_shape(other, "hadamard");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// `self *= k` for a scalar `k`.
    pub fn scale_assign(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// `self * k` for a scalar `k`.
    pub fn scale(&self, k: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_assign(k);
        out
    }

    /// `self += k * other` (axpy), the hot path of gradient accumulation.
    pub fn axpy(&mut self, k: f32, other: &Matrix) {
        self.check_same_shape(other, "axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * *b;
        }
    }

    /// Add a `1 x cols` row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&mut self, row: &Matrix) {
        assert_eq!(row.rows, 1, "add_row_broadcast: rhs must be a row vector");
        assert_eq!(
            row.cols, self.cols,
            "add_row_broadcast: width mismatch ({} vs {})",
            row.cols, self.cols
        );
        for r in 0..self.rows {
            let start = r * self.cols;
            for c in 0..self.cols {
                self.data[start + c] += row.data[c];
            }
        }
    }

    /// Column-wise sum, producing a `1 x cols` row vector (bias gradient).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            let start = r * self.cols;
            for c in 0..self.cols {
                out.data[c] += self.data[start + c];
            }
        }
        out
    }

    /// Row-wise mean of all entries in each row, as an `rows x 1` column.
    pub fn mean_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        if self.cols == 0 {
            return out;
        }
        let inv = 1.0 / self.cols as f32;
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum::<f32>() * inv;
        }
        out
    }

    /// Apply `f` element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Apply `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Index of the maximum element of a `1 x n` or `n x 1` vector.
    ///
    /// Ties resolve to the lowest index so that argmax is deterministic.
    /// Returns `None` for an empty matrix.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// True when every element is finite (no NaN/inf) — used as a training
    /// invariant check.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Horizontally concatenate matrices with equal row counts.
    ///
    /// This is the "concatenation" step of the DFP joint representation
    /// (state ⊕ measurement ⊕ goal embeddings).
    pub fn hcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hcat: need at least one part");
        let rows = parts[0].rows;
        for p in parts {
            assert_eq!(p.rows, rows, "hcat: row count mismatch");
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0usize;
            for p in parts {
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Split a matrix horizontally at the given column widths.
    ///
    /// Inverse of [`Matrix::hcat`]; used to route the joint-representation
    /// gradient back into each input module.
    pub fn hsplit(&self, widths: &[usize]) -> Vec<Matrix> {
        let total: usize = widths.iter().sum();
        assert_eq!(total, self.cols, "hsplit: widths must sum to cols");
        let mut out = Vec::with_capacity(widths.len());
        let mut offset = 0usize;
        for &w in widths {
            let mut part = Matrix::zeros(self.rows, w);
            for r in 0..self.rows {
                part.row_mut(r).copy_from_slice(&self.row(r)[offset..offset + w]);
            }
            out.push(part);
            offset += w;
        }
        out
    }

    fn check_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(a.add(&b).into_vec(), vec![5., 7., 9.]);
        assert_eq!(b.sub(&a).into_vec(), vec![3., 3., 3.]);
        assert_eq!(a.hadamard(&b).into_vec(), vec![4., 10., 18.]);
        assert_eq!(a.scale(2.0).into_vec(), vec![2., 4., 6.]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::from_vec(1, 2, vec![1., 1.]);
        let g = Matrix::from_vec(1, 2, vec![2., 4.]);
        a.axpy(0.5, &g);
        assert_eq!(a.into_vec(), vec![2., 3.]);
    }

    #[test]
    fn bias_broadcast_and_sum_rows() {
        let mut m = Matrix::zeros(2, 3);
        let bias = Matrix::row_vector(vec![1., 2., 3.]);
        m.add_row_broadcast(&bias);
        assert_eq!(m.row(0), &[1., 2., 3.]);
        assert_eq!(m.row(1), &[1., 2., 3.]);
        assert_eq!(m.sum_rows().into_vec(), vec![2., 4., 6.]);
    }

    #[test]
    fn mean_cols_matches_hand_computation() {
        let m = Matrix::from_vec(2, 2, vec![1., 3., 5., 9.]);
        let mean = m.mean_cols();
        assert_eq!(mean.shape(), (2, 1));
        assert_eq!(mean.as_slice(), &[2.0, 7.0]);
    }

    #[test]
    fn argmax_deterministic_on_ties() {
        let m = Matrix::row_vector(vec![1.0, 3.0, 3.0, 2.0]);
        assert_eq!(m.argmax(), Some(1));
        assert_eq!(Matrix::zeros(0, 0).argmax(), None);
    }

    #[test]
    fn hcat_hsplit_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(2, 1, vec![5., 6.]);
        let joint = Matrix::hcat(&[&a, &b]);
        assert_eq!(joint.shape(), (2, 3));
        assert_eq!(joint.row(0), &[1., 2., 5.]);
        assert_eq!(joint.row(1), &[3., 4., 6.]);
        let parts = joint.hsplit(&[2, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.all_finite());
        m.set(0, 1, f32::NAN);
        assert!(!m.all_finite());
    }

    #[test]
    fn reset_and_copy_reuse_allocation() {
        let mut m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let cap = m.data.capacity();
        m.reset_to_zeros(3, 2);
        assert_eq!(m.shape(), (3, 2));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(m.data.capacity(), cap, "shrinking reset must not reallocate");
        let src = Matrix::from_vec(1, 4, vec![7., 8., 9., 10.]);
        m.copy_from(&src);
        assert_eq!(m, src);
        assert_eq!(m.data.capacity(), cap, "shrinking copy must not reallocate");
    }

    #[test]
    fn identity_matmul_property_small() {
        let m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let i = Matrix::identity(2);
        assert_eq!(crate::matmul(&m, &i), m);
    }
}
