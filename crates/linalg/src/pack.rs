//! Panel packing for the layered GEMM micro-kernel.
//!
//! The packed layouts are the classic BLIS/GotoBLAS ones:
//!
//! * **A panels** — `MR` logical rows at a time, k-major: element
//!   `(i, k)` of panel `p` lives at `p * K * MR + k * MR + i`. The
//!   micro-kernel broadcasts one contiguous `MR`-chunk per `k` step.
//! * **B panels** — `NR` logical columns at a time, k-major: element
//!   `(k, j)` of panel `p` lives at `p * K * NR + k * NR + j`. The
//!   micro-kernel loads one contiguous `NR`-chunk per `k` step.
//!
//! Short edge panels are zero-padded to the full `MR`/`NR` width so the
//! micro-kernel never branches on tile size; the padded lanes compute
//! throwaway zeros that the caller simply does not copy out. Padding
//! lives in the `M`/`N` dimensions only — the `k` extent is always
//! exact — so every *valid* output element sees exactly the operands
//! the unpacked operation would, in the same order, which is what keeps
//! the packed path bit-identical to the naive reference.
//!
//! Both packers take a `trans` flag so the transpose entry points
//! (`C = A · Bᵀ`, `C = Aᵀ · B`) pack their logical operand directly
//! from the untransposed storage — the transpose is absorbed into the
//! (amortized) packing pass instead of being paid as strided access in
//! the O(m·n·k) inner loop.

use crate::matrix::Matrix;

/// One 64-byte cache line of `f32` slots. The field is only ever
/// reached through the pointer cast in [`AlignedBuf::slots`]; it exists
/// for layout, not for access.
#[repr(align(64))]
#[derive(Clone, Copy)]
struct CacheLine(#[allow(dead_code)] [f32; 16]);

/// A reusable, 64-byte-aligned `f32` scratch buffer.
///
/// GEMM keeps one per thread (see the `thread_local!`s in
/// [`crate::gemm`]) so steady-state training packs into warm, already
/// allocated memory instead of touching the allocator every call.
pub struct AlignedBuf {
    lines: Vec<CacheLine>,
}

impl AlignedBuf {
    /// An empty buffer. `const` so it can seed a `thread_local!`.
    pub const fn new() -> Self {
        Self { lines: Vec::new() }
    }

    /// Grow to at least `len` `f32` slots and expose exactly `len` of
    /// them. Contents are unspecified — packing overwrites every slot
    /// it hands to the kernel, padding included.
    pub fn slots(&mut self, len: usize) -> &mut [f32] {
        let lines = len.div_ceil(16);
        if self.lines.len() < lines {
            self.lines.resize(lines, CacheLine([0.0; 16]));
        }
        // SAFETY: `CacheLine` is `repr(align(64))` over `[f32; 16]`,
        // so `lines` owns at least `lines * 16 >= len` contiguous,
        // initialized f32 slots starting at a 64-byte boundary.
        unsafe { std::slice::from_raw_parts_mut(self.lines.as_mut_ptr().cast::<f32>(), len) }
    }
}

impl Default for AlignedBuf {
    fn default() -> Self {
        Self::new()
    }
}

/// Packed length of `rows` logical A rows over reduction depth `k`.
pub fn a_len<const MR: usize>(k: usize, rows: usize) -> usize {
    rows.div_ceil(MR) * k * MR
}

/// Packed length of `cols` logical B columns over reduction depth `k`.
pub fn b_len<const NR: usize>(k: usize, cols: usize) -> usize {
    cols.div_ceil(NR) * k * NR
}

/// Pack `rows` logical rows of the A operand (rows `row0..row0 + rows`
/// of `a`, or of `aᵀ` when `trans`) into k-major `MR` panels.
///
/// `dst` must hold exactly [`a_len`] slots.
pub fn pack_a<const MR: usize>(
    dst: &mut [f32],
    a: &Matrix,
    trans: bool,
    row0: usize,
    rows: usize,
    k: usize,
) {
    debug_assert_eq!(dst.len(), a_len::<MR>(k, rows));
    for (p, panel) in dst.chunks_exact_mut(k * MR).enumerate() {
        let base = row0 + p * MR;
        let valid = MR.min(rows - p * MR);
        if trans {
            // Logical row i is column `base + i` of `a`: each k step
            // reads a contiguous `valid`-chunk of a's row k.
            for (kk, chunk) in panel.chunks_exact_mut(MR).enumerate() {
                let src = &a.row(kk)[base..base + valid];
                chunk[..valid].copy_from_slice(src);
                chunk[valid..].fill(0.0);
            }
        } else {
            // Logical row i is row `base + i` of `a`: read each source
            // row once, scattering with stride MR into the panel.
            for i in 0..valid {
                for (kk, &v) in a.row(base + i).iter().enumerate() {
                    panel[kk * MR + i] = v;
                }
            }
            for i in valid..MR {
                for kk in 0..k {
                    panel[kk * MR + i] = 0.0;
                }
            }
        }
    }
}

/// Pack `cols` logical columns of the B operand (columns
/// `col0..col0 + cols` of `b`, or of `bᵀ` when `trans`) into k-major
/// `NR` panels.
///
/// `dst` must hold exactly [`b_len`] slots.
pub fn pack_b<const NR: usize>(
    dst: &mut [f32],
    b: &Matrix,
    trans: bool,
    col0: usize,
    cols: usize,
    k: usize,
) {
    debug_assert_eq!(dst.len(), b_len::<NR>(k, cols));
    for (p, panel) in dst.chunks_exact_mut(k * NR).enumerate() {
        let base = col0 + p * NR;
        let valid = NR.min(cols - p * NR);
        if trans {
            // Logical column j is row `base + j` of `b`: read each
            // source row once (contiguous over k), scatter with stride
            // NR into the panel.
            for j in 0..valid {
                for (kk, &v) in b.row(base + j).iter().enumerate() {
                    panel[kk * NR + j] = v;
                }
            }
            for j in valid..NR {
                for kk in 0..k {
                    panel[kk * NR + j] = 0.0;
                }
            }
        } else {
            // Logical column j is column `base + j` of `b`: each k
            // step reads a contiguous `valid`-chunk of b's row k.
            for (kk, chunk) in panel.chunks_exact_mut(NR).enumerate() {
                let src = &b.row(kk)[base..base + valid];
                chunk[..valid].copy_from_slice(src);
                chunk[valid..].fill(0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_matrix(rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|i| i as f32).collect())
    }

    #[test]
    fn aligned_buf_is_cache_aligned_and_reuses() {
        let mut buf = AlignedBuf::new();
        let ptr = buf.slots(100).as_ptr() as usize;
        assert_eq!(ptr % 64, 0, "buffer must start on a cache line");
        buf.slots(100)[99] = 7.0;
        // Growing keeps alignment; shrinking hands back a prefix.
        assert_eq!(buf.slots(200).as_ptr() as usize % 64, 0);
        assert_eq!(buf.slots(10).len(), 10);
    }

    #[test]
    fn pack_a_layout_and_padding() {
        // 5 rows packed with MR = 4: one full panel + one padded.
        let a = count_matrix(5, 3);
        let mut dst = vec![f32::NAN; a_len::<4>(3, 5)];
        pack_a::<4>(&mut dst, &a, false, 0, 5, 3);
        // Panel 0, k = 1 holds column 1 of rows 0..4.
        assert_eq!(&dst[4..8], &[1.0, 4.0, 7.0, 10.0]);
        // Panel 1 holds row 4 then three zero-padded lanes.
        assert_eq!(&dst[12..16], &[12.0, 0.0, 0.0, 0.0]);
        assert_eq!(&dst[16..20], &[13.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_a_trans_matches_explicit_transpose() {
        let a = count_matrix(3, 5);
        let at = a.transpose();
        let (mut packed_t, mut packed) = (
            vec![0.0; a_len::<4>(3, 5)],
            vec![0.0; a_len::<4>(3, 5)],
        );
        pack_a::<4>(&mut packed_t, &a, true, 0, 5, 3);
        pack_a::<4>(&mut packed, &at, false, 0, 5, 3);
        assert_eq!(packed_t, packed, "trans packing must equal packing the transpose");
    }

    #[test]
    fn pack_b_layout_and_padding() {
        // 2x5 packed with NR = 4: panel 0 = cols 0..4, panel 1 = col 4 padded.
        let b = count_matrix(2, 5);
        let mut dst = vec![f32::NAN; b_len::<4>(2, 5)];
        pack_b::<4>(&mut dst, &b, false, 0, 5, 2);
        assert_eq!(&dst[0..4], &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(&dst[4..8], &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(&dst[8..12], &[4.0, 0.0, 0.0, 0.0]);
        assert_eq!(&dst[12..16], &[9.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_b_trans_matches_explicit_transpose() {
        let b = count_matrix(6, 3);
        let bt = b.transpose();
        let (mut packed_t, mut packed) = (
            vec![0.0; b_len::<4>(3, 6)],
            vec![0.0; b_len::<4>(3, 6)],
        );
        pack_b::<4>(&mut packed_t, &b, true, 0, 6, 3);
        pack_b::<4>(&mut packed, &bt, false, 0, 6, 3);
        assert_eq!(packed_t, packed, "trans packing must equal packing the transpose");
    }

    #[test]
    fn pack_offsets_select_subblocks() {
        let a = count_matrix(8, 2);
        let mut dst = vec![0.0; a_len::<4>(2, 3)];
        pack_a::<4>(&mut dst, &a, false, 5, 3, 2);
        // Rows 5..8, k = 0 lane, one zero-padded slot.
        assert_eq!(&dst[0..4], &[10.0, 12.0, 14.0, 0.0]);
    }
}
