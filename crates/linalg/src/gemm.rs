//! Cache-blocked general matrix multiplication with optional thread-level
//! parallelism.
//!
//! Three entry points cover every contraction the network stack needs:
//!
//! * [`matmul`]        — `C = A · B`          (forward pass)
//! * [`matmul_a_bt`]   — `C = A · Bᵀ`         (input gradient: `dX = dY · Wᵀ`)
//! * [`matmul_at_b`]   — `C = Aᵀ · B`         (weight gradient: `dW = Xᵀ · dY`)
//!
//! Parallelism splits *output rows* across std scoped threads, so the
//! reduction order inside each output element is identical regardless of
//! thread count — results are bit-identical between serial and parallel
//! runs, which keeps every experiment reproducible.

use crate::matrix::Matrix;

/// How a GEMM call may use threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParallelPolicy {
    /// Always single-threaded.
    Serial,
    /// Split output rows across up to `max_threads` threads when the
    /// problem is large enough to amortize spawn overhead.
    Threads {
        /// Upper bound on worker threads (>= 1).
        max_threads: usize,
    },
    /// Use `std::thread::available_parallelism()` when profitable.
    #[default]
    Auto,
}

/// Minimum number of multiply-adds before threading is considered.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 18;

/// Process-wide default policy used by [`matmul`]: 0 = Auto, 1 = Serial,
/// n >= 2 = `Threads { max_threads: n }`. Results are bit-identical
/// under every policy (row-band splitting preserves reduction order), so
/// this only trades wall time — and lets determinism tests drive the
/// whole pipeline serial vs parallel to prove it.
static DEFAULT_POLICY: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Replace the process-wide default [`ParallelPolicy`] used by [`matmul`]
/// and friends when no explicit policy is given. `Threads` with
/// `max_threads <= 1` means "one thread" and is stored as `Serial` —
/// the execution they describe is identical.
pub fn set_default_policy(policy: ParallelPolicy) {
    let enc = match policy {
        ParallelPolicy::Auto => 0,
        ParallelPolicy::Serial | ParallelPolicy::Threads { max_threads: 0 | 1 } => 1,
        ParallelPolicy::Threads { max_threads } => max_threads,
    };
    DEFAULT_POLICY.store(enc, std::sync::atomic::Ordering::Relaxed);
}

/// The current process-wide default [`ParallelPolicy`].
pub fn default_policy() -> ParallelPolicy {
    match DEFAULT_POLICY.load(std::sync::atomic::Ordering::Relaxed) {
        0 => ParallelPolicy::Auto,
        1 => ParallelPolicy::Serial,
        n => ParallelPolicy::Threads { max_threads: n },
    }
}

fn thread_count(policy: ParallelPolicy, rows: usize, flops: usize) -> usize {
    let hw = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let n = match policy {
        ParallelPolicy::Serial => 1,
        ParallelPolicy::Threads { max_threads } => max_threads.max(1),
        ParallelPolicy::Auto => hw(),
    };
    if flops < PARALLEL_FLOP_THRESHOLD {
        return 1;
    }
    n.min(rows).max(1)
}

/// `C = A · B` with the process-wide default parallel policy
/// ([`default_policy`]; `Auto` unless overridden).
///
/// # Panics
/// Panics when `A.cols() != B.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    matmul_with(a, b, default_policy())
}

/// `C = A · B` under an explicit parallel policy.
pub fn matmul_with(a: &Matrix, b: &Matrix, policy: ParallelPolicy) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dims mismatch {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    let threads = thread_count(policy, m, m * n * k);
    if threads <= 1 {
        gemm_rows(a, b, c.as_mut_slice(), 0, m);
        return c;
    }
    let chunk = m.div_ceil(threads);
    let b_ref = b;
    let a_ref = a;
    std::thread::scope(|scope| {
        // Borrow disjoint row bands of C mutably across threads.
        let mut rest = c.as_mut_slice();
        let mut row0 = 0usize;
        let mut handles = Vec::new();
        while row0 < m {
            let rows_here = chunk.min(m - row0);
            let (band, tail) = rest.split_at_mut(rows_here * n);
            rest = tail;
            let start = row0;
            handles.push(scope.spawn(move || {
                gemm_rows_into(a_ref, b_ref, band, start, start + rows_here);
            }));
            row0 += rows_here;
        }
        for h in handles {
            h.join().expect("gemm worker panicked");
        }
    });
    c
}

/// Compute rows `[r0, r1)` of `C = A · B` into the full C buffer.
fn gemm_rows(a: &Matrix, b: &Matrix, c: &mut [f32], r0: usize, r1: usize) {
    let n = b.cols();
    gemm_rows_into(a, b, &mut c[r0 * n..r1 * n], r0, r1);
}

/// Compute rows `[r0, r1)` of `C = A · B` into a band buffer whose first
/// element corresponds to `C[r0][0]`.
///
/// Uses the ikj loop order: each scalar `A[i][k]` is broadcast against row
/// `k` of B, giving unit-stride access on both B and C.
fn gemm_rows_into(a: &Matrix, b: &Matrix, band: &mut [f32], r0: usize, r1: usize) {
    let k_dim = a.cols();
    let n = b.cols();
    for i in r0..r1 {
        let out = &mut band[(i - r0) * n..(i - r0 + 1) * n];
        let a_row = a.row(i);
        for (k, &aik) in a_row.iter().enumerate().take(k_dim) {
            if aik == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            for (o, &bv) in out.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
}

/// `C = A · Bᵀ` (shapes: `(m,k) x (n,k) -> (m,n)`).
///
/// This is the backward-pass input gradient `dX = dY · Wᵀ` without
/// materializing the transpose.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_a_bt: inner dims mismatch {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let m = a.rows();
    let n = b.rows();
    let k = a.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out = c.row_mut(i);
        for (j, o) in out.iter_mut().enumerate().take(n) {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a_row[kk] * b_row[kk];
            }
            *o = acc;
        }
    }
    c
}

/// `C = Aᵀ · B` (shapes: `(k,m) x (k,n) -> (m,n)`).
///
/// This is the backward-pass weight gradient `dW = Xᵀ · dY` without
/// materializing the transpose.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at_b: inner dims mismatch {:?}ᵀ x {:?}",
        a.shape(),
        b.shape()
    );
    let k = a.rows();
    let m = a.cols();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for kk in 0..k {
        let a_row = a.row(kk);
        let b_row = b.row(kk);
        for (i, &av) in a_row.iter().enumerate().take(m) {
            if av == 0.0 {
                continue;
            }
            let out = &mut c.as_mut_slice()[i * n..(i + 1) * n];
            for (o, &bv) in out.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Tiny deterministic LCG so this test has no RNG dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let data = (0..rows * cols).map(|_| next()).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn matmul_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (5, 7, 3), (16, 16, 16)] {
            let a = rand_matrix(m, k, 42 + m as u64);
            let b = rand_matrix(k, n, 7 + n as u64);
            let c = matmul(&a, &b);
            let expect = naive(&a, &b);
            for (x, y) in c.as_slice().iter().zip(expect.as_slice()) {
                assert!((x - y).abs() < crate::TEST_EPS, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let a = rand_matrix(64, 96, 1);
        let b = rand_matrix(96, 80, 2);
        let serial = matmul_with(&a, &b, ParallelPolicy::Serial);
        let par = matmul_with(&a, &b, ParallelPolicy::Threads { max_threads: 4 });
        assert_eq!(serial, par, "threaded GEMM must be bit-identical");
    }

    #[test]
    fn default_policy_roundtrips_and_is_bit_stable() {
        let a = rand_matrix(48, 64, 5);
        let b = rand_matrix(64, 40, 6);
        let reference = matmul_with(&a, &b, ParallelPolicy::Serial);
        for policy in [
            ParallelPolicy::Serial,
            ParallelPolicy::Threads { max_threads: 3 },
            ParallelPolicy::Auto,
        ] {
            set_default_policy(policy);
            assert_eq!(default_policy(), policy);
            assert_eq!(matmul(&a, &b), reference, "{policy:?}");
        }
        // Threads{0|1} are one-thread requests: stored as Serial, never
        // widened to 2 workers.
        for single in [0, 1] {
            set_default_policy(ParallelPolicy::Threads { max_threads: single });
            assert_eq!(default_policy(), ParallelPolicy::Serial);
        }
        set_default_policy(ParallelPolicy::Auto);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = rand_matrix(4, 6, 3);
        let b = rand_matrix(5, 6, 4);
        let fast = matmul_a_bt(&a, &b);
        let slow = matmul(&a, &b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < crate::TEST_EPS);
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = rand_matrix(6, 4, 5);
        let b = rand_matrix(6, 5, 6);
        let fast = matmul_at_b(&a, &b);
        let slow = matmul(&a.transpose(), &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < crate::TEST_EPS);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn empty_inner_dim_yields_zeros() {
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 3);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 3));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }
}
