//! Layered micro-kernel GEMM with optional thread-level parallelism.
//!
//! Three entry points cover every contraction the network stack needs:
//!
//! * [`matmul`]        — `C = A · B`          (forward pass)
//! * [`matmul_a_bt`]   — `C = A · Bᵀ`         (input gradient: `dX = dY · Wᵀ`)
//! * [`matmul_at_b`]   — `C = Aᵀ · B`         (weight gradient: `dW = Xᵀ · dY`)
//!
//! All three route through one packed path (BLIS-style layered design):
//! the B operand is packed once into k-major `NR` panels, row bands of
//! the output pack their A rows into k-major `MR` panels per `MC`
//! block, and an `MR`×`NR` register-tiled micro-kernel runs fused
//! multiply-adds over the *entire* reduction depth per tile. The
//! transpose variants absorb their transpose into the packing pass, so
//! they stop paying strided access in the O(m·n·k) loop.
//!
//! # Determinism contract
//!
//! Every output element is one fused-multiply-add chain over `k` in
//! increasing order:
//!
//! ```text
//! C[i][j] = fma(A[i][K-1], B[K-1][j], … fma(A[i][1], B[1][j], fma(A[i][0], B[0][j], 0.0)))
//! ```
//!
//! exactly the order of the naive triple loop in [`reference`]. The
//! micro-kernel keeps a single accumulator per element across the whole
//! `k` extent (no split-K partial sums), panel padding lives in the
//! `M`/`N` dimensions only, and `f32::mul_add` is correctly rounded
//! whether it lands in an FMA instruction or libm — so results are
//! bit-identical across the packed and direct paths, across
//! [`ParallelPolicy`] variants and thread counts (parallelism splits
//! packed output *row bands*, never the reduction), and across hosts.

use crate::matrix::Matrix;
use crate::pack::{self, AlignedBuf};
use std::cell::RefCell;

/// How a GEMM call may use threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParallelPolicy {
    /// Always single-threaded.
    Serial,
    /// Split output rows across up to `max_threads` threads when the
    /// problem is large enough to amortize spawn overhead.
    Threads {
        /// Upper bound on worker threads (>= 1).
        max_threads: usize,
    },
    /// Use `std::thread::available_parallelism()` when profitable.
    #[default]
    Auto,
}

/// Minimum number of multiply-adds before threading is considered.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 18;

/// Process-wide default policy used by [`matmul`]: 0 = Auto, 1 = Serial,
/// n >= 2 = `Threads { max_threads: n }`. Results are bit-identical
/// under every policy (row-band splitting preserves reduction order), so
/// this only trades wall time — and lets determinism tests drive the
/// whole pipeline serial vs parallel to prove it.
static DEFAULT_POLICY: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Replace the process-wide default [`ParallelPolicy`] used by [`matmul`]
/// and friends when no explicit policy is given. `Threads` with
/// `max_threads <= 1` means "one thread" and is stored as `Serial` —
/// the execution they describe is identical.
pub fn set_default_policy(policy: ParallelPolicy) {
    let enc = match policy {
        ParallelPolicy::Auto => 0,
        ParallelPolicy::Serial | ParallelPolicy::Threads { max_threads: 0 | 1 } => 1,
        ParallelPolicy::Threads { max_threads } => max_threads,
    };
    DEFAULT_POLICY.store(enc, std::sync::atomic::Ordering::Relaxed);
}

/// The current process-wide default [`ParallelPolicy`].
pub fn default_policy() -> ParallelPolicy {
    match DEFAULT_POLICY.load(std::sync::atomic::Ordering::Relaxed) {
        0 => ParallelPolicy::Auto,
        1 => ParallelPolicy::Serial,
        n => ParallelPolicy::Threads { max_threads: n },
    }
}

fn thread_count(policy: ParallelPolicy, rows: usize, flops: usize) -> usize {
    let hw = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let n = match policy {
        ParallelPolicy::Serial => 1,
        ParallelPolicy::Threads { max_threads } => max_threads.max(1),
        ParallelPolicy::Auto => hw(),
    };
    if flops < PARALLEL_FLOP_THRESHOLD {
        return 1;
    }
    n.min(rows).max(1)
}

// ---------------------------------------------------------------------------
// Kernel geometry
// ---------------------------------------------------------------------------

/// Micro-kernel tile rows. 6×16 is the classic Haswell-class f32 shape:
/// 12 vector accumulators + 2 B lanes + 1 broadcast stay inside 16
/// 256-bit registers.
const MR: usize = 6;
/// Micro-kernel tile columns (two 8-lane vectors).
const NR: usize = 16;
/// Below this many multiply-adds (or when `m < MR`) the unpacked direct
/// path wins: packing costs O(m·k + k·n) memory traffic that tiny and
/// skinny problems — notably batch-1 inference — cannot amortize.
const DIRECT_FLOP_THRESHOLD: usize = 1 << 13;
/// Target footprint of one packed A block (`MC × K` f32), sized to sit
/// in L2 while the kernel streams B panels across it.
const A_BLOCK_BYTES: usize = 1 << 18;

/// Rows per packed A block: as many MR-multiples as fit the L2 target,
/// never fewer than one panel.
fn mc_for(k: usize) -> usize {
    let rows = (A_BLOCK_BYTES / 4) / k.max(1);
    (rows.clamp(MR, 256) / MR) * MR
}

thread_local! {
    /// Per-thread scratch for packed A blocks. Long-lived threads (the
    /// serial path, rollout workers calling GEMM directly) reuse it
    /// across calls; the scoped band workers a `Threads`/`Auto` call
    /// spawns are fresh threads, so each band pays one allocation —
    /// noise next to the spawn itself.
    static PACK_A: RefCell<AlignedBuf> = const { RefCell::new(AlignedBuf::new()) };
    /// Per-thread scratch for the packed B operand. B is always packed
    /// on the *calling* thread (then shared read-only with the band
    /// workers), so this one is warm across every call.
    static PACK_B: RefCell<AlignedBuf> = const { RefCell::new(AlignedBuf::new()) };
}

/// Is the AVX2+FMA kernel instantiation usable on this host? Detected
/// once, then cached. Shared with the [`crate::gemv`] kernels.
#[cfg(target_arch = "x86_64")]
pub(crate) fn fma_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let yes = std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma");
            STATE.store(if yes { 1 } else { 2 }, Ordering::Relaxed);
            yes
        }
    }
}

/// Which micro-kernel instantiation this host dispatches to. Purely
/// informational (benchmark records carry it); both instantiations are
/// bit-identical.
pub fn kernel_isa() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        return "x86-64 avx2+fma";
    }
    "portable"
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// `C = A · B` with the process-wide default parallel policy
/// ([`default_policy`]; `Auto` unless overridden).
///
/// # Panics
/// Panics when `A.cols() != B.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    matmul_with(a, b, default_policy())
}

/// `C = A · B` under an explicit parallel policy.
pub fn matmul_with(a: &Matrix, b: &Matrix, policy: ParallelPolicy) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dims mismatch {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    gemm_core(a, false, b, false, policy)
}

/// `C = A · Bᵀ` (shapes: `(m,k) x (n,k) -> (m,n)`) with the default
/// parallel policy.
///
/// This is the backward-pass input gradient `dX = dY · Wᵀ` without
/// materializing the transpose.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    matmul_a_bt_with(a, b, default_policy())
}

/// `C = A · Bᵀ` under an explicit parallel policy.
pub fn matmul_a_bt_with(a: &Matrix, b: &Matrix, policy: ParallelPolicy) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_a_bt: inner dims mismatch {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    gemm_core(a, false, b, true, policy)
}

/// `C = Aᵀ · B` (shapes: `(k,m) x (k,n) -> (m,n)`) with the default
/// parallel policy.
///
/// This is the backward-pass weight gradient `dW = Xᵀ · dY` without
/// materializing the transpose.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    matmul_at_b_with(a, b, default_policy())
}

/// `C = Aᵀ · B` under an explicit parallel policy.
pub fn matmul_at_b_with(a: &Matrix, b: &Matrix, policy: ParallelPolicy) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at_b: inner dims mismatch {:?}ᵀ x {:?}",
        a.shape(),
        b.shape()
    );
    gemm_core(a, true, b, false, policy)
}

/// `C = A · B` into a caller-owned output (reshaped and reused, no
/// allocation in steady state) — the scratch-arena entry point used by
/// inference. Bit-identical to [`matmul`].
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_into: inner dims mismatch {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    gemm_into_core(a, false, b, false, default_policy(), out);
}

/// `C = A · Bᵀ` into a caller-owned output (see [`matmul_into`]).
pub fn matmul_a_bt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_a_bt_into: inner dims mismatch {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    gemm_into_core(a, false, b, true, default_policy(), out);
}

/// `C = A · B` forced through the *packed* (panel-packing) path
/// regardless of shape. A measurement probe: benches compare the batch-1
/// gemv routing against this to report an in-run speedup ratio, and
/// tests assert the paths are bit-identical. Not a production entry
/// point — dispatch in [`matmul`] already picks the faster path.
pub fn matmul_packed_with(a: &Matrix, b: &Matrix, policy: ParallelPolicy) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul_packed_with: inner dims mismatch");
    let (m, k, n) = dims(a, false, b, false);
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    let threads = thread_count(policy, m, m * n * k);
    packed_driver(a, false, b, false, threads, k, m, n, c.as_mut_slice());
    c
}

/// `C = A · B` forced through the *direct* (unpacked) path regardless of
/// shape — the second measurement probe (see [`matmul_packed_with`]).
pub fn matmul_direct_with(a: &Matrix, b: &Matrix, policy: ParallelPolicy) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul_direct_with: inner dims mismatch");
    let (m, k, n) = dims(a, false, b, false);
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    let threads = thread_count(policy, m, m * n * k);
    run_banded(threads, m, n, c.as_mut_slice(), &|band, r0, r1| {
        direct_rows(a, false, b, false, band, r0, r1)
    });
    c
}

// ---------------------------------------------------------------------------
// Core driver
// ---------------------------------------------------------------------------

/// Logical `(m, k, n)` of `op(A) · op(B)`.
fn dims(a: &Matrix, trans_a: bool, b: &Matrix, trans_b: bool) -> (usize, usize, usize) {
    let (m, k) = if trans_a {
        (a.cols(), a.rows())
    } else {
        (a.rows(), a.cols())
    };
    let n = if trans_b { b.rows() } else { b.cols() };
    (m, k, n)
}

/// `C = op(A) · op(B)` — the shared engine behind every entry point.
fn gemm_core(a: &Matrix, trans_a: bool, b: &Matrix, trans_b: bool, policy: ParallelPolicy) -> Matrix {
    let mut c = Matrix::zeros(0, 0);
    gemm_into_core(a, trans_a, b, trans_b, policy, &mut c);
    c
}

/// [`gemm_core`] into a caller-owned, reshaped-in-place output.
fn gemm_into_core(
    a: &Matrix,
    trans_a: bool,
    b: &Matrix,
    trans_b: bool,
    policy: ParallelPolicy,
    c: &mut Matrix,
) {
    let (m, k, n) = dims(a, trans_a, b, trans_b);
    c.reset_to_zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        // K = 0 contracts an empty sum: every element is exactly +0.0,
        // which is what the zeroed output holds.
        return;
    }
    if m == 1 {
        // Batch-1 hot path: the fused gemv kernels — no packing, no
        // threading (one output row), bit-identical chains. Whether A is
        // a `1 x k` row or (trans_a) a `k x 1` column, its backing slice
        // is the same contiguous x vector.
        if trans_b {
            crate::gemv::gemv_at_into(c.as_mut_slice(), a.as_slice(), b, crate::gemv::Epilogue::None);
        } else {
            crate::gemv::gemv_into(c.as_mut_slice(), a.as_slice(), b, crate::gemv::Epilogue::None);
        }
        return;
    }
    let flops = m * n * k;
    let threads = thread_count(policy, m, flops);
    if m < MR || flops < DIRECT_FLOP_THRESHOLD {
        run_banded(threads, m, n, c.as_mut_slice(), &|band, r0, r1| {
            direct_rows(a, trans_a, b, trans_b, band, r0, r1)
        });
        return;
    }
    packed_driver(a, trans_a, b, trans_b, threads, k, m, n, c.as_mut_slice());
}

/// The packed path: pack B once on the calling thread, then run packed
/// row bands.
#[allow(clippy::too_many_arguments)]
fn packed_driver(
    a: &Matrix,
    trans_a: bool,
    b: &Matrix,
    trans_b: bool,
    threads: usize,
    k: usize,
    m: usize,
    n: usize,
    c: &mut [f32],
) {
    PACK_B.with(|buf| {
        let mut buf = buf.borrow_mut();
        let bp = buf.slots(pack::b_len::<NR>(k, n));
        pack::pack_b::<NR>(bp, b, trans_b, 0, n, k);
        let bp: &[f32] = bp;
        run_banded(threads, m, n, c, &|band, r0, r1| {
            packed_rows(a, trans_a, bp, band, r0, r1, k, n)
        });
    });
}

/// Split rows `0..m` of C into contiguous bands, one per thread, and run
/// `f(band, r0, r1)` on each. Band boundaries never change per-element
/// arithmetic — only which thread performs it — so results are
/// bit-identical for every thread count.
fn run_banded<F>(threads: usize, m: usize, n: usize, c: &mut [f32], f: &F)
where
    F: Fn(&mut [f32], usize, usize) + Sync,
{
    if threads <= 1 {
        f(c, 0, m);
        return;
    }
    let chunk = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = c;
        let mut row0 = 0usize;
        while row0 < m {
            let rows_here = chunk.min(m - row0);
            let (band, tail) = rest.split_at_mut(rows_here * n);
            rest = tail;
            let r0 = row0;
            scope.spawn(move || f(band, r0, r0 + rows_here));
            row0 += rows_here;
        }
    });
}

// ---------------------------------------------------------------------------
// Packed path
// ---------------------------------------------------------------------------

/// Compute C rows `[r0, r1)` against a fully packed B, packing A in
/// L2-sized blocks. Dispatches to the widest kernel the host supports.
///
/// The thread-local scratch borrow happens *here*, outside the
/// feature-gated region: a closure (as `LocalKey::with` takes) compiled
/// inside a `#[target_feature]` body becomes its own non-FMA function,
/// silently demoting every `mul_add` to a libm call.
#[allow(clippy::too_many_arguments)]
fn packed_rows(a: &Matrix, trans_a: bool, bp: &[f32], band: &mut [f32], r0: usize, r1: usize, k: usize, n: usize) {
    PACK_A.with(|buf| {
        let buf = &mut buf.borrow_mut();
        #[cfg(target_arch = "x86_64")]
        if fma_available() {
            // SAFETY: avx2 + fma presence verified by `fma_available`.
            unsafe { packed_rows_fma(a, trans_a, bp, band, r0, r1, k, n, buf) };
            return;
        }
        packed_rows_generic(a, trans_a, bp, band, r0, r1, k, n, buf);
    });
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn packed_rows_fma(a: &Matrix, trans_a: bool, bp: &[f32], band: &mut [f32], r0: usize, r1: usize, k: usize, n: usize, buf: &mut AlignedBuf) {
    packed_rows_generic(a, trans_a, bp, band, r0, r1, k, n, buf);
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn packed_rows_generic(a: &Matrix, trans_a: bool, bp: &[f32], band: &mut [f32], r0: usize, r1: usize, k: usize, n: usize, buf: &mut AlignedBuf) {
    let rows = r1 - r0;
    let mc = mc_for(k);
    for ic in (0..rows).step_by(mc) {
        let rows_here = mc.min(rows - ic);
        let ap = buf.slots(pack::a_len::<MR>(k, rows_here));
        pack::pack_a::<MR>(ap, a, trans_a, r0 + ic, rows_here, k);
        // Macro-kernel: sweep every B panel across this A block so
        // the block stays hot in L2; the B panel stays hot across
        // the inner A-panel loop.
        for (jp, bpanel) in bp.chunks_exact(k * NR).enumerate() {
            let col0 = jp * NR;
            let cols_valid = NR.min(n - col0);
            for (ip, apanel) in ap.chunks_exact(k * MR).enumerate() {
                let acc = microkernel(k, apanel, bpanel);
                let row_base = ic + ip * MR;
                let rows_valid = MR.min(rows_here - ip * MR);
                for (i, acc_row) in acc.iter().enumerate().take(rows_valid) {
                    let dst = &mut band[(row_base + i) * n + col0..][..cols_valid];
                    dst.copy_from_slice(&acc_row[..cols_valid]);
                }
            }
        }
    }
}

/// The register-tiled inner kernel: an `MR`×`NR` accumulator block over
/// the full reduction depth. Each accumulator element is one fused
/// multiply-add chain in increasing-k order — the bit-exactness spec —
/// and the `MR * NR / 8 = 12` independent chains hide FMA latency.
#[inline(always)]
fn microkernel(k: usize, apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
    debug_assert_eq!(apanel.len(), k * MR);
    debug_assert_eq!(bpanel.len(), k * NR);
    let mut acc = [[0.0f32; NR]; MR];
    for (ak, bk) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        let ak: &[f32; MR] = ak.try_into().expect("panel chunk is MR wide");
        let bk: &[f32; NR] = bk.try_into().expect("panel chunk is NR wide");
        for (acc_row, &av) in acc.iter_mut().zip(ak) {
            for (dst, &bv) in acc_row.iter_mut().zip(bk) {
                *dst = av.mul_add(bv, *dst);
            }
        }
    }
    acc
}

// ---------------------------------------------------------------------------
// Direct path (small / skinny problems)
// ---------------------------------------------------------------------------

/// Unpacked fallback for problems too small to amortize packing. Same
/// fused, increasing-k per-element chains as the packed path, so the
/// size-based dispatch never shows in the results.
fn direct_rows(a: &Matrix, trans_a: bool, b: &Matrix, trans_b: bool, band: &mut [f32], r0: usize, r1: usize) {
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: avx2 + fma presence verified by `fma_available`.
        unsafe { direct_rows_fma(a, trans_a, b, trans_b, band, r0, r1) };
        return;
    }
    direct_rows_generic(a, trans_a, b, trans_b, band, r0, r1);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn direct_rows_fma(a: &Matrix, trans_a: bool, b: &Matrix, trans_b: bool, band: &mut [f32], r0: usize, r1: usize) {
    direct_rows_generic(a, trans_a, b, trans_b, band, r0, r1);
}

#[inline(always)]
fn direct_rows_generic(a: &Matrix, trans_a: bool, b: &Matrix, trans_b: bool, band: &mut [f32], r0: usize, r1: usize) {
    match (trans_a, trans_b) {
        (false, false) => {
            // ikj: broadcast A[i][k] against row k of B (unit stride on
            // B and C).
            let n = b.cols();
            for i in r0..r1 {
                let out = &mut band[(i - r0) * n..(i - r0 + 1) * n];
                for (kk, &aik) in a.row(i).iter().enumerate() {
                    for (o, &bv) in out.iter_mut().zip(b.row(kk)) {
                        *o = aik.mul_add(bv, *o);
                    }
                }
            }
        }
        (false, true) => {
            // Row-by-row dot products: both operands unit stride.
            let n = b.rows();
            for i in r0..r1 {
                let arow = a.row(i);
                let out = &mut band[(i - r0) * n..(i - r0 + 1) * n];
                for (j, o) in out.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for (&x, &y) in arow.iter().zip(b.row(j)) {
                        acc = x.mul_add(y, acc);
                    }
                    *o = acc;
                }
            }
        }
        (true, false) => {
            // k-outer: broadcast A[k][i] against row k of B.
            let n = b.cols();
            for kk in 0..a.rows() {
                let arow = a.row(kk);
                let brow = b.row(kk);
                for i in r0..r1 {
                    let av = arow[i];
                    let out = &mut band[(i - r0) * n..(i - r0 + 1) * n];
                    for (o, &bv) in out.iter_mut().zip(brow) {
                        *o = av.mul_add(bv, *o);
                    }
                }
            }
        }
        (true, true) => unreachable!("no entry point contracts Aᵀ · Bᵀ"),
    }
}

// ---------------------------------------------------------------------------
// Reference kernels
// ---------------------------------------------------------------------------

/// Reference implementations: the naive triple loops that *define* the
/// bit-exactness contract, plus the pre-micro-kernel blocked loop kept
/// as the performance baseline for the benchmark regression gate.
pub mod reference {
    use super::Matrix;

    /// Naive jik triple loop, fused: the specification every production
    /// path must match bit-for-bit (see the module docs).
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "reference matmul: inner dims mismatch");
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc = a.get(i, kk).mul_add(b.get(kk, j), acc);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    /// Naive `C = A · Bᵀ`.
    pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "reference matmul_a_bt: inner dims mismatch");
        let m = a.rows();
        let n = b.rows();
        let k = a.cols();
        let mut c = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc = a.get(i, kk).mul_add(b.get(j, kk), acc);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    /// Naive `C = Aᵀ · B`.
    pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "reference matmul_at_b: inner dims mismatch");
        let k = a.rows();
        let m = a.cols();
        let n = b.cols();
        let mut c = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc = a.get(kk, i).mul_add(b.get(kk, j), acc);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    /// The pre-micro-kernel serial GEMM (ikj loop, separate mul and
    /// add, zero-skip): kept verbatim as the baseline the benchmark
    /// suite measures speedups against. NOT bit-identical to the fused
    /// kernels — it is a performance yardstick, not a correctness one.
    pub fn blocked_ikj(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "blocked_ikj: inner dims mismatch");
        let (m, k_dim) = a.shape();
        let n = b.cols();
        let mut c = Matrix::zeros(m, n);
        for i in 0..m {
            let out = &mut c.as_mut_slice()[i * n..(i + 1) * n];
            let a_row = a.row(i);
            for (kk, &aik) in a_row.iter().enumerate().take(k_dim) {
                if aik == 0.0 {
                    continue;
                }
                let b_row = b.row(kk);
                for (o, &bv) in out.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Tiny deterministic LCG so this test has no RNG dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let data = (0..rows * cols).map(|_| next()).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn matmul_is_bit_identical_to_reference() {
        // Shapes straddling every dispatch edge: tiny (direct), tall,
        // skinny, MR/NR-unaligned, and large enough for the packed path.
        for (m, k, n) in [
            (1, 1, 1),
            (2, 3, 4),
            (5, 7, 3),
            (7, 13, 19),
            (16, 16, 16),
            (33, 40, 50),
            (64, 96, 80),
        ] {
            let a = rand_matrix(m, k, 42 + m as u64);
            let b = rand_matrix(k, n, 7 + n as u64);
            assert_eq!(
                matmul_with(&a, &b, ParallelPolicy::Serial),
                reference::matmul(&a, &b),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn packed_and_direct_paths_agree_bitwise() {
        // 64x96x80 crosses DIRECT_FLOP_THRESHOLD (packed); slicing the
        // same data to 4 rows stays direct. Rows computed by either
        // path must match the reference exactly.
        let a = rand_matrix(64, 96, 1);
        let b = rand_matrix(96, 80, 2);
        let full = matmul_with(&a, &b, ParallelPolicy::Serial);
        let small = Matrix::from_vec(4, 96, a.as_slice()[..4 * 96].to_vec());
        let direct = matmul_with(&small, &b, ParallelPolicy::Serial);
        assert_eq!(&full.as_slice()[..4 * 80], direct.as_slice());
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let a = rand_matrix(64, 96, 1);
        let b = rand_matrix(96, 80, 2);
        let serial = matmul_with(&a, &b, ParallelPolicy::Serial);
        for threads in [2, 3, 4, 7] {
            let par = matmul_with(&a, &b, ParallelPolicy::Threads { max_threads: threads });
            assert_eq!(serial, par, "threaded GEMM must be bit-identical ({threads} threads)");
        }
    }

    #[test]
    fn default_policy_roundtrips_and_is_bit_stable() {
        let a = rand_matrix(48, 64, 5);
        let b = rand_matrix(64, 40, 6);
        let reference = matmul_with(&a, &b, ParallelPolicy::Serial);
        for policy in [
            ParallelPolicy::Serial,
            ParallelPolicy::Threads { max_threads: 3 },
            ParallelPolicy::Auto,
        ] {
            set_default_policy(policy);
            assert_eq!(default_policy(), policy);
            assert_eq!(matmul(&a, &b), reference, "{policy:?}");
        }
        // Threads{0|1} are one-thread requests: stored as Serial, never
        // widened to 2 workers.
        for single in [0, 1] {
            set_default_policy(ParallelPolicy::Threads { max_threads: single });
            assert_eq!(default_policy(), ParallelPolicy::Serial);
        }
        set_default_policy(ParallelPolicy::Auto);
    }

    #[test]
    fn a_bt_matches_explicit_transpose_bitwise() {
        // Both big (packed) and small (direct) shapes: the fused chains
        // are identical whether Bᵀ is materialized or absorbed into
        // packing.
        for (m, n, k) in [(4, 5, 6), (48, 40, 64)] {
            let a = rand_matrix(m, k, 3);
            let b = rand_matrix(n, k, 4);
            let fast = matmul_a_bt(&a, &b);
            let slow = matmul(&a, &b.transpose());
            assert_eq!(fast, slow, "{m}x{k}x{n}");
            assert_eq!(fast, reference::matmul_a_bt(&a, &b), "{m}x{k}x{n} vs reference");
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose_bitwise() {
        for (m, n, k) in [(4, 5, 6), (48, 40, 64)] {
            let a = rand_matrix(k, m, 5);
            let b = rand_matrix(k, n, 6);
            let fast = matmul_at_b(&a, &b);
            let slow = matmul(&a.transpose(), &b);
            assert_eq!(fast, slow, "{m}x{k}x{n}");
            assert_eq!(fast, reference::matmul_at_b(&a, &b), "{m}x{k}x{n} vs reference");
        }
    }

    #[test]
    fn transpose_variants_parallel_matches_serial() {
        let a = rand_matrix(48, 64, 8);
        let bt = rand_matrix(40, 64, 9);
        assert_eq!(
            matmul_a_bt_with(&a, &bt, ParallelPolicy::Serial),
            matmul_a_bt_with(&a, &bt, ParallelPolicy::Threads { max_threads: 3 }),
        );
        let at = rand_matrix(64, 48, 10);
        let b = rand_matrix(64, 40, 11);
        assert_eq!(
            matmul_at_b_with(&at, &b, ParallelPolicy::Serial),
            matmul_at_b_with(&at, &b, ParallelPolicy::Threads { max_threads: 3 }),
        );
    }

    #[test]
    fn blocked_ikj_baseline_stays_close() {
        // The legacy kernel is a perf yardstick: approximately, not
        // bitwise, equal (separate rounding, no fma).
        let a = rand_matrix(16, 24, 12);
        let b = rand_matrix(24, 20, 13);
        let legacy = reference::blocked_ikj(&a, &b);
        let fused = matmul_with(&a, &b, ParallelPolicy::Serial);
        for (x, y) in legacy.as_slice().iter().zip(fused.as_slice()) {
            assert!((x - y).abs() < crate::TEST_EPS, "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dims mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn degenerate_shapes_yield_exact_zeros_or_match_reference() {
        // K = 0: an empty contraction is exactly +0.0 everywhere.
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 3);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 3));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
        // 1×N routes to the fused gemv kernel, M×1 stays direct; both
        // still match the reference bitwise.
        let a = rand_matrix(1, 9, 20);
        let b = rand_matrix(9, 5, 21);
        assert_eq!(matmul(&a, &b), reference::matmul(&a, &b));
        let a = rand_matrix(7, 9, 22);
        let b = rand_matrix(9, 1, 23);
        assert_eq!(matmul(&a, &b), reference::matmul(&a, &b));
    }

    #[test]
    fn forced_paths_agree_with_dispatch_bitwise() {
        // The bench probes (forced packed / forced direct) and the gemv
        // routing must all produce the same bits, including on the
        // batch-1 shape where packing pads the row panel.
        for (m, k, n) in [(1, 64, 48), (1, 200, 33), (6, 64, 48), (12, 40, 20)] {
            let a = rand_matrix(m, k, 60 + m as u64);
            let b = rand_matrix(k, n, 61 + n as u64);
            let auto = matmul_with(&a, &b, ParallelPolicy::Serial);
            assert_eq!(auto, matmul_packed_with(&a, &b, ParallelPolicy::Serial), "{m}x{k}x{n} packed");
            assert_eq!(auto, matmul_direct_with(&a, &b, ParallelPolicy::Serial), "{m}x{k}x{n} direct");
            assert_eq!(auto, reference::matmul(&a, &b), "{m}x{k}x{n} reference");
        }
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches() {
        let mut out = Matrix::zeros(0, 0);
        for (m, k, n) in [(1, 40, 30), (5, 7, 3), (33, 40, 50)] {
            let a = rand_matrix(m, k, 70 + m as u64);
            let b = rand_matrix(k, n, 71 + n as u64);
            matmul_into(&a, &b, &mut out);
            assert_eq!(out, matmul(&a, &b), "{m}x{k}x{n}");
            let bt = rand_matrix(n, k, 72 + n as u64);
            matmul_a_bt_into(&a, &bt, &mut out);
            assert_eq!(out, matmul_a_bt(&a, &bt), "{m}x{k}x{n} a_bt");
        }
    }

    #[test]
    fn kernel_isa_reports_a_known_instantiation() {
        let isa = kernel_isa();
        assert!(isa == "x86-64 avx2+fma" || isa == "portable", "{isa}");
    }
}
