//! Fused batch-1 matrix–vector kernels: the decision-serving hot path.
//!
//! A one-row GEMM cannot amortize panel packing — the packed path would
//! pad the single row to an `MR`-row panel (wasting 5/6 of the
//! micro-kernel FLOPs) and stream the whole B operand through a packing
//! pass first (tripling memory traffic on a shape that is already
//! memory-bound). These kernels skip packing entirely:
//!
//! * [`gemv_into`]    — `y = x · B`   (B stored `k x n`): axpy-style
//!   row streaming — each row of B is read once at unit stride (the
//!   whole operand streams through the prefetcher exactly once) and
//!   accumulates into the L1-resident output row, broadcasting `x[k]`.
//! * [`gemv_at_into`] — `y = x · Bᵀ`  (B stored `n x k`): per-output
//!   dot-product chains, four rows in flight for FMA-latency overlap.
//!
//! Both take a fusable [`Epilogue`] (bias add, bias + ReLU) so a dense
//! layer's batch-1 inference is one pass over the weights with no
//! intermediate write-back.
//!
//! # Determinism contract
//!
//! Same as [`crate::gemm`]: every output element is a single
//! `f32::mul_add` chain over `k` in increasing order starting from
//! `+0.0`. Vectorization happens across output columns `j` only — the
//! reduction is never split or reassociated — so results are
//! bit-identical to [`crate::gemm::reference`], to the direct and packed
//! GEMM paths, and across the AVX2+FMA and portable instantiations. The
//! fused bias is the same single `+` the unfused
//! `Matrix::add_row_broadcast` performs, and the fused ReLU is exactly
//! `x.max(0.0)` — one rounding either way.

use crate::matrix::Matrix;

/// Operation fused onto the kernel's register block before write-back.
#[derive(Clone, Copy, Debug)]
pub enum Epilogue<'a> {
    /// Plain contraction: `y = x · op(B)`.
    None,
    /// `y = x · op(B) + bias` — bit-identical to the separate
    /// `add_row_broadcast` (one `+` either way).
    Bias(&'a [f32]),
    /// `y = max(x · op(B) + bias, 0)` — the ReLU is exactly
    /// `Activation::Relu`'s `x.max(0.0)`.
    BiasRelu(&'a [f32]),
}

/// Apply the epilogue to the full accumulator row.
#[inline(always)]
fn apply_epilogue(acc: &mut [f32], epilogue: Epilogue<'_>) {
    match epilogue {
        Epilogue::None => {}
        Epilogue::Bias(bias) => {
            for (a, &bv) in acc.iter_mut().zip(bias) {
                *a += bv;
            }
        }
        Epilogue::BiasRelu(bias) => {
            for (a, &bv) in acc.iter_mut().zip(bias) {
                *a = (*a + bv).max(0.0);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// y = x · B  (B stored k x n)
// ---------------------------------------------------------------------------

/// `y = x · B` with a fused epilogue; `B` is `k x n`, `x` has length
/// `k`, `y` length `n`. Dispatches to the widest kernel the host
/// supports (see [`crate::kernel_isa`]); both instantiations are
/// bit-identical.
///
/// # Panics
/// Panics when `x.len() != B.rows()` or `y.len() != B.cols()`, or when a
/// bias epilogue is shorter than `y`.
pub fn gemv_into(y: &mut [f32], x: &[f32], b: &Matrix, epilogue: Epilogue<'_>) {
    assert_eq!(x.len(), b.rows(), "gemv: x length != B rows");
    assert_eq!(y.len(), b.cols(), "gemv: y length != B cols");
    assert_epilogue_len(y.len(), epilogue);
    #[cfg(target_arch = "x86_64")]
    if crate::gemm::fma_available() {
        // SAFETY: avx2 + fma presence verified by `fma_available`.
        unsafe { gemv_fma(y, x, b, epilogue) };
        return;
    }
    gemv_body(y, x, b, epilogue);
}

/// The portable instantiation of [`gemv_into`], callable on any host —
/// exists so bit-identity tests can compare both ISA paths on one
/// machine.
pub fn gemv_portable_into(y: &mut [f32], x: &[f32], b: &Matrix, epilogue: Epilogue<'_>) {
    assert_eq!(x.len(), b.rows(), "gemv: x length != B rows");
    assert_eq!(y.len(), b.cols(), "gemv: y length != B cols");
    assert_epilogue_len(y.len(), epilogue);
    gemv_body(y, x, b, epilogue);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemv_fma(y: &mut [f32], x: &[f32], b: &Matrix, epilogue: Epilogue<'_>) {
    gemv_body(y, x, b, epilogue);
}

/// The shared kernel body. Axpy-style row streaming: the output row is
/// the accumulator (L1-resident for any realistic layer width) and each
/// row of B is read exactly once at unit stride — the shape is
/// memory-bound, so the whole win is letting the prefetcher see one
/// sequential 4·k·n-byte stream instead of column-block strides. Each
/// `y[j]` remains a single `mul_add` chain in increasing-`k` order
/// (vectorization is across `j` only), so results stay bit-identical to
/// the reference.
#[inline(always)]
fn gemv_body(y: &mut [f32], x: &[f32], b: &Matrix, epilogue: Epilogue<'_>) {
    let n = b.cols();
    let bs = b.as_slice();
    y.fill(0.0);
    for (kk, &xv) in x.iter().enumerate() {
        let brow = &bs[kk * n..kk * n + n];
        for (a, &bv) in y.iter_mut().zip(brow) {
            *a = xv.mul_add(bv, *a);
        }
    }
    apply_epilogue(y, epilogue);
}

// ---------------------------------------------------------------------------
// y = x · Bᵀ  (B stored n x k)
// ---------------------------------------------------------------------------

/// `y = x · Bᵀ` with a fused epilogue; `B` is `n x k` (each output is a
/// dot against a row of B), `x` has length `k`, `y` length `n`.
///
/// # Panics
/// Panics when `x.len() != B.cols()` or `y.len() != B.rows()`, or when a
/// bias epilogue is shorter than `y`.
pub fn gemv_at_into(y: &mut [f32], x: &[f32], b: &Matrix, epilogue: Epilogue<'_>) {
    assert_eq!(x.len(), b.cols(), "gemv_at: x length != B cols");
    assert_eq!(y.len(), b.rows(), "gemv_at: y length != B rows");
    assert_epilogue_len(y.len(), epilogue);
    #[cfg(target_arch = "x86_64")]
    if crate::gemm::fma_available() {
        // SAFETY: avx2 + fma presence verified by `fma_available`.
        unsafe { gemv_at_fma(y, x, b, epilogue) };
        return;
    }
    gemv_at_body(y, x, b, epilogue);
}

/// The portable instantiation of [`gemv_at_into`] (see
/// [`gemv_portable_into`]).
pub fn gemv_at_portable_into(y: &mut [f32], x: &[f32], b: &Matrix, epilogue: Epilogue<'_>) {
    assert_eq!(x.len(), b.cols(), "gemv_at: x length != B cols");
    assert_eq!(y.len(), b.rows(), "gemv_at: y length != B rows");
    assert_epilogue_len(y.len(), epilogue);
    gemv_at_body(y, x, b, epilogue);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemv_at_fma(y: &mut [f32], x: &[f32], b: &Matrix, epilogue: Epilogue<'_>) {
    gemv_at_body(y, x, b, epilogue);
}

/// Per-output-row dot chains, four rows in flight so independent FMA
/// chains overlap. Each chain is scalar — vectorizing it would split the
/// reduction and break bit-identity.
#[inline(always)]
fn gemv_at_body(y: &mut [f32], x: &[f32], b: &Matrix, epilogue: Epilogue<'_>) {
    let n = b.rows();
    let mut j = 0usize;
    while j + 4 <= n {
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        let rows = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
        for ((((&xv, &v0), &v1), &v2), &v3) in
            x.iter().zip(rows.0).zip(rows.1).zip(rows.2).zip(rows.3)
        {
            a0 = xv.mul_add(v0, a0);
            a1 = xv.mul_add(v1, a1);
            a2 = xv.mul_add(v2, a2);
            a3 = xv.mul_add(v3, a3);
        }
        y[j] = a0;
        y[j + 1] = a1;
        y[j + 2] = a2;
        y[j + 3] = a3;
        j += 4;
    }
    for (jj, out) in y.iter_mut().enumerate().skip(j) {
        let mut acc = 0.0f32;
        for (&xv, &bv) in x.iter().zip(b.row(jj)) {
            acc = xv.mul_add(bv, acc);
        }
        *out = acc;
    }
    apply_epilogue(y, epilogue);
}

fn assert_epilogue_len(n: usize, epilogue: Epilogue<'_>) {
    if let Epilogue::Bias(bias) | Epilogue::BiasRelu(bias) = epilogue {
        assert!(bias.len() >= n, "gemv: bias shorter than output ({} < {n})", bias.len());
    }
}

// ---------------------------------------------------------------------------
// Matrix-shaped conveniences
// ---------------------------------------------------------------------------

/// `y = x · B` as matrices: `x` is `1 x k`, `B` is `k x n`, result `1 x n`.
pub fn gemv(x: &Matrix, b: &Matrix, epilogue: Epilogue<'_>) -> Matrix {
    assert_eq!(x.rows(), 1, "gemv: x must be a row vector");
    let mut y = Matrix::zeros(1, b.cols());
    gemv_into(y.as_mut_slice(), x.as_slice(), b, epilogue);
    y
}

/// `y = x · Bᵀ` as matrices: `x` is `1 x k`, `B` is `n x k`, result `1 x n`.
pub fn gemv_at(x: &Matrix, b: &Matrix, epilogue: Epilogue<'_>) -> Matrix {
    assert_eq!(x.rows(), 1, "gemv_at: x must be a row vector");
    let mut y = Matrix::zeros(1, b.rows());
    gemv_at_into(y.as_mut_slice(), x.as_slice(), b, epilogue);
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::reference;

    fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let data = (0..rows * cols).map(|_| next()).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn gemv_matches_reference_bitwise() {
        // Shapes straddling the NB block edge and the scalar tail.
        for (k, n) in [(1, 1), (3, 7), (17, 31), (40, 32), (65, 100), (128, 96)] {
            let x = lcg_matrix(1, k, 11 + k as u64);
            let b = lcg_matrix(k, n, 23 + n as u64);
            let fast = gemv(&x, &b, Epilogue::None);
            assert_eq!(fast, reference::matmul(&x, &b), "{k}x{n}");
        }
    }

    #[test]
    fn gemv_at_matches_reference_bitwise() {
        for (k, n) in [(1, 1), (3, 7), (17, 31), (40, 4), (65, 100)] {
            let x = lcg_matrix(1, k, 31 + k as u64);
            let bt = lcg_matrix(n, k, 43 + n as u64);
            let fast = gemv_at(&x, &bt, Epilogue::None);
            assert_eq!(fast, reference::matmul_a_bt(&x, &bt), "{k}x{n}");
        }
    }

    #[test]
    fn fused_bias_matches_separate_broadcast_bitwise() {
        let (k, n) = (37, 50);
        let x = lcg_matrix(1, k, 5);
        let b = lcg_matrix(k, n, 6);
        let bias = lcg_matrix(1, n, 7);
        let fused = gemv(&x, &b, Epilogue::Bias(bias.as_slice()));
        let mut separate = reference::matmul(&x, &b);
        separate.add_row_broadcast(&bias);
        assert_eq!(fused, separate);
    }

    #[test]
    fn fused_bias_relu_matches_separate_ops_bitwise() {
        let (k, n) = (37, 50);
        let x = lcg_matrix(1, k, 8);
        let b = lcg_matrix(k, n, 9);
        let bias = lcg_matrix(1, n, 10);
        let fused = gemv(&x, &b, Epilogue::BiasRelu(bias.as_slice()));
        let mut separate = reference::matmul(&x, &b);
        separate.add_row_broadcast(&bias);
        separate.map_inplace(|v| v.max(0.0));
        assert_eq!(fused, separate);
    }

    #[test]
    fn portable_path_is_bit_identical_to_dispatched() {
        let (k, n) = (71, 45);
        let x = lcg_matrix(1, k, 12);
        let b = lcg_matrix(k, n, 13);
        let bias = lcg_matrix(1, n, 14);
        for ep in [Epilogue::None, Epilogue::Bias(bias.as_slice()), Epilogue::BiasRelu(bias.as_slice())] {
            let mut fast = vec![0.0f32; n];
            let mut portable = vec![0.0f32; n];
            gemv_into(&mut fast, x.as_slice(), &b, ep);
            gemv_portable_into(&mut portable, x.as_slice(), &b, ep);
            assert_eq!(fast, portable);
        }
        let bt = lcg_matrix(n, k, 15);
        let mut fast = vec![0.0f32; n];
        let mut portable = vec![0.0f32; n];
        gemv_at_into(&mut fast, x.as_slice(), &bt, Epilogue::None);
        gemv_at_portable_into(&mut portable, x.as_slice(), &bt, Epilogue::None);
        assert_eq!(fast, portable);
    }

    #[test]
    fn k_zero_contracts_to_bias_or_exact_zero() {
        let b = Matrix::zeros(0, 5);
        let bias = lcg_matrix(1, 5, 16);
        let plain = gemv(&Matrix::zeros(1, 0), &b, Epilogue::None);
        assert!(plain.as_slice().iter().all(|&v| v == 0.0 && v.is_sign_positive()));
        let biased = gemv(&Matrix::zeros(1, 0), &b, Epilogue::Bias(bias.as_slice()));
        assert_eq!(biased.as_slice(), bias.as_slice());
    }
}
