//! Minimal dense linear-algebra substrate for the MRSch reproduction.
//!
//! The MRSch paper implements its agent in TensorFlow; this crate provides
//! the small set of dense operations the hand-rolled replacement network
//! stack ([`mrsch-nn`](../mrsch_nn/index.html)) needs:
//!
//! * a row-major [`Matrix`] of `f32` with shape-checked arithmetic,
//! * blocked and (optionally thread-parallel) GEMM in [`gemm`],
//! * weight initializers (Xavier/He, Box–Muller normal) in [`init`],
//! * summary statistics helpers in [`stats`].
//!
//! The crate is deliberately tiny and dependency-light: everything is
//! `f32`, row-major, and owned `Vec<f32>` storage. The networks in this
//! reproduction top out at a 4000-wide hidden layer (the paper's Theta
//! configuration), for which a cache-blocked scalar GEMM with thread-level
//! parallelism is entirely adequate and keeps results bit-reproducible for
//! a fixed seed and thread-count independent (parallelism splits output
//! rows, never reduction dimensions).

pub mod gemm;
pub mod init;
pub mod matrix;
pub mod stats;

pub use gemm::{default_policy, matmul, matmul_a_bt, matmul_at_b, set_default_policy, ParallelPolicy};
pub use matrix::Matrix;

/// Absolute tolerance used by the crate's own tests when comparing floats.
pub const TEST_EPS: f32 = 1e-4;
