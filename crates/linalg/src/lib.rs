//! Minimal dense linear-algebra substrate for the MRSch reproduction.
//!
//! The MRSch paper implements its agent in TensorFlow; this crate provides
//! the small set of dense operations the hand-rolled replacement network
//! stack ([`mrsch-nn`](../mrsch_nn/index.html)) needs:
//!
//! * a row-major [`Matrix`] of `f32` with shape-checked arithmetic,
//! * a layered, packed micro-kernel GEMM (optionally thread-parallel)
//!   in [`gemm`], with panel packing in [`pack`],
//! * fused batch-1 matrix–vector kernels with a bias/ReLU epilogue (the
//!   decision-serving hot path) in [`gemv`],
//! * weight initializers (Xavier/He, Box–Muller normal) in [`init`],
//! * summary statistics helpers in [`stats`].
//!
//! The crate is deliberately tiny and dependency-light: everything is
//! `f32`, row-major, and owned `Vec<f32>` storage. The GEMM is a
//! BLIS-style layered design — cache-aligned A/B panel packing, an
//! MR×NR register-tiled FMA micro-kernel, runtime AVX2+FMA dispatch —
//! and keeps results bit-reproducible: every output element is one
//! fused-multiply-add chain in increasing-k order, identical across
//! kernel paths, [`ParallelPolicy`] variants, and thread counts
//! (parallelism splits output rows, never reduction dimensions). See
//! the [`gemm`] module docs for the full determinism contract.

pub mod gemm;
pub mod gemv;
pub mod init;
pub mod matrix;
pub mod pack;
pub mod stats;

pub use gemm::{
    default_policy, kernel_isa, matmul, matmul_a_bt, matmul_a_bt_into, matmul_a_bt_with,
    matmul_at_b, matmul_at_b_with, matmul_into, matmul_with, set_default_policy, ParallelPolicy,
};
pub use gemv::{gemv, gemv_at, gemv_at_into, gemv_into, Epilogue};
pub use matrix::Matrix;

/// Absolute tolerance used by the crate's own tests when comparing floats.
pub const TEST_EPS: f32 = 1e-4;
