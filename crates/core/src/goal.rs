//! Goal-vector construction: dynamic resource prioritizing (§III-B).
//!
//! The goal vector weights each measurement (resource utilization) in the
//! agent's objective. MRSch computes it *dynamically* from the contention
//! fierceness of each resource (Eq. 1); the scalar-RL baseline's fixed
//! 50/50 weighting corresponds to [`GoalMode::Fixed`].

use mrsim::policy::SchedulerView;
use serde::{Deserialize, Serialize};

/// How the goal vector is produced at each decision.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum GoalMode {
    /// Eq. (1): `r_j = Σ_i P_ij t_i / Σ_j Σ_i P_ij t_i` over all queued
    /// and running jobs — the contentious resource gets the larger weight.
    Dynamic,
    /// A constant goal (e.g. `[0.5, 0.5]`, the scalar-RL extension's
    /// implicit weighting).
    Fixed(Vec<f64>),
}

impl GoalMode {
    /// Uniform fixed goal over `n` resources.
    pub fn uniform(n: usize) -> Self {
        GoalMode::Fixed(vec![1.0 / n as f64; n])
    }

    /// Produce the goal vector (as `f32`, the network's dtype) for a
    /// decision.
    ///
    /// # Panics
    /// Panics if a fixed goal's length disagrees with the system's
    /// resource count.
    pub fn goal_for(&self, view: &SchedulerView<'_>) -> Vec<f32> {
        match self {
            GoalMode::Dynamic => view
                .contention_weights()
                .into_iter()
                .map(|x| x as f32)
                .collect(),
            GoalMode::Fixed(g) => {
                assert_eq!(
                    g.len(),
                    view.config.num_resources(),
                    "fixed goal length must match resource count"
                );
                g.iter().map(|&x| x as f32).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsim::job::Job;
    use mrsim::policy::{Policy, SchedulerView};
    use mrsim::resources::SystemConfig;
    use mrsim::simulator::{SimParams, Simulator};

    fn first_goal(mode: GoalMode, jobs: Vec<Job>, system: SystemConfig) -> Vec<f32> {
        struct Probe {
            mode: GoalMode,
            out: Option<Vec<f32>>,
        }
        impl Policy for Probe {
            fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
                if self.out.is_none() {
                    self.out = Some(self.mode.goal_for(view));
                }
                (!view.window.is_empty()).then_some(0)
            }
        }
        let mut p = Probe { mode, out: None };
        let mut sim = Simulator::new(system, jobs, SimParams::default()).unwrap();
        sim.run(&mut p);
        p.out.unwrap()
    }

    #[test]
    fn dynamic_goal_tracks_contention() {
        // BB demand-time dominates: 2 jobs want the whole buffer for long.
        let system = SystemConfig::two_resource(100, 10);
        let jobs = vec![
            Job::new(0, 0, 10_000, 10_000, vec![1, 10]),
            Job::new(1, 0, 10_000, 10_000, vec![1, 10]),
        ];
        let g = first_goal(GoalMode::Dynamic, jobs, system);
        assert!(g[1] > 0.9, "BB weight should dominate: {g:?}");
        assert!((g[0] + g[1] - 1.0).abs() < 1e-5, "weights normalize");
    }

    #[test]
    fn fixed_goal_is_constant() {
        let system = SystemConfig::two_resource(4, 4);
        let jobs = vec![Job::new(0, 0, 60, 60, vec![4, 4])];
        let g = first_goal(GoalMode::Fixed(vec![0.5, 0.5]), jobs, system);
        assert_eq!(g, vec![0.5, 0.5]);
    }

    #[test]
    fn uniform_constructor() {
        match GoalMode::uniform(4) {
            GoalMode::Fixed(g) => {
                assert_eq!(g.len(), 4);
                assert!((g.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            }
            _ => panic!("uniform must be Fixed"),
        }
    }

    #[test]
    #[should_panic(expected = "fixed goal length")]
    fn fixed_goal_length_checked() {
        let system = SystemConfig::two_resource(4, 4);
        let jobs = vec![Job::new(0, 0, 60, 60, vec![1, 1])];
        first_goal(GoalMode::Fixed(vec![1.0]), jobs, system);
    }
}
