//! Decision explanations — the paper's §VI future-work direction.
//!
//! The paper closes by noting that RL schedulers are "incomprehensible to
//! debug, deploy, and adjust in practice" and names interpretability as
//! future work. This module implements a first practical cut: for any
//! decision the agent makes, produce an [`Explanation`] containing
//!
//! * the **goal vector** in force (which resource the agent was told to
//!   care about, and how much),
//! * per window slot: the job, its **goal-weighted score**, and the
//!   **predicted utilization changes** at every horizon — i.e. *what the
//!   agent believes each choice would do*,
//! * an **input-saliency** breakdown of the chosen action's score over
//!   the state vector, re-aggregated into human units (per window slot
//!   and per resource pool) via the encoder layout.
//!
//! Everything derives from two network passes (forward + one backward),
//! so explanations are cheap enough to log on every decision.

use crate::encoder::StateEncoder;
use crate::goal::GoalMode;
use mrsch_dfp::DfpAgent;
use mrsim::job::JobId;
use mrsim::policy::SchedulerView;

/// Explanation of one window slot's appeal to the agent.
#[derive(Clone, Debug)]
pub struct SlotExplanation {
    /// Window index.
    pub slot: usize,
    /// The job occupying the slot.
    pub job: JobId,
    /// Goal-weighted score (the quantity the greedy policy maximizes).
    pub score: f32,
    /// Predicted measurement changes, `[offset][measurement]`.
    pub predicted_changes: Vec<Vec<f32>>,
    /// Whether the job currently fits in free resources.
    pub fits: bool,
}

/// Saliency mass of the chosen action, re-aggregated into human units.
#[derive(Clone, Debug)]
pub struct SaliencyBreakdown {
    /// Total |gradient| mass attributed to each window slot's job
    /// features.
    pub per_window_slot: Vec<f32>,
    /// Total |gradient| mass attributed to each resource pool's unit
    /// availability features.
    pub per_resource_pool: Vec<f32>,
}

/// A full decision explanation.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// Decision time.
    pub now: mrsim::SimTime,
    /// The goal vector in force (one weight per resource).
    pub goal: Vec<f32>,
    /// The action the agent would take greedily.
    pub chosen_slot: Option<usize>,
    /// Per-slot detail, one entry per occupied window slot.
    pub slots: Vec<SlotExplanation>,
    /// Saliency of the chosen action over the state inputs.
    pub saliency: Option<SaliencyBreakdown>,
}

impl Explanation {
    /// Render a compact multi-line human-readable report.
    pub fn to_pretty_string(&self, resource_names: &[String]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "decision at t={}s", self.now);
        let goals: Vec<String> = self
            .goal
            .iter()
            .zip(resource_names)
            .map(|(g, n)| format!("{n}={g:.3}"))
            .collect();
        let _ = writeln!(out, "  goal: {}", goals.join(", "));
        for s in &self.slots {
            let marker = if Some(s.slot) == self.chosen_slot { "->" } else { "  " };
            let _ = writeln!(
                out,
                "{marker} slot {} (job {}): score {:+.4} {}",
                s.slot,
                s.job,
                s.score,
                if s.fits { "[fits]" } else { "[would reserve]" }
            );
        }
        if let Some(sal) = &self.saliency {
            let total: f32 = sal.per_window_slot.iter().sum::<f32>()
                + sal.per_resource_pool.iter().sum::<f32>();
            if total > 0.0 {
                let _ = writeln!(
                    out,
                    "  saliency: {:.0}% queue features, {:.0}% resource-state features",
                    100.0 * sal.per_window_slot.iter().sum::<f32>() / total,
                    100.0 * sal.per_resource_pool.iter().sum::<f32>() / total
                );
            }
        }
        out
    }
}

/// Explainer: wraps an agent + encoder and produces [`Explanation`]s for
/// scheduler views.
pub struct Explainer<'a> {
    agent: &'a mut DfpAgent,
    encoder: StateEncoder,
    goal_mode: GoalMode,
}

impl<'a> Explainer<'a> {
    /// Build an explainer over an agent. The encoder must match the
    /// agent's dimensions (same check as [`crate::MrschPolicy`]).
    pub fn new(agent: &'a mut DfpAgent, encoder: StateEncoder, goal_mode: GoalMode) -> Self {
        assert_eq!(agent.config().state_dim, encoder.state_dim());
        assert_eq!(agent.config().num_actions, encoder.window());
        Self { agent, encoder, goal_mode }
    }

    /// Explain the greedy decision at a scheduler view.
    pub fn explain(&mut self, view: &SchedulerView<'_>) -> Explanation {
        let state = self.encoder.encode(view);
        let meas: Vec<f32> = view.measurement().iter().map(|&x| x as f32).collect();
        let goal = self.goal_mode.goal_for(view);
        let valid = self.encoder.valid_actions(view);

        let (scores, changes) = {
            let net = self.agent.network_mut();
            (
                net.action_scores(&state, &meas, &goal),
                net.predicted_changes(&state, &meas, &goal),
            )
        };

        let slots: Vec<SlotExplanation> = view
            .window
            .iter()
            .enumerate()
            .map(|(slot, jv)| SlotExplanation {
                slot,
                job: jv.job.id,
                score: scores[slot],
                predicted_changes: changes[slot].clone(),
                fits: view.pools.fits(&jv.job.demands),
            })
            .collect();

        let chosen_slot = slots
            .iter()
            .filter(|s| valid[s.slot])
            .max_by(|a, b| {
                a.score
                    .partial_cmp(&b.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.slot.cmp(&a.slot))
            })
            .map(|s| s.slot);

        let saliency = chosen_slot.map(|a| {
            let raw = {
                let net = self.agent.network_mut();
                let raw = net.state_saliency(&state, &meas, &goal, a);
                net.zero_grad(); // saliency must not leak into training
                raw
            };
            self.aggregate_saliency(&raw, view)
        });

        Explanation { now: view.now, goal, chosen_slot, slots, saliency }
    }

    /// Fold the per-feature saliency back onto the encoder layout:
    /// `W` slots of `R+2` job features, then per-unit pairs per pool.
    fn aggregate_saliency(
        &self,
        raw: &[f32],
        view: &SchedulerView<'_>,
    ) -> SaliencyBreakdown {
        let r = view.config.num_resources();
        let w = self.encoder.window();
        let slot_width = r + 2;
        let mut per_window_slot = vec![0.0f32; w];
        for (slot, mass) in per_window_slot.iter_mut().enumerate() {
            let start = slot * slot_width;
            *mass = raw[start..start + slot_width].iter().sum();
        }
        let mut per_resource_pool = vec![0.0f32; r];
        let mut offset = w * slot_width;
        for (res, mass) in per_resource_pool.iter_mut().enumerate() {
            let units = view.config.capacities()[res] as usize;
            *mass = raw[offset..offset + 2 * units].iter().sum();
            offset += 2 * units;
        }
        SaliencyBreakdown { per_window_slot, per_resource_pool }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsch_dfp::DfpConfig;
    use mrsim::job::Job;
    use mrsim::policy::Policy;
    use mrsim::resources::SystemConfig;
    use mrsim::simulator::{SimParams, Simulator};

    fn setup() -> (SystemConfig, StateEncoder, DfpAgent) {
        let system = SystemConfig::two_resource(8, 4);
        let encoder = StateEncoder::with_hour_scale(system.clone(), 3);
        let mut cfg = DfpConfig::scaled(encoder.state_dim(), 2, 3);
        cfg.state_hidden = vec![16];
        cfg.state_embed = 8;
        cfg.io_hidden = 8;
        cfg.io_embed = 4;
        cfg.stream_hidden = 16;
        (system, encoder, DfpAgent::new(cfg, 5))
    }

    /// Capture one explanation through a probe policy.
    fn first_explanation(
        system: SystemConfig,
        encoder: StateEncoder,
        agent: &mut DfpAgent,
        jobs: Vec<Job>,
    ) -> Explanation {
        struct Probe<'a, 'b> {
            explainer: Explainer<'a>,
            out: &'b mut Option<Explanation>,
        }
        impl Policy for Probe<'_, '_> {
            fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
                if self.out.is_none() && !view.window.is_empty() {
                    *self.out = Some(self.explainer.explain(view));
                }
                (!view.window.is_empty()).then_some(0)
            }
        }
        let mut out = None;
        {
            let explainer = Explainer::new(agent, encoder, GoalMode::Dynamic);
            let mut probe = Probe { explainer, out: &mut out };
            let mut sim = Simulator::new(system, jobs, SimParams::default()).unwrap();
            sim.run(&mut probe);
        }
        out.expect("no decision happened")
    }

    fn jobs() -> Vec<Job> {
        vec![
            Job::new(0, 0, 600, 1200, vec![4, 2]),
            Job::new(1, 0, 600, 1200, vec![8, 0]),
        ]
    }

    #[test]
    fn explanation_covers_every_window_slot() {
        let (system, encoder, mut agent) = setup();
        let e = first_explanation(system, encoder, &mut agent, jobs());
        assert_eq!(e.slots.len(), 2);
        assert!(e.chosen_slot.is_some());
        assert_eq!(e.goal.len(), 2);
        for s in &e.slots {
            assert_eq!(s.predicted_changes.len(), agent.config().offsets.len());
            assert_eq!(s.predicted_changes[0].len(), 2);
            assert!(s.score.is_finite());
        }
    }

    #[test]
    fn chosen_slot_has_max_score() {
        let (system, encoder, mut agent) = setup();
        let e = first_explanation(system, encoder, &mut agent, jobs());
        let chosen = e.chosen_slot.unwrap();
        let best = e
            .slots
            .iter()
            .map(|s| s.score)
            .fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(e.slots[chosen].score, best);
    }

    #[test]
    fn saliency_masses_are_nonnegative_and_cover_layout() {
        let (system, encoder, mut agent) = setup();
        let e = first_explanation(system.clone(), encoder, &mut agent, jobs());
        let sal = e.saliency.expect("saliency present when a slot is chosen");
        assert_eq!(sal.per_window_slot.len(), 3);
        assert_eq!(sal.per_resource_pool.len(), 2);
        assert!(sal.per_window_slot.iter().all(|&x| x >= 0.0));
        assert!(sal.per_resource_pool.iter().all(|&x| x >= 0.0));
        let total: f32 = sal.per_window_slot.iter().sum::<f32>()
            + sal.per_resource_pool.iter().sum::<f32>();
        assert!(total > 0.0, "a live network must have nonzero saliency");
    }

    #[test]
    fn saliency_does_not_leak_into_training_gradients() {
        let (system, encoder, mut agent) = setup();
        let _ = first_explanation(system, encoder, &mut agent, jobs());
        let mut norm = 0.0f32;
        agent.network_mut().visit_params(&mut |_, g| norm += g.norm_sq());
        assert_eq!(norm, 0.0, "explainer must zero its gradients");
    }

    #[test]
    fn pretty_string_mentions_goal_and_choice() {
        let (system, encoder, mut agent) = setup();
        let e = first_explanation(system, encoder, &mut agent, jobs());
        let names = vec!["nodes".to_string(), "burst_buffer_tb".to_string()];
        let text = e.to_pretty_string(&names);
        assert!(text.contains("goal: nodes="));
        assert!(text.contains("->"), "chosen slot marked");
        assert!(text.contains("saliency:"));
    }
}
