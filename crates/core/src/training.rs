//! Building and training MRSch agents: the three-phase curriculum of
//! §III-D.
//!
//! [`MrschBuilder`] wires together the system configuration, the state
//! encoder, and a [`DfpConfig`] sized for that encoder, producing an
//! [`Mrsch`] handle that can train over job sets and evaluate on held-out
//! workloads.

use crate::agent::{Mode, MrschPolicy};
use crate::encoder::StateEncoder;
use crate::engine::{EngineOutcome, RolloutTask, TrainerConfig, TrainingEngine};
use crate::goal::GoalMode;
use mrsch_dfp::{DfpAgent, DfpConfig, StateModuleKind};
use mrsch_workload::jobset::JobSetKind;
use mrsch_workload::scenario::{mix_seed, Curriculum};
use mrsch_workload::suite::WorkloadSpec;
use mrsch_workload::theta::TraceJob;
use mrsim::job::Job;
use mrsim::resources::SystemConfig;
use mrsim::simulator::{SimParams, Simulator};
use mrsim::{SimReport, SimTime};

/// Builder for an [`Mrsch`] scheduling agent.
#[derive(Clone, Debug)]
pub struct MrschBuilder {
    system: SystemConfig,
    params: SimParams,
    seed: u64,
    state_module: StateModuleKind,
    goal_mode: GoalMode,
    trainer: TrainerConfig,
    config_override: Option<DfpConfig>,
}

impl MrschBuilder {
    /// Start building an agent for a system under given simulator
    /// parameters (the window size is taken from `params`).
    pub fn new(system: SystemConfig, params: SimParams) -> Self {
        Self {
            system,
            params,
            seed: 0,
            state_module: StateModuleKind::Mlp,
            goal_mode: GoalMode::Dynamic,
            trainer: TrainerConfig::default(),
            config_override: None,
        }
    }

    /// Set the RNG seed (network init + exploration).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Choose the state-module architecture (Fig. 3 ablation).
    pub fn state_module(mut self, kind: StateModuleKind) -> Self {
        self.state_module = kind;
        self
    }

    /// Choose how goals are produced (dynamic Eq. 1 vs fixed weights).
    pub fn goal_mode(mut self, mode: GoalMode) -> Self {
        self.goal_mode = mode;
        self
    }

    /// Gradient steps per training episode (sugar for the corresponding
    /// [`TrainerConfig`] field).
    pub fn batches_per_episode(mut self, n: usize) -> Self {
        self.trainer.batches_per_episode = n;
        self
    }

    /// Replace the whole training-loop configuration (workers, round
    /// size, gradient steps).
    pub fn trainer(mut self, cfg: TrainerConfig) -> Self {
        self.trainer = cfg;
        self
    }

    /// Replace the auto-sized [`DfpConfig`] entirely (dimension fields are
    /// still overwritten to match the encoder).
    pub fn dfp_config(mut self, cfg: DfpConfig) -> Self {
        self.config_override = Some(cfg);
        self
    }

    /// Build the agent.
    pub fn build(self) -> Mrsch {
        let encoder = StateEncoder::with_hour_scale(self.system.clone(), self.params.window);
        let m = self.system.num_resources();
        let mut cfg = self
            .config_override
            .unwrap_or_else(|| DfpConfig::scaled(encoder.state_dim(), m, self.params.window));
        cfg.state_dim = encoder.state_dim();
        cfg.measurement_dim = m;
        cfg.num_actions = self.params.window;
        cfg.state_module = self.state_module;
        let agent = DfpAgent::new(cfg, self.seed);
        Mrsch {
            agent,
            encoder,
            system: self.system,
            params: self.params,
            goal_mode: self.goal_mode,
            trainer: self.trainer,
            seed: self.seed,
        }
    }
}

/// Result of training over a sequence of job sets.
#[derive(Clone, Debug, Default)]
pub struct TrainOutcome {
    /// Evaluation loss after each episode (the Fig. 4 convergence curve).
    pub episode_losses: Vec<f32>,
    /// Kind of the job set that produced each episode.
    pub episode_kinds: Vec<JobSetKind>,
}

/// Result of validated training ([`Mrsch::train_curriculum_validated`]).
///
/// The paper's §IV-A holds out a two-week validation slice; this trainer
/// uses it for model selection: after every episode the agent is scored
/// on the validation workload and the best-scoring parameters are
/// restored at the end.
#[derive(Clone, Debug, Default)]
pub struct ValidatedOutcome {
    /// Replay loss after each episode.
    pub episode_losses: Vec<f32>,
    /// Validation score after each episode (average slowdown — lower is
    /// better).
    pub val_scores: Vec<f64>,
    /// Episode index whose parameters were kept.
    pub best_episode: usize,
}

/// A ready-to-use MRSch agent bound to one system configuration.
pub struct Mrsch {
    agent: DfpAgent,
    encoder: StateEncoder,
    system: SystemConfig,
    params: SimParams,
    goal_mode: GoalMode,
    trainer: TrainerConfig,
    seed: u64,
}

impl Mrsch {
    /// The wrapped DFP agent.
    pub fn agent(&self) -> &DfpAgent {
        &self.agent
    }

    /// Mutable access to the DFP agent (checkpointing).
    pub fn agent_mut(&mut self) -> &mut DfpAgent {
        &mut self.agent
    }

    /// The system this agent was built for.
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// Simulator parameters (window, backfill).
    pub fn params(&self) -> SimParams {
        self.params
    }

    /// The training-loop configuration.
    pub fn trainer(&self) -> &TrainerConfig {
        &self.trainer
    }

    /// The state encoder (engine internals).
    pub(crate) fn encoder_ref(&self) -> &StateEncoder {
        &self.encoder
    }

    /// The goal mode (engine internals).
    pub(crate) fn goal_mode_ref(&self) -> &GoalMode {
        &self.goal_mode
    }

    /// The builder seed, from which rollout seeds derive.
    pub(crate) fn master_seed(&self) -> u64 {
        self.seed
    }

    /// Train one episode on a concrete job list. Returns the post-episode
    /// evaluation loss (None until replay holds a batch).
    ///
    /// This is the engine's rollout path at `workers = 1`: the episode
    /// runs under a frozen snapshot with a per-episode RNG derived from
    /// the builder seed and the episode counter, then is absorbed and
    /// trained on — so inline and engine-driven episodes are
    /// interchangeable.
    pub fn train_episode(&mut self, jobs: &[Job]) -> Option<f32> {
        let episode = self.agent.episodes();
        let task = RolloutTask {
            spec: mrsch_workload::scenario::EpisodeSpec {
                jobs: jobs.to_vec(),
                events: Vec::new(),
                params: self.params,
                deps: Vec::new(),
            },
            epsilon: self.agent.epsilon(),
            seed: mix_seed(mix_seed(self.seed, 0x5ce7a710), episode),
            goal: None,
        };
        let snap = self.agent.snapshot();
        let (exps, _report) = crate::engine::rollout_episode(
            &snap,
            &self.encoder,
            &self.goal_mode,
            &self.system,
            &mut None,
            &task,
        );
        self.agent.absorb_episode(exps);
        for _ in 0..self.trainer.batches_per_episode {
            self.agent.train_batch();
        }
        self.agent.eval_loss(256)
    }

    /// Train over a scenario [`Curriculum`] with this agent's
    /// [`TrainerConfig`] (rollout workers, round size) — the full
    /// engine: clean-first phases, disruption hardening, parallel
    /// rollouts, deterministic merge.
    pub fn train_with_curriculum(&mut self, curriculum: &Curriculum) -> EngineOutcome {
        TrainingEngine::new(self.trainer.clone()).train(self, curriculum)
    }

    /// Train over a curriculum of job sets materialized through a
    /// workload spec (each trace job set gets the spec's extended
    /// resources before simulation).
    pub fn train_curriculum(
        &mut self,
        sets: &[(JobSetKind, Vec<TraceJob>)],
        spec: &WorkloadSpec,
        seed: u64,
    ) -> TrainOutcome {
        let mut outcome = TrainOutcome::default();
        for (i, (kind, set)) in sets.iter().enumerate() {
            let jobs = spec.build(set, &self.system, seed.wrapping_add(i as u64));
            let loss = self.train_episode(&jobs);
            outcome.episode_losses.push(loss.unwrap_or(f32::NAN));
            outcome.episode_kinds.push(*kind);
        }
        outcome
    }

    /// Train over a curriculum with validation-based model selection:
    /// after every episode the agent is scored (greedy, no learning) on
    /// `val_jobs`; the parameters of the best-scoring episode are
    /// restored before returning. Scoring metric: average slowdown.
    pub fn train_curriculum_validated(
        &mut self,
        sets: &[(JobSetKind, Vec<TraceJob>)],
        spec: &WorkloadSpec,
        val_jobs: &[Job],
        seed: u64,
    ) -> ValidatedOutcome {
        assert!(!val_jobs.is_empty(), "validated training needs validation jobs");
        let mut outcome = ValidatedOutcome::default();
        let mut best: Option<(f64, bytes::Bytes)> = None;
        for (i, (_, set)) in sets.iter().enumerate() {
            let jobs = spec.build(set, &self.system, seed.wrapping_add(i as u64));
            let loss = self.train_episode(&jobs);
            outcome.episode_losses.push(loss.unwrap_or(f32::NAN));
            let score = self.evaluate(val_jobs).avg_slowdown;
            outcome.val_scores.push(score);
            let improved = best.as_ref().map(|(s, _)| score < *s).unwrap_or(true);
            if improved {
                best = Some((score, self.agent.network_mut().save_checkpoint()));
                outcome.best_episode = i;
            }
        }
        if let Some((_, ckpt)) = best {
            self.agent
                .network_mut()
                .load_checkpoint(&ckpt)
                .expect("own checkpoint must load");
        }
        outcome
    }

    /// Consume the handle into an owned, evaluation-only
    /// [`crate::agent::TrainedMrschPolicy`] — the boxed-`Policy` form
    /// used by the `mrsch_eval` registry. The policy acts exactly like
    /// [`Mrsch::evaluate`] does (greedy, same encoder and goal mode) but
    /// is self-contained and reusable across episodes via
    /// [`mrsim::Policy::reset`].
    pub fn into_eval_policy(self) -> crate::agent::TrainedMrschPolicy {
        crate::agent::TrainedMrschPolicy::new(self.agent, self.encoder, self.goal_mode)
    }

    /// Evaluate greedily on a job list, returning the simulator report.
    pub fn evaluate(&mut self, jobs: &[Job]) -> SimReport {
        self.run_eval(jobs, &[], &[]).expect("no disruptions: injection cannot fail").0
    }

    /// Evaluate greedily under a disruption trace (cancellations,
    /// walltime kills, capacity drains/returns) injected before the run.
    /// Errors when an event references a job or resource outside this
    /// job set (e.g. a trace synthesized for a different workload).
    pub fn evaluate_disrupted(
        &mut self,
        jobs: &[Job],
        disruptions: &[mrsim::InjectedEvent],
    ) -> Result<SimReport, mrsim::simulator::SimError> {
        Ok(self.run_eval(jobs, disruptions, &[])?.0)
    }

    /// [`Mrsch::evaluate_disrupted`] plus wait-time-aware cancel replay:
    /// each `(job, delay)` pair cancels the job at `start + delay` of
    /// the *simulated* run (the faithful SWF cancel mapping — see
    /// `mrsim::Simulator::schedule_cancel_after_start`).
    pub fn evaluate_disrupted_replay(
        &mut self,
        jobs: &[Job],
        disruptions: &[mrsim::InjectedEvent],
        relative_cancels: &[(usize, SimTime)],
    ) -> Result<SimReport, mrsim::simulator::SimError> {
        Ok(self.run_eval(jobs, disruptions, relative_cancels)?.0)
    }

    /// Evaluate and also return the per-decision goal log (Figs. 8–9).
    pub fn evaluate_with_goal_log(
        &mut self,
        jobs: &[Job],
    ) -> (SimReport, Vec<(SimTime, Vec<f32>)>) {
        self.run_eval(jobs, &[], &[]).expect("no disruptions: injection cannot fail")
    }

    #[allow(clippy::type_complexity)]
    fn run_eval(
        &mut self,
        jobs: &[Job],
        disruptions: &[mrsim::InjectedEvent],
        relative_cancels: &[(usize, SimTime)],
    ) -> Result<(SimReport, Vec<(SimTime, Vec<f32>)>), mrsim::simulator::SimError> {
        let mut policy = MrschPolicy::new(
            &mut self.agent,
            self.encoder.clone(),
            self.goal_mode.clone(),
            Mode::Evaluate,
        );
        let mut sim = Simulator::new(self.system.clone(), jobs.to_vec(), self.params)
            .expect("jobs must be valid for the system");
        sim.inject_all(disruptions)?;
        for &(id, delay) in relative_cancels {
            sim.schedule_cancel_after_start(id, delay)?;
        }
        let report = sim.run(&mut policy);
        let log = policy.goal_log().to_vec();
        Ok((report, log))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsch_workload::theta::ThetaConfig;

    fn tiny_system() -> SystemConfig {
        SystemConfig::two_resource(16, 8)
    }

    fn tiny_trace(n: usize, seed: u64) -> Vec<TraceJob> {
        ThetaConfig {
            machine_nodes: 16,
            mean_interarrival: 120.0,
            ..ThetaConfig::scaled(n)
        }
        .generate(seed)
    }

    fn tiny_builder() -> MrschBuilder {
        let mut cfg = DfpConfig::scaled(1, 2, 4);
        cfg.state_hidden = vec![32];
        cfg.state_embed = 16;
        cfg.io_hidden = 16;
        cfg.io_embed = 8;
        cfg.stream_hidden = 32;
        cfg.batch_size = 8;
        MrschBuilder::new(tiny_system(), SimParams::new(4, true))
            .seed(3)
            .batches_per_episode(8)
            .dfp_config(cfg)
    }

    #[test]
    fn builder_sizes_config_from_encoder() {
        let mrsch = tiny_builder().build();
        let enc = StateEncoder::with_hour_scale(tiny_system(), 4);
        assert_eq!(mrsch.agent().config().state_dim, enc.state_dim());
        assert_eq!(mrsch.agent().config().num_actions, 4);
        assert_eq!(mrsch.agent().config().measurement_dim, 2);
    }

    #[test]
    fn train_then_evaluate_roundtrip() {
        let mut mrsch = tiny_builder().build();
        let spec = WorkloadSpec::s1();
        let trace = tiny_trace(40, 5);
        let jobs = spec.build(&trace, &tiny_system(), 6);
        let _ = mrsch.train_episode(&jobs);
        assert_eq!(mrsch.agent().episodes(), 1);
        let report = mrsch.evaluate(&jobs);
        assert_eq!(report.jobs_completed, jobs.len());
    }

    #[test]
    fn curriculum_training_produces_losses() {
        let mut mrsch = tiny_builder().build();
        let spec = WorkloadSpec::s1();
        let sets = vec![
            (JobSetKind::Sampled, tiny_trace(25, 7)),
            (JobSetKind::Real, tiny_trace(25, 8)),
            (JobSetKind::Synthetic, tiny_trace(25, 9)),
        ];
        let outcome = mrsch.train_curriculum(&sets, &spec, 10);
        assert_eq!(outcome.episode_losses.len(), 3);
        assert_eq!(outcome.episode_kinds[0], JobSetKind::Sampled);
        // After three episodes replay certainly holds a batch, so at
        // least the later losses are finite.
        assert!(outcome.episode_losses.last().unwrap().is_finite());
    }

    #[test]
    fn goal_log_returned_during_evaluation() {
        let mut mrsch = tiny_builder().build();
        let spec = WorkloadSpec::s4();
        let jobs = spec.build(&tiny_trace(30, 11), &tiny_system(), 12);
        let (report, log) = mrsch.evaluate_with_goal_log(&jobs);
        assert_eq!(report.jobs_completed, jobs.len());
        assert!(!log.is_empty());
        for (_, g) in &log {
            assert_eq!(g.len(), 2);
        }
    }

    #[test]
    fn validated_training_restores_best_parameters() {
        let mut mrsch = tiny_builder().build();
        let spec = WorkloadSpec::s2();
        let sets = vec![
            (JobSetKind::Sampled, tiny_trace(20, 17)),
            (JobSetKind::Real, tiny_trace(20, 18)),
            (JobSetKind::Synthetic, tiny_trace(20, 19)),
        ];
        let val_jobs = spec.build(&tiny_trace(20, 20), &tiny_system(), 21);
        let outcome = mrsch.train_curriculum_validated(&sets, &spec, &val_jobs, 22);
        assert_eq!(outcome.val_scores.len(), 3);
        assert!(outcome.best_episode < 3);
        // The restored model must reproduce the best validation score.
        let restored_score = mrsch.evaluate(&val_jobs).avg_slowdown;
        let best_seen = outcome
            .val_scores
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(
            (restored_score - best_seen).abs() < 1e-9,
            "restored {restored_score} vs best {best_seen}"
        );
    }

    #[test]
    #[should_panic(expected = "needs validation jobs")]
    fn validated_training_requires_val_jobs() {
        let mut mrsch = tiny_builder().build();
        let spec = WorkloadSpec::s1();
        let _ = mrsch.train_curriculum_validated(&[], &spec, &[], 1);
    }

    #[test]
    fn cnn_variant_builds_and_runs() {
        let mut cfg = DfpConfig::scaled(1, 2, 4);
        cfg.state_hidden = vec![32];
        cfg.state_embed = 16;
        cfg.io_hidden = 16;
        cfg.io_embed = 8;
        cfg.stream_hidden = 32;
        cfg.batch_size = 8;
        let mut mrsch = MrschBuilder::new(tiny_system(), SimParams::new(4, true))
            .seed(4)
            .state_module(StateModuleKind::Cnn)
            .dfp_config(cfg)
            .build();
        let spec = WorkloadSpec::s1();
        let jobs = spec.build(&tiny_trace(15, 13), &tiny_system(), 14);
        let report = mrsch.evaluate(&jobs);
        assert_eq!(report.jobs_completed, jobs.len());
    }
}
