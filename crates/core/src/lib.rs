//! **MRSch** — an intelligent multi-resource scheduling agent for HPC,
//! reproducing *MRSch: Multi-Resource Scheduling for HPC* (IEEE CLUSTER
//! 2022).
//!
//! MRSch frames HPC batch scheduling as multi-objective reinforcement
//! learning and solves it with Direct Future Prediction
//! ([`mrsch_dfp`]): at every scheduling instance the agent observes a
//! vector-encoded state (waiting-window jobs + per-unit resource
//! availability, [`encoder`]), the current per-resource utilizations
//! (the *measurement*), and a *goal vector* that dynamically re-weights
//! resources by contention fierceness (Eq. 1, [`goal`]), then selects
//! jobs from the window. Reservation and EASY backfilling (provided by
//! the [`mrsim`] substrate) prevent starvation.
//!
//! # Crate layout
//!
//! * [`encoder`] — the vector state encoding of §III-A / §IV-C,
//! * [`goal`] — dynamic resource prioritizing (Eq. 1) and fixed-goal
//!   modes,
//! * [`agent`] — [`agent::MrschPolicy`], the [`mrsim::Policy`]
//!   implementation wrapping a [`mrsch_dfp::DfpAgent`],
//! * [`training`] — agent construction and the three-phase curriculum
//!   trainer of §III-D,
//! * [`engine`] — the scenario-driven training engine: curriculum
//!   phases rolled out by parallel workers under frozen policy
//!   snapshots and merged deterministically (worker count never changes
//!   results, only wall-clock),
//! * [`explain`] — per-decision explanations (the paper's §VI
//!   interpretability future work).
//!
//! # Quickstart
//!
//! ```
//! use mrsch::prelude::*;
//!
//! // A small two-resource system and workload.
//! let system = SystemConfig::two_resource(32, 16);
//! let trace = ThetaConfig { machine_nodes: 32, ..ThetaConfig::scaled(60) }.generate(1);
//! let jobs = WorkloadSpec::s1().build(&trace, &system, 2);
//!
//! // Build and (briefly) train an MRSch agent, then evaluate it.
//! let params = SimParams::new(5, true);
//! let mut mrsch = MrschBuilder::new(system.clone(), params).seed(7).build();
//! let report = mrsch.evaluate(&jobs);
//! assert_eq!(report.jobs_completed, jobs.len());
//! ```

pub mod agent;
pub mod encoder;
pub mod engine;
pub mod explain;
pub mod goal;
pub mod training;

pub use agent::{Mode, MrschPolicy, TrainedMrschPolicy};
pub use engine::{EngineOutcome, PhaseOutcome, PipelineConfig, TrainerConfig, TrainingEngine};
pub use explain::{Explainer, Explanation};
pub use encoder::StateEncoder;
pub use goal::GoalMode;
pub use training::{Mrsch, MrschBuilder, TrainOutcome, ValidatedOutcome};

/// Convenient re-exports for downstream users and examples.
pub mod prelude {
    pub use crate::agent::{Mode, MrschPolicy, TrainedMrschPolicy};
    pub use crate::encoder::StateEncoder;
    pub use crate::engine::{EngineOutcome, PhaseOutcome, PipelineConfig, TrainerConfig, TrainingEngine};
    pub use crate::goal::GoalMode;
    pub use crate::training::{Mrsch, MrschBuilder, TrainOutcome, ValidatedOutcome};
    pub use mrsch_dfp::{DfpAgent, DfpConfig, StateModuleKind};
    pub use mrsch_workload::disruption::{DisruptionConfig, DisruptionTrace, DrainSpec};
    pub use mrsch_workload::scenario::{
        Curriculum, CurriculumPhase, CurriculumProgress, DagConfig, EpisodeSpec, GoalSchedule,
        JobSource, PlateauRule, Scenario,
    };
    pub use mrsch_workload::suite::WorkloadSpec;
    pub use mrsch_workload::theta::ThetaConfig;
    pub use mrsim::event::{EventKind, InjectedEvent};
    pub use mrsim::job::{Job, JobOutcome};
    pub use mrsim::policy::{HeadOfQueue, Policy};
    pub use mrsim::resources::SystemConfig;
    pub use mrsim::simulator::{SimParams, Simulator};
    pub use mrsim::SimReport;
}
