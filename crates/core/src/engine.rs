//! The scenario-driven training engine: curriculum phases rolled out by
//! parallel workers, merged deterministically into one learner.
//!
//! # Architecture
//!
//! Training proceeds in **rounds**. At the start of a round the learner
//! ([`mrsch_dfp::DfpAgent`]) is frozen into a
//! [`mrsch_dfp::PolicySnapshot`]; the round's episodes (at most
//! [`TrainerConfig::round_size`]) are materialized from the active
//! [`CurriculumPhase`]'s [`Scenario`] and rolled out — each episode on a
//! private `Simulator` (reused across episodes via `Simulator::load`)
//! with a private RNG seeded from the master seed and the global episode
//! index. Workers only decide *where* an episode runs, never *what* it
//! computes: an episode's experience stream is a pure function of
//! `(snapshot, scenario, episode index, master seed)`. The per-worker
//! buffers are then merged into the shared replay **in episode order**,
//! the learner takes `round_size × batches_per_episode` gradient steps,
//! and the next round begins.
//!
//! # Determinism
//!
//! Because rollouts are pure and the merge order is fixed, training with
//! `workers = 1` and `workers = N` produces **bit-identical** network
//! parameters and identical per-episode `SimReport`s for the same master
//! seed — worker count is a wall-clock knob, not a semantics knob (the
//! property `tests/training_determinism.rs` pins). This extends the
//! repo's serial-vs-parallel GEMM guarantee up through the training loop
//! itself.

use crate::encoder::StateEncoder;
use crate::goal::GoalMode;
use crate::training::Mrsch;
use mrsch_dfp::rollout::EpisodeRecorder;
use mrsch_dfp::{Experience, PolicySnapshot};
use mrsch_workload::scenario::{mix_seed, Curriculum, EpisodeSpec};
use mrsim::policy::{Policy, SchedulerView, StepFeedback};
use mrsim::resources::SystemConfig;
use mrsim::simulator::Simulator;
use mrsim::SimReport;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Pipelined bounded-staleness rollout mode.
///
/// In barrier mode every rollout worker stops at the end of a round
/// while the learner absorbs and trains. In pipeline mode workers keep
/// generating episodes against the freshest *published* snapshot while
/// the learner builds the next one, subject to a staleness bound: an
/// episode belonging to round `r` may roll out against any published
/// snapshot version `>= r - max_staleness`.
///
/// `max_staleness = 0` reduces **exactly** to barrier semantics (every
/// round-`r` episode waits for snapshot `r`), and the engine's tests
/// pin that the weights and reports are bit-identical. Any
/// `max_staleness > 0` makes the snapshot choice timing-dependent, so
/// it requires the explicit `deterministic: false` opt-in —
/// [`TrainingEngine::train`] refuses the combination otherwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// How many snapshot versions a rollout may lag behind its round.
    pub max_staleness: usize,
    /// Must be `false` when `max_staleness > 0`: the caller explicitly
    /// acknowledges that stale rollouts are timing-dependent.
    pub deterministic: bool,
}

impl PipelineConfig {
    /// Pipelined machinery, barrier semantics: staleness 0, bit-identical
    /// to the non-pipelined path.
    pub fn lockstep() -> Self {
        Self { max_staleness: 0, deterministic: true }
    }

    /// Bounded-staleness mode: rollouts may lag up to `k` snapshot
    /// versions. For `k > 0` this carries the `deterministic: false`
    /// opt-in the engine requires.
    pub fn bounded_staleness(k: usize) -> Self {
        Self { max_staleness: k, deterministic: k == 0 }
    }
}

/// Training-loop knobs, split out of `MrschBuilder` so the same agent
/// definition can be trained serially, in parallel, or under different
/// synchronization granularities.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Rollout worker threads. `1` is the serial path — more workers
    /// never change the result, only the wall-clock.
    pub workers: usize,
    /// Episodes rolled out under one frozen policy snapshot. This *does*
    /// affect results (it is the learner's synchronization granularity),
    /// so it is a config value — never derived from the worker count.
    pub round_size: usize,
    /// Gradient steps per absorbed episode.
    pub batches_per_episode: usize,
    /// Pipelined rollout/learner overlap. `None` is the classic barrier
    /// loop; `Some(PipelineConfig::lockstep())` runs the pipelined
    /// machinery with bit-identical barrier semantics; bounded staleness
    /// (`deterministic: false`) trades determinism for throughput.
    pub pipeline: Option<PipelineConfig>,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self { workers: 1, round_size: 4, batches_per_episode: 32, pipeline: None }
    }
}

impl TrainerConfig {
    /// Set the worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Set the frozen-snapshot round size.
    pub fn round_size(mut self, n: usize) -> Self {
        self.round_size = n.max(1);
        self
    }

    /// Set the gradient steps per episode.
    pub fn batches_per_episode(mut self, n: usize) -> Self {
        self.batches_per_episode = n;
        self
    }

    /// Enable the pipelined rollout mode.
    pub fn pipeline(mut self, cfg: PipelineConfig) -> Self {
        self.pipeline = Some(cfg);
        self
    }
}

/// Result of training one curriculum phase.
#[derive(Clone, Debug)]
pub struct PhaseOutcome {
    /// The phase's scenario name.
    pub name: String,
    /// Episodes trained in this phase.
    pub episodes: usize,
    /// Replay eval loss after each round (NaN until replay holds data).
    pub round_losses: Vec<f32>,
    /// Per-episode rollout reports, in episode order — disruption
    /// counters included, so a phase's cancel/kill/drain exposure is
    /// auditable.
    pub reports: Vec<SimReport>,
}

/// Result of a whole curriculum run.
#[derive(Clone, Debug, Default)]
pub struct EngineOutcome {
    /// One outcome per curriculum phase, in training order.
    pub phases: Vec<PhaseOutcome>,
}

impl EngineOutcome {
    /// Total episodes trained.
    pub fn total_episodes(&self) -> usize {
        self.phases.iter().map(|p| p.episodes).sum()
    }

    /// All per-episode reports in training order.
    pub fn reports(&self) -> impl Iterator<Item = &SimReport> {
        self.phases.iter().flat_map(|p| p.reports.iter())
    }

    /// The last finite round loss, if any.
    pub fn final_loss(&self) -> Option<f32> {
        self.phases
            .iter()
            .flat_map(|p| p.round_losses.iter())
            .rev()
            .find(|l| l.is_finite())
            .copied()
    }
}

/// The curriculum training engine. Owns only its [`TrainerConfig`]; the
/// agent and curriculum are supplied per run.
#[derive(Clone, Debug, Default)]
pub struct TrainingEngine {
    cfg: TrainerConfig,
}

impl TrainingEngine {
    /// Engine with the given knobs.
    pub fn new(cfg: TrainerConfig) -> Self {
        Self { cfg }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Train `mrsch` over `curriculum`, phase by phase.
    ///
    /// # Panics
    ///
    /// Panics if the config asks for `max_staleness > 0` without the
    /// explicit `deterministic: false` opt-in — stale rollouts are
    /// timing-dependent and must never be enabled by accident.
    pub fn train(&self, mrsch: &mut Mrsch, curriculum: &Curriculum) -> EngineOutcome {
        if let Some(p) = self.cfg.pipeline {
            assert!(
                p.max_staleness == 0 || !p.deterministic,
                "pipeline with max_staleness > 0 is timing-dependent; opt in \
                 explicitly with deterministic: false (PipelineConfig::bounded_staleness)"
            );
        }
        let system = mrsch.system().clone();
        let encoder = mrsch.encoder_ref().clone();
        let master = mix_seed(mrsch.master_seed(), 0x5ce7a710);
        let mut outcome = EngineOutcome::default();
        for phase in curriculum.phases() {
            // The phase-level mode covers fixed schedules exactly; an
            // annealed schedule additionally stamps a per-episode goal
            // onto each rollout task below.
            let goal_mode = match &phase.goal {
                Some(s) => GoalMode::Fixed(s.goal_at(0, phase.episodes)),
                None => mrsch.goal_mode_ref().clone(),
            };
            let phase_out = match self.cfg.pipeline {
                Some(pipe) => self.train_phase_pipelined(
                    mrsch, phase, &goal_mode, &system, &encoder, master, pipe,
                ),
                None => {
                    self.train_phase_barrier(mrsch, phase, &goal_mode, &system, &encoder, master)
                }
            };
            outcome.phases.push(phase_out);
        }
        outcome
    }

    /// The classic round-barrier loop: roll out a round, absorb it, train,
    /// repeat. Deterministic for any worker count.
    fn train_phase_barrier(
        &self,
        mrsch: &mut Mrsch,
        phase: &mrsch_workload::scenario::CurriculumPhase,
        goal_mode: &GoalMode,
        system: &SystemConfig,
        encoder: &StateEncoder,
        master: u64,
    ) -> PhaseOutcome {
        let mut phase_out = PhaseOutcome {
            name: phase.scenario.name.clone(),
            episodes: phase.episodes,
            round_losses: Vec::new(),
            reports: Vec::new(),
        };
        let mut done = 0;
        while done < phase.episodes {
            let count = self.cfg.round_size.max(1).min(phase.episodes - done);
            let base_eps = mrsch.agent().episodes();
            let dfp_cfg = mrsch.agent().config().clone();
            // One frozen snapshot per round, shared by every worker
            // via `Arc` — workers read the same weights through the
            // cache-free inference forward pass, so no per-worker
            // network clone exists.
            let snapshot = Arc::new(mrsch.agent().snapshot());
            // Materialize the round: specs from the scenario (keyed
            // by within-phase index, so a phase's episode stream is
            // independent of what preceded it), ε and RNG seeds from
            // the global episode counter.
            let episodes: Vec<RolloutTask> = (0..count)
                .map(|k| RolloutTask {
                    spec: phase.scenario.materialize(system, (done + k) as u64),
                    epsilon: dfp_cfg.epsilon_at(base_eps + k as u64),
                    seed: mix_seed(master, base_eps + k as u64),
                    goal: episode_goal(phase, done + k),
                })
                .collect();
            let results =
                run_rollouts(self.cfg.workers, &snapshot, encoder, goal_mode, system, &episodes);
            for (exps, report) in results {
                mrsch.agent_mut().absorb_episode(exps);
                phase_out.reports.push(report);
            }
            for _ in 0..count * self.cfg.batches_per_episode {
                mrsch.agent_mut().train_batch();
            }
            phase_out
                .round_losses
                .push(mrsch.agent_mut().eval_loss(256).unwrap_or(f32::NAN));
            done += count;
            if phase.plateau_reached(&phase_out.round_losses) {
                break;
            }
        }
        // Plateau advancement may end a phase early; report what ran.
        phase_out.episodes = done;
        phase_out
    }

    /// The pipelined loop: workers claim global episode indices and roll
    /// them out against the freshest *published* snapshot within the
    /// staleness window, pushing results into a bounded in-order channel;
    /// the learner absorbs each round in episode order, trains, and
    /// publishes the next snapshot without ever stopping the workers.
    ///
    /// Round-`r` episodes wait until a snapshot version `>= r -
    /// max_staleness` is published and then use `min(published, r)` — at
    /// staleness 0 that is *exactly* version `r`, and since the learner
    /// cannot finish round `r` before every round-`r` episode is absorbed,
    /// `published` can never exceed `r` while one is pending. The lockstep
    /// path is therefore bit-identical to the barrier loop, which
    /// `pipelined_lockstep_is_bit_identical_to_barrier` pins.
    #[allow(clippy::too_many_arguments)]
    fn train_phase_pipelined(
        &self,
        mrsch: &mut Mrsch,
        phase: &mrsch_workload::scenario::CurriculumPhase,
        goal_mode: &GoalMode,
        system: &SystemConfig,
        encoder: &StateEncoder,
        master: u64,
        pipe: PipelineConfig,
    ) -> PhaseOutcome {
        let total = phase.episodes;
        let mut phase_out = PhaseOutcome {
            name: phase.scenario.name.clone(),
            episodes: total,
            round_losses: Vec::new(),
            reports: Vec::new(),
        };
        if total == 0 {
            return phase_out;
        }
        let round_size = self.cfg.round_size.max(1);
        let workers = self.cfg.workers.max(1);
        let staleness = pipe.max_staleness;
        let num_rounds = total.div_ceil(round_size);
        // Global episode bookkeeping is captured once up front — the
        // barrier loop re-reads `agent.episodes()` each round, but that
        // counter only ever advances by the absorbed episode count, so
        // `eps0 + k` is the same value it would compute.
        let eps0 = mrsch.agent().episodes();
        let dfp_cfg = mrsch.agent().config().clone();

        // slots[v] holds snapshot version v: slot 0 is the pre-phase
        // snapshot, slot v the weights after training rounds 0..v. Write
        // once (learner), read many (workers) — no lock on the read path.
        let slots: Vec<OnceLock<Arc<PolicySnapshot>>> =
            (0..num_rounds).map(|_| OnceLock::new()).collect();
        slots[0]
            .set(Arc::new(mrsch.agent().snapshot()))
            .unwrap_or_else(|_| unreachable!("slot 0 set exactly once"));

        // Claims are gated on the staleness window, so at most
        // (staleness + 2) rounds of results are ever in flight — the
        // channel bound below can only stall a worker that is already
        // outside the window.
        let cap = (staleness + 2) * round_size;
        let shared = Mutex::new(PipeShared { published: 0, stop: false, buf: BTreeMap::new() });
        let cv = Condvar::new();
        let next_episode = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let slots = &slots;
                let shared = &shared;
                let cv = &cv;
                let next_episode = &next_episode;
                let dfp_cfg = &dfp_cfg;
                scope.spawn(move || {
                    let mut sim: Option<Simulator> = None;
                    loop {
                        let k = next_episode.fetch_add(1, Ordering::SeqCst);
                        if k >= total {
                            break;
                        }
                        let round = k / round_size;
                        let need = round.saturating_sub(staleness);
                        let version = {
                            let mut st = shared.lock().expect("pipeline lock");
                            while st.published < need && !st.stop {
                                st = cv.wait(st).expect("pipeline lock");
                            }
                            if st.stop {
                                break;
                            }
                            st.published.min(round)
                        };
                        let snap =
                            Arc::clone(slots[version].get().expect("published snapshot is set"));
                        let task = RolloutTask {
                            spec: phase.scenario.materialize(system, k as u64),
                            epsilon: dfp_cfg.epsilon_at(eps0 + k as u64),
                            seed: mix_seed(master, eps0 + k as u64),
                            goal: episode_goal(phase, k),
                        };
                        let result =
                            rollout_episode(&snap, encoder, goal_mode, system, &mut sim, &task);
                        let mut st = shared.lock().expect("pipeline lock");
                        while st.buf.len() >= cap && !st.stop {
                            st = cv.wait(st).expect("pipeline lock");
                        }
                        if st.stop {
                            // The learner is done with this phase; the
                            // in-flight result is never absorbed.
                            break;
                        }
                        st.buf.insert(k, result);
                        cv.notify_all();
                    }
                });
            }

            // The learner runs on the scope's own thread: absorb each
            // round in episode order, train, publish the next snapshot.
            let mut done = 0;
            for round in 0..num_rounds {
                let count = round_size.min(total - done);
                for i in 0..count {
                    let idx = done + i;
                    let (exps, report) = {
                        let mut st = shared.lock().expect("pipeline lock");
                        loop {
                            if let Some(r) = st.buf.remove(&idx) {
                                cv.notify_all();
                                break r;
                            }
                            st = cv.wait(st).expect("pipeline lock");
                        }
                    };
                    mrsch.agent_mut().absorb_episode(exps);
                    phase_out.reports.push(report);
                }
                for _ in 0..count * self.cfg.batches_per_episode {
                    mrsch.agent_mut().train_batch();
                }
                phase_out
                    .round_losses
                    .push(mrsch.agent_mut().eval_loss(256).unwrap_or(f32::NAN));
                done += count;
                if done >= total || phase.plateau_reached(&phase_out.round_losses) {
                    let mut st = shared.lock().expect("pipeline lock");
                    st.stop = true;
                    cv.notify_all();
                    break;
                }
                let version = round + 1;
                slots[version]
                    .set(Arc::new(mrsch.agent().snapshot()))
                    .unwrap_or_else(|_| unreachable!("each snapshot published exactly once"));
                let mut st = shared.lock().expect("pipeline lock");
                st.published = version;
                cv.notify_all();
            }
            phase_out.episodes = done;
        });
        phase_out
    }
}

/// Shared learner/worker state for the pipelined loop. One mutex (the
/// critical sections are microseconds against millisecond episodes) and
/// one condvar: waiters re-check their own predicate on every change.
struct PipeShared {
    /// Highest published snapshot version; `slots[0..=published]` are set.
    published: usize,
    /// Set when the phase is over (budget or plateau): workers drain out.
    stop: bool,
    /// Completed episodes keyed by global index — the bounded in-order
    /// channel between workers and learner.
    buf: BTreeMap<usize, (Vec<Experience>, SimReport)>,
}

/// One episode's inputs: everything a worker needs, nothing shared.
pub(crate) struct RolloutTask {
    pub(crate) spec: EpisodeSpec,
    pub(crate) epsilon: f32,
    pub(crate) seed: u64,
    /// Per-episode goal override (annealed schedules); `None` uses the
    /// phase-level mode.
    pub(crate) goal: Option<GoalMode>,
}

/// The per-episode goal for an annealed schedule; `None` when the
/// phase-level mode already covers it (no schedule, or a fixed one).
fn episode_goal(
    phase: &mrsch_workload::scenario::CurriculumPhase,
    episode_in_phase: usize,
) -> Option<GoalMode> {
    match &phase.goal {
        Some(s) if !s.is_fixed() => {
            Some(GoalMode::Fixed(s.goal_at(episode_in_phase, phase.episodes)))
        }
        _ => None,
    }
}

/// Roll out a round of episodes across `workers` threads and return the
/// results **in episode order** regardless of scheduling. All workers
/// read the *same* frozen snapshot through the `Arc` — the per-worker
/// state is just a reusable simulator and a per-episode RNG.
fn run_rollouts(
    workers: usize,
    snapshot: &Arc<PolicySnapshot>,
    encoder: &StateEncoder,
    goal_mode: &GoalMode,
    system: &SystemConfig,
    episodes: &[RolloutTask],
) -> Vec<(Vec<Experience>, SimReport)> {
    let n = episodes.len();
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 {
        let mut sim: Option<Simulator> = None;
        return episodes
            .iter()
            .map(|t| rollout_episode(snapshot, encoder, goal_mode, system, &mut sim, t))
            .collect();
    }
    let mut results: Vec<Option<(Vec<Experience>, SimReport)>> =
        (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let snap = Arc::clone(snapshot);
                scope.spawn(move || {
                    let mut sim: Option<Simulator> = None;
                    let mut out = Vec::new();
                    let mut k = w;
                    while k < n {
                        out.push((
                            k,
                            rollout_episode(
                                &snap,
                                encoder,
                                goal_mode,
                                system,
                                &mut sim,
                                &episodes[k],
                            ),
                        ));
                        k += workers;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (k, r) in h.join().expect("rollout worker panicked") {
                results[k] = Some(r);
            }
        }
    });
    results.into_iter().map(|r| r.expect("every episode rolled out")).collect()
}

/// Roll out one episode under a shared frozen snapshot, reusing the
/// worker's simulator when one exists. Pure in `(snapshot weights, task)`.
pub(crate) fn rollout_episode(
    snap: &PolicySnapshot,
    encoder: &StateEncoder,
    goal_mode: &GoalMode,
    system: &SystemConfig,
    sim: &mut Option<Simulator>,
    task: &RolloutTask,
) -> (Vec<Experience>, SimReport) {
    match sim {
        Some(s) => task.spec.install(s).expect("scenario jobs must fit the system"),
        None => {
            *sim = Some(
                task.spec
                    .simulator(system.clone())
                    .expect("scenario jobs must fit the system"),
            )
        }
    }
    let s = sim.as_mut().expect("just ensured");
    let mut policy = RolloutPolicy {
        snap,
        epsilon: task.epsilon,
        encoder,
        goal_mode: task.goal.as_ref().unwrap_or(goal_mode),
        recorder: EpisodeRecorder::new(),
        rng: StdRng::seed_from_u64(task.seed),
        awaiting: false,
    };
    let report = s.run(&mut policy);
    let RolloutPolicy { snap, mut recorder, .. } = policy;
    let cfg = snap.config();
    let exps = recorder.finish(&cfg.offsets, cfg.measurement_dim);
    (exps, report)
}

/// The worker-side policy: acts ε-greedily through a *shared* frozen
/// snapshot with a private RNG and per-episode ε, and records the
/// episode for later absorption — the detached sibling of `MrschPolicy`
/// in training mode.
struct RolloutPolicy<'a> {
    snap: &'a PolicySnapshot,
    epsilon: f32,
    encoder: &'a StateEncoder,
    goal_mode: &'a GoalMode,
    recorder: EpisodeRecorder,
    rng: StdRng,
    awaiting: bool,
}

impl Policy for RolloutPolicy<'_> {
    fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
        if view.window.is_empty() {
            return None;
        }
        let state = self.encoder.encode(view);
        let meas: Vec<f32> = view.measurement().iter().map(|&x| x as f32).collect();
        let goal = self.goal_mode.goal_for(view);
        let valid = self.encoder.valid_actions(view);
        let action = self.snap.act_with_epsilon(
            self.epsilon,
            &state,
            &meas,
            &goal,
            &valid,
            true,
            &mut self.rng,
        )?;
        self.recorder.record_step(&state, &meas, &goal, action);
        self.awaiting = true;
        Some(action)
    }

    fn feedback(&mut self, fb: &StepFeedback) {
        if std::mem::take(&mut self.awaiting) {
            let meas_after: Vec<f32> = fb.measurement.iter().map(|&x| x as f32).collect();
            self.recorder.record_outcome(&meas_after);
        }
    }

    fn name(&self) -> &'static str {
        "mrsch-rollout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::MrschBuilder;
    use mrsch_dfp::DfpConfig;
    use mrsch_workload::scenario::{CurriculumPhase, JobSource, Scenario};
    use mrsch_workload::{DisruptionConfig, ThetaConfig, WorkloadSpec};
    use mrsim::simulator::SimParams;

    fn tiny_system() -> SystemConfig {
        SystemConfig::two_resource(16, 8)
    }

    fn tiny_scenario(n: usize, seed: u64) -> Scenario {
        Scenario::new(
            "clean",
            JobSource::Theta(ThetaConfig {
                machine_nodes: 16,
                mean_interarrival: 120.0,
                ..ThetaConfig::scaled(n)
            }),
            WorkloadSpec::s1(),
            SimParams::new(4, true),
        )
        .with_seed(seed)
    }

    fn tiny_mrsch(seed: u64, trainer: TrainerConfig) -> crate::training::Mrsch {
        let mut cfg = DfpConfig::scaled(1, 2, 4);
        cfg.state_hidden = vec![32];
        cfg.state_embed = 16;
        cfg.io_hidden = 16;
        cfg.io_embed = 8;
        cfg.stream_hidden = 32;
        cfg.batch_size = 8;
        MrschBuilder::new(tiny_system(), SimParams::new(4, true))
            .seed(seed)
            .trainer(trainer)
            .dfp_config(cfg)
            .build()
    }

    fn tiny_curriculum(per_phase: usize) -> Curriculum {
        Curriculum::disruption_hardening(
            tiny_scenario(20, 5),
            DisruptionConfig { cancel_fraction: 0.3, ..Default::default() },
            DisruptionConfig::node_drain(0.25, 600, 2400),
            per_phase,
        )
    }

    #[test]
    fn engine_trains_through_all_phases() {
        let trainer = TrainerConfig::default().round_size(2).batches_per_episode(4);
        let mut mrsch = tiny_mrsch(3, trainer.clone());
        let outcome = TrainingEngine::new(trainer).train(&mut mrsch, &tiny_curriculum(2));
        assert_eq!(outcome.phases.len(), 3);
        assert_eq!(outcome.total_episodes(), 6);
        assert_eq!(mrsch.agent().episodes(), 6);
        assert!(mrsch.agent().train_steps() > 0);
        assert!(outcome.final_loss().is_some());
        // Phase names follow the hardening order.
        let names: Vec<&str> = outcome.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["clean", "cancel_heavy", "drain_heavy"]);
        // Disrupted phases actually saw disruptions.
        let cancels: u64 = outcome.phases[1].reports.iter().map(|r| r.jobs_cancelled as u64).sum();
        assert!(cancels > 0, "cancel-heavy phase must cancel jobs");
        let lost: f64 = outcome.phases[2]
            .reports
            .iter()
            .map(|r| r.capacity_lost_unit_seconds[0])
            .sum();
        assert!(lost > 0.0, "drain-heavy phase must lose node-seconds");
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let curriculum = tiny_curriculum(2);
        let run = |workers: usize| {
            let trainer = TrainerConfig::default()
                .workers(workers)
                .round_size(2)
                .batches_per_episode(4);
            let mut mrsch = tiny_mrsch(9, trainer.clone());
            let outcome = TrainingEngine::new(trainer).train(&mut mrsch, &curriculum);
            let ckpt = mrsch.agent_mut().network_mut().save_checkpoint();
            (outcome, ckpt)
        };
        let (o1, c1) = run(1);
        let (o3, c3) = run(3);
        assert_eq!(c1, c3, "trained weights must be bit-identical across worker counts");
        for (a, b) in o1.reports().zip(o3.reports()) {
            assert_eq!(a, b, "per-episode reports must match");
        }
        assert_eq!(
            o1.phases.iter().map(|p| &p.round_losses).collect::<Vec<_>>(),
            o3.phases.iter().map(|p| &p.round_losses).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn pipelined_lockstep_is_bit_identical_to_barrier() {
        // The ISSUE-level contract: pipelined mode at max_staleness = 0
        // reduces *exactly* to the barrier loop — weights, per-episode
        // SimReports, and round losses all bit-identical — for 1, 2, and
        // 4 workers.
        let curriculum = tiny_curriculum(3);
        let run = |workers: usize, pipeline: Option<PipelineConfig>| {
            let mut trainer = TrainerConfig::default()
                .workers(workers)
                .round_size(2)
                .batches_per_episode(4);
            trainer.pipeline = pipeline;
            let mut mrsch = tiny_mrsch(11, trainer.clone());
            let outcome = TrainingEngine::new(trainer).train(&mut mrsch, &curriculum);
            let ckpt = mrsch.agent_mut().network_mut().save_checkpoint();
            (outcome, ckpt)
        };
        let (barrier_out, barrier_ckpt) = run(1, None);
        for workers in [1, 2, 4] {
            let (pipe_out, pipe_ckpt) = run(workers, Some(PipelineConfig::lockstep()));
            assert_eq!(
                barrier_ckpt, pipe_ckpt,
                "lockstep pipeline weights must be bit-identical to barrier ({workers} workers)"
            );
            for (a, b) in barrier_out.reports().zip(pipe_out.reports()) {
                assert_eq!(a, b, "per-episode reports must match ({workers} workers)");
            }
            assert_eq!(
                barrier_out.phases.iter().map(|p| &p.round_losses).collect::<Vec<_>>(),
                pipe_out.phases.iter().map(|p| &p.round_losses).collect::<Vec<_>>(),
                "round losses must match ({workers} workers)"
            );
            assert_eq!(barrier_out.total_episodes(), pipe_out.total_episodes());
        }
    }

    #[test]
    fn pipelined_bounded_staleness_trains_the_full_budget() {
        // Staleness > 0 is timing-dependent in *which* snapshot a rollout
        // sees, but never in how much work runs: every budgeted episode
        // is absorbed, in order, with the full gradient-step cadence.
        let trainer = TrainerConfig::default()
            .workers(2)
            .round_size(2)
            .batches_per_episode(4)
            .pipeline(PipelineConfig::bounded_staleness(2));
        let mut mrsch = tiny_mrsch(13, trainer.clone());
        let outcome = TrainingEngine::new(trainer).train(&mut mrsch, &tiny_curriculum(4));
        assert_eq!(outcome.total_episodes(), 12);
        assert_eq!(mrsch.agent().episodes(), 12);
        assert_eq!(outcome.reports().count(), 12);
        assert!(mrsch.agent().train_steps() > 0);
        assert!(outcome.final_loss().is_some());
    }

    #[test]
    fn pipelined_lockstep_respects_plateau_rule() {
        let trainer = TrainerConfig::default()
            .round_size(1)
            .batches_per_episode(4)
            .pipeline(PipelineConfig::lockstep());
        let budget = 6;
        let phase = CurriculumPhase::new(tiny_scenario(12, 5), budget)
            .advance_on_plateau(2, f32::INFINITY);
        let curriculum = Curriculum::new().phase(phase);
        let mut mrsch = tiny_mrsch(7, trainer.clone());
        let outcome = TrainingEngine::new(trainer).train(&mut mrsch, &curriculum);
        assert!(
            outcome.phases[0].episodes < budget,
            "pipelined phase must end early on plateau, ran {}",
            outcome.phases[0].episodes
        );
        assert_eq!(outcome.phases[0].reports.len(), outcome.phases[0].episodes);
        assert_eq!(mrsch.agent().episodes() as usize, outcome.phases[0].episodes);
    }

    #[test]
    #[should_panic(expected = "deterministic: false")]
    fn staleness_requires_explicit_nondeterminism_opt_in() {
        let trainer = TrainerConfig::default()
            .pipeline(PipelineConfig { max_staleness: 2, deterministic: true });
        let mut mrsch = tiny_mrsch(3, trainer.clone());
        TrainingEngine::new(trainer).train(&mut mrsch, &tiny_curriculum(1));
    }

    #[test]
    fn plateau_rule_can_end_a_phase_early() {
        // An enormous tolerance turns "plateau" into "first moment the
        // window is full of finite losses", so the phase must stop at
        // exactly `round_size * window` episodes instead of its budget.
        let trainer = TrainerConfig::default().round_size(1).batches_per_episode(4);
        let budget = 6;
        let phase = CurriculumPhase::new(tiny_scenario(12, 5), budget)
            .advance_on_plateau(2, f32::INFINITY);
        let curriculum = Curriculum::new().phase(phase.clone());
        let mut mrsch = tiny_mrsch(7, trainer.clone());
        let outcome = TrainingEngine::new(trainer.clone()).train(&mut mrsch, &curriculum);
        assert!(
            outcome.phases[0].episodes < budget,
            "phase must end early, ran {}",
            outcome.phases[0].episodes
        );
        assert_eq!(outcome.phases[0].reports.len(), outcome.phases[0].episodes);
        assert_eq!(mrsch.agent().episodes() as usize, outcome.phases[0].episodes);
        // Without the rule the same setup runs the full budget.
        let full = Curriculum::new().phase(CurriculumPhase::new(tiny_scenario(12, 5), budget));
        let mut mrsch2 = tiny_mrsch(7, trainer.clone());
        let out2 = TrainingEngine::new(trainer).train(&mut mrsch2, &full);
        assert_eq!(out2.phases[0].episodes, budget);
    }

    #[test]
    fn goal_override_forces_fixed_goal() {
        // A fixed-goal phase must run (goal_for asserts the length), and
        // the run must stay deterministic.
        let scenario = tiny_scenario(12, 8);
        let curriculum = Curriculum::new()
            .phase(CurriculumPhase::new(scenario, 2).with_goal(vec![0.5, 0.5]));
        let trainer = TrainerConfig::default().round_size(2).batches_per_episode(2);
        let mut mrsch = tiny_mrsch(4, trainer.clone());
        let outcome = TrainingEngine::new(trainer).train(&mut mrsch, &curriculum);
        assert_eq!(outcome.total_episodes(), 2);
        assert_eq!(mrsch.agent().episodes(), 2);
    }
}
