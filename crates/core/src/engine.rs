//! The scenario-driven training engine: curriculum phases rolled out by
//! parallel workers, merged deterministically into one learner.
//!
//! # Architecture
//!
//! Training proceeds in **rounds**. At the start of a round the learner
//! ([`mrsch_dfp::DfpAgent`]) is frozen into a
//! [`mrsch_dfp::PolicySnapshot`]; the round's episodes (at most
//! [`TrainerConfig::round_size`]) are materialized from the active
//! [`CurriculumPhase`]'s [`Scenario`] and rolled out — each episode on a
//! private `Simulator` (reused across episodes via `Simulator::load`)
//! with a private RNG seeded from the master seed and the global episode
//! index. Workers only decide *where* an episode runs, never *what* it
//! computes: an episode's experience stream is a pure function of
//! `(snapshot, scenario, episode index, master seed)`. The per-worker
//! buffers are then merged into the shared replay **in episode order**,
//! the learner takes `round_size × batches_per_episode` gradient steps,
//! and the next round begins.
//!
//! # Determinism
//!
//! Because rollouts are pure and the merge order is fixed, training with
//! `workers = 1` and `workers = N` produces **bit-identical** network
//! parameters and identical per-episode `SimReport`s for the same master
//! seed — worker count is a wall-clock knob, not a semantics knob (the
//! property `tests/training_determinism.rs` pins). This extends the
//! repo's serial-vs-parallel GEMM guarantee up through the training loop
//! itself.

use crate::encoder::StateEncoder;
use crate::goal::GoalMode;
use crate::training::Mrsch;
use mrsch_dfp::rollout::EpisodeRecorder;
use mrsch_dfp::{Experience, PolicySnapshot};
use mrsch_workload::scenario::{mix_seed, Curriculum, EpisodeSpec};
use mrsim::policy::{Policy, SchedulerView, StepFeedback};
use mrsim::resources::SystemConfig;
use mrsim::simulator::Simulator;
use mrsim::SimReport;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Training-loop knobs, split out of `MrschBuilder` so the same agent
/// definition can be trained serially, in parallel, or under different
/// synchronization granularities.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Rollout worker threads. `1` is the serial path — more workers
    /// never change the result, only the wall-clock.
    pub workers: usize,
    /// Episodes rolled out under one frozen policy snapshot. This *does*
    /// affect results (it is the learner's synchronization granularity),
    /// so it is a config value — never derived from the worker count.
    pub round_size: usize,
    /// Gradient steps per absorbed episode.
    pub batches_per_episode: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self { workers: 1, round_size: 4, batches_per_episode: 32 }
    }
}

impl TrainerConfig {
    /// Set the worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Set the frozen-snapshot round size.
    pub fn round_size(mut self, n: usize) -> Self {
        self.round_size = n.max(1);
        self
    }

    /// Set the gradient steps per episode.
    pub fn batches_per_episode(mut self, n: usize) -> Self {
        self.batches_per_episode = n;
        self
    }
}

/// Result of training one curriculum phase.
#[derive(Clone, Debug)]
pub struct PhaseOutcome {
    /// The phase's scenario name.
    pub name: String,
    /// Episodes trained in this phase.
    pub episodes: usize,
    /// Replay eval loss after each round (NaN until replay holds data).
    pub round_losses: Vec<f32>,
    /// Per-episode rollout reports, in episode order — disruption
    /// counters included, so a phase's cancel/kill/drain exposure is
    /// auditable.
    pub reports: Vec<SimReport>,
}

/// Result of a whole curriculum run.
#[derive(Clone, Debug, Default)]
pub struct EngineOutcome {
    /// One outcome per curriculum phase, in training order.
    pub phases: Vec<PhaseOutcome>,
}

impl EngineOutcome {
    /// Total episodes trained.
    pub fn total_episodes(&self) -> usize {
        self.phases.iter().map(|p| p.episodes).sum()
    }

    /// All per-episode reports in training order.
    pub fn reports(&self) -> impl Iterator<Item = &SimReport> {
        self.phases.iter().flat_map(|p| p.reports.iter())
    }

    /// The last finite round loss, if any.
    pub fn final_loss(&self) -> Option<f32> {
        self.phases
            .iter()
            .flat_map(|p| p.round_losses.iter())
            .rev()
            .find(|l| l.is_finite())
            .copied()
    }
}

/// The curriculum training engine. Owns only its [`TrainerConfig`]; the
/// agent and curriculum are supplied per run.
#[derive(Clone, Debug, Default)]
pub struct TrainingEngine {
    cfg: TrainerConfig,
}

impl TrainingEngine {
    /// Engine with the given knobs.
    pub fn new(cfg: TrainerConfig) -> Self {
        Self { cfg }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Train `mrsch` over `curriculum`, phase by phase.
    pub fn train(&self, mrsch: &mut Mrsch, curriculum: &Curriculum) -> EngineOutcome {
        let system = mrsch.system().clone();
        let encoder = mrsch.encoder_ref().clone();
        let master = mix_seed(mrsch.master_seed(), 0x5ce7a710);
        let mut outcome = EngineOutcome::default();
        for phase in curriculum.phases() {
            let goal_mode = match &phase.goal_override {
                Some(g) => GoalMode::Fixed(g.clone()),
                None => mrsch.goal_mode_ref().clone(),
            };
            let mut phase_out = PhaseOutcome {
                name: phase.scenario.name.clone(),
                episodes: phase.episodes,
                round_losses: Vec::new(),
                reports: Vec::new(),
            };
            let mut done = 0;
            while done < phase.episodes {
                let count = self.cfg.round_size.max(1).min(phase.episodes - done);
                let base_eps = mrsch.agent().episodes();
                let dfp_cfg = mrsch.agent().config().clone();
                // One frozen snapshot per round, shared by every worker
                // via `Arc` — workers read the same weights through the
                // cache-free inference forward pass, so no per-worker
                // network clone exists.
                let snapshot = Arc::new(mrsch.agent().snapshot());
                // Materialize the round: specs from the scenario (keyed
                // by within-phase index, so a phase's episode stream is
                // independent of what preceded it), ε and RNG seeds from
                // the global episode counter.
                let episodes: Vec<RolloutTask> = (0..count)
                    .map(|k| RolloutTask {
                        spec: phase.scenario.materialize(&system, (done + k) as u64),
                        epsilon: dfp_cfg.epsilon_at(base_eps + k as u64),
                        seed: mix_seed(master, base_eps + k as u64),
                    })
                    .collect();
                let results =
                    run_rollouts(self.cfg.workers, &snapshot, &encoder, &goal_mode, &system, &episodes);
                for (exps, report) in results {
                    mrsch.agent_mut().absorb_episode(exps);
                    phase_out.reports.push(report);
                }
                for _ in 0..count * self.cfg.batches_per_episode {
                    mrsch.agent_mut().train_batch();
                }
                phase_out
                    .round_losses
                    .push(mrsch.agent_mut().eval_loss(256).unwrap_or(f32::NAN));
                done += count;
                if phase.plateau_reached(&phase_out.round_losses) {
                    break;
                }
            }
            // Plateau advancement may end a phase early; report what ran.
            phase_out.episodes = done;
            outcome.phases.push(phase_out);
        }
        outcome
    }
}

/// One episode's inputs: everything a worker needs, nothing shared.
pub(crate) struct RolloutTask {
    pub(crate) spec: EpisodeSpec,
    pub(crate) epsilon: f32,
    pub(crate) seed: u64,
}

/// Roll out a round of episodes across `workers` threads and return the
/// results **in episode order** regardless of scheduling. All workers
/// read the *same* frozen snapshot through the `Arc` — the per-worker
/// state is just a reusable simulator and a per-episode RNG.
fn run_rollouts(
    workers: usize,
    snapshot: &Arc<PolicySnapshot>,
    encoder: &StateEncoder,
    goal_mode: &GoalMode,
    system: &SystemConfig,
    episodes: &[RolloutTask],
) -> Vec<(Vec<Experience>, SimReport)> {
    let n = episodes.len();
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 {
        let mut sim: Option<Simulator> = None;
        return episodes
            .iter()
            .map(|t| rollout_episode(snapshot, encoder, goal_mode, system, &mut sim, t))
            .collect();
    }
    let mut results: Vec<Option<(Vec<Experience>, SimReport)>> =
        (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let snap = Arc::clone(snapshot);
                scope.spawn(move || {
                    let mut sim: Option<Simulator> = None;
                    let mut out = Vec::new();
                    let mut k = w;
                    while k < n {
                        out.push((
                            k,
                            rollout_episode(
                                &snap,
                                encoder,
                                goal_mode,
                                system,
                                &mut sim,
                                &episodes[k],
                            ),
                        ));
                        k += workers;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (k, r) in h.join().expect("rollout worker panicked") {
                results[k] = Some(r);
            }
        }
    });
    results.into_iter().map(|r| r.expect("every episode rolled out")).collect()
}

/// Roll out one episode under a shared frozen snapshot, reusing the
/// worker's simulator when one exists. Pure in `(snapshot weights, task)`.
pub(crate) fn rollout_episode(
    snap: &PolicySnapshot,
    encoder: &StateEncoder,
    goal_mode: &GoalMode,
    system: &SystemConfig,
    sim: &mut Option<Simulator>,
    task: &RolloutTask,
) -> (Vec<Experience>, SimReport) {
    match sim {
        Some(s) => s
            .load(task.spec.jobs.clone(), task.spec.params)
            .expect("scenario jobs must fit the system"),
        None => {
            *sim = Some(
                Simulator::new(system.clone(), task.spec.jobs.clone(), task.spec.params)
                    .expect("scenario jobs must fit the system"),
            )
        }
    }
    let s = sim.as_mut().expect("just ensured");
    s.inject_all(&task.spec.events).expect("scenario events reference this job set");
    let mut policy = RolloutPolicy {
        snap,
        epsilon: task.epsilon,
        encoder,
        goal_mode,
        recorder: EpisodeRecorder::new(),
        rng: StdRng::seed_from_u64(task.seed),
        awaiting: false,
    };
    let report = s.run(&mut policy);
    let RolloutPolicy { snap, mut recorder, .. } = policy;
    let cfg = snap.config();
    let exps = recorder.finish(&cfg.offsets, cfg.measurement_dim);
    (exps, report)
}

/// The worker-side policy: acts ε-greedily through a *shared* frozen
/// snapshot with a private RNG and per-episode ε, and records the
/// episode for later absorption — the detached sibling of `MrschPolicy`
/// in training mode.
struct RolloutPolicy<'a> {
    snap: &'a PolicySnapshot,
    epsilon: f32,
    encoder: &'a StateEncoder,
    goal_mode: &'a GoalMode,
    recorder: EpisodeRecorder,
    rng: StdRng,
    awaiting: bool,
}

impl Policy for RolloutPolicy<'_> {
    fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
        if view.window.is_empty() {
            return None;
        }
        let state = self.encoder.encode(view);
        let meas: Vec<f32> = view.measurement().iter().map(|&x| x as f32).collect();
        let goal = self.goal_mode.goal_for(view);
        let valid = self.encoder.valid_actions(view);
        let action = self.snap.act_with_epsilon(
            self.epsilon,
            &state,
            &meas,
            &goal,
            &valid,
            true,
            &mut self.rng,
        )?;
        self.recorder.record_step(&state, &meas, &goal, action);
        self.awaiting = true;
        Some(action)
    }

    fn feedback(&mut self, fb: &StepFeedback) {
        if std::mem::take(&mut self.awaiting) {
            let meas_after: Vec<f32> = fb.measurement.iter().map(|&x| x as f32).collect();
            self.recorder.record_outcome(&meas_after);
        }
    }

    fn name(&self) -> &'static str {
        "mrsch-rollout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::MrschBuilder;
    use mrsch_dfp::DfpConfig;
    use mrsch_workload::scenario::{CurriculumPhase, JobSource, Scenario};
    use mrsch_workload::{DisruptionConfig, ThetaConfig, WorkloadSpec};
    use mrsim::simulator::SimParams;

    fn tiny_system() -> SystemConfig {
        SystemConfig::two_resource(16, 8)
    }

    fn tiny_scenario(n: usize, seed: u64) -> Scenario {
        Scenario::new(
            "clean",
            JobSource::Theta(ThetaConfig {
                machine_nodes: 16,
                mean_interarrival: 120.0,
                ..ThetaConfig::scaled(n)
            }),
            WorkloadSpec::s1(),
            SimParams::new(4, true),
        )
        .with_seed(seed)
    }

    fn tiny_mrsch(seed: u64, trainer: TrainerConfig) -> crate::training::Mrsch {
        let mut cfg = DfpConfig::scaled(1, 2, 4);
        cfg.state_hidden = vec![32];
        cfg.state_embed = 16;
        cfg.io_hidden = 16;
        cfg.io_embed = 8;
        cfg.stream_hidden = 32;
        cfg.batch_size = 8;
        MrschBuilder::new(tiny_system(), SimParams::new(4, true))
            .seed(seed)
            .trainer(trainer)
            .dfp_config(cfg)
            .build()
    }

    fn tiny_curriculum(per_phase: usize) -> Curriculum {
        Curriculum::disruption_hardening(
            tiny_scenario(20, 5),
            DisruptionConfig { cancel_fraction: 0.3, ..Default::default() },
            DisruptionConfig::node_drain(0.25, 600, 2400),
            per_phase,
        )
    }

    #[test]
    fn engine_trains_through_all_phases() {
        let trainer = TrainerConfig::default().round_size(2).batches_per_episode(4);
        let mut mrsch = tiny_mrsch(3, trainer.clone());
        let outcome = TrainingEngine::new(trainer).train(&mut mrsch, &tiny_curriculum(2));
        assert_eq!(outcome.phases.len(), 3);
        assert_eq!(outcome.total_episodes(), 6);
        assert_eq!(mrsch.agent().episodes(), 6);
        assert!(mrsch.agent().train_steps() > 0);
        assert!(outcome.final_loss().is_some());
        // Phase names follow the hardening order.
        let names: Vec<&str> = outcome.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["clean", "cancel_heavy", "drain_heavy"]);
        // Disrupted phases actually saw disruptions.
        let cancels: u64 = outcome.phases[1].reports.iter().map(|r| r.jobs_cancelled as u64).sum();
        assert!(cancels > 0, "cancel-heavy phase must cancel jobs");
        let lost: f64 = outcome.phases[2]
            .reports
            .iter()
            .map(|r| r.capacity_lost_unit_seconds[0])
            .sum();
        assert!(lost > 0.0, "drain-heavy phase must lose node-seconds");
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let curriculum = tiny_curriculum(2);
        let run = |workers: usize| {
            let trainer = TrainerConfig::default()
                .workers(workers)
                .round_size(2)
                .batches_per_episode(4);
            let mut mrsch = tiny_mrsch(9, trainer.clone());
            let outcome = TrainingEngine::new(trainer).train(&mut mrsch, &curriculum);
            let ckpt = mrsch.agent_mut().network_mut().save_checkpoint();
            (outcome, ckpt)
        };
        let (o1, c1) = run(1);
        let (o3, c3) = run(3);
        assert_eq!(c1, c3, "trained weights must be bit-identical across worker counts");
        for (a, b) in o1.reports().zip(o3.reports()) {
            assert_eq!(a, b, "per-episode reports must match");
        }
        assert_eq!(
            o1.phases.iter().map(|p| &p.round_losses).collect::<Vec<_>>(),
            o3.phases.iter().map(|p| &p.round_losses).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn plateau_rule_can_end_a_phase_early() {
        // An enormous tolerance turns "plateau" into "first moment the
        // window is full of finite losses", so the phase must stop at
        // exactly `round_size * window` episodes instead of its budget.
        let trainer = TrainerConfig::default().round_size(1).batches_per_episode(4);
        let budget = 6;
        let phase = CurriculumPhase::new(tiny_scenario(12, 5), budget)
            .advance_on_plateau(2, f32::INFINITY);
        let curriculum = Curriculum::new().phase(phase.clone());
        let mut mrsch = tiny_mrsch(7, trainer.clone());
        let outcome = TrainingEngine::new(trainer.clone()).train(&mut mrsch, &curriculum);
        assert!(
            outcome.phases[0].episodes < budget,
            "phase must end early, ran {}",
            outcome.phases[0].episodes
        );
        assert_eq!(outcome.phases[0].reports.len(), outcome.phases[0].episodes);
        assert_eq!(mrsch.agent().episodes() as usize, outcome.phases[0].episodes);
        // Without the rule the same setup runs the full budget.
        let full = Curriculum::new().phase(CurriculumPhase::new(tiny_scenario(12, 5), budget));
        let mut mrsch2 = tiny_mrsch(7, trainer.clone());
        let out2 = TrainingEngine::new(trainer).train(&mut mrsch2, &full);
        assert_eq!(out2.phases[0].episodes, budget);
    }

    #[test]
    fn goal_override_forces_fixed_goal() {
        // A fixed-goal phase must run (goal_for asserts the length), and
        // the run must stay deterministic.
        let scenario = tiny_scenario(12, 8);
        let curriculum = Curriculum::new()
            .phase(CurriculumPhase::new(scenario, 2).with_goal(vec![0.5, 0.5]));
        let trainer = TrainerConfig::default().round_size(2).batches_per_episode(2);
        let mut mrsch = tiny_mrsch(4, trainer.clone());
        let outcome = TrainingEngine::new(trainer).train(&mut mrsch, &curriculum);
        assert_eq!(outcome.total_episodes(), 2);
        assert_eq!(mrsch.agent().episodes(), 2);
    }
}
