//! [`MrschPolicy`]: the [`mrsim::Policy`] implementation that puts the
//! DFP agent in the scheduler's seat (Fig. 2 of the paper).
//!
//! In **training mode** the policy explores ε-greedily, records every
//! decision, feeds post-action measurements back to the agent, and closes
//! the DFP episode when the simulation ends. In **evaluation mode** it
//! acts greedily and additionally logs the goal vector at every decision
//! — the `rBB` time series plotted in Figs. 8 and 9.
//!
//! Training mode is the *inline* path: the agent's own persistent RNG
//! drives exploration, which is what the paper's setup describes and
//! what custom training loops over a borrowed agent need. The engine
//! path (`Mrsch::train_episode` / `mrsch::engine`) instead rolls out
//! frozen snapshots with per-episode seeded RNGs so episodes can run on
//! worker threads; both paths build experiences through the same
//! `mrsch_dfp::EpisodeRecorder` and act through the same shared
//! decision rule (`mrsch_dfp::rollout::act_epsilon_greedy`), so they
//! cannot drift — they differ only in where exploration randomness
//! comes from.

use crate::encoder::StateEncoder;
use crate::goal::GoalMode;
use mrsch_dfp::DfpAgent;
use mrsim::metrics::SimReport;
use mrsim::policy::{Policy, SchedulerView, StepFeedback};
use mrsim::SimTime;

/// Bookkeeping for a decision awaiting its feedback (training mode).
type PendingDecision = (Vec<f32>, Vec<f32>, Vec<f32>, usize);

/// Operating mode of the policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Explore, record experiences, close episodes.
    Train,
    /// Act greedily; no learning side effects.
    Evaluate,
}

/// The MRSch scheduling policy.
pub struct MrschPolicy<'a> {
    agent: &'a mut DfpAgent,
    encoder: StateEncoder,
    goal_mode: GoalMode,
    mode: Mode,
    /// Per-decision goal log: `(time, goal)`.
    goal_log: Vec<(SimTime, Vec<f32>)>,
    /// Cached encoding of the decision we just made (training bookkeeping).
    last: Option<PendingDecision>,
    /// Gradient steps to run after each episode in training mode.
    batches_per_episode: usize,
    /// Losses observed from those post-episode gradient steps.
    losses: Vec<f32>,
}

impl<'a> MrschPolicy<'a> {
    /// Wrap a DFP agent for one simulation run.
    pub fn new(
        agent: &'a mut DfpAgent,
        encoder: StateEncoder,
        goal_mode: GoalMode,
        mode: Mode,
    ) -> Self {
        assert_eq!(
            agent.config().state_dim,
            encoder.state_dim(),
            "agent and encoder disagree on state dimension"
        );
        assert_eq!(
            agent.config().num_actions,
            encoder.window(),
            "agent and encoder disagree on window size"
        );
        Self {
            agent,
            encoder,
            goal_mode,
            mode,
            goal_log: Vec::new(),
            last: None,
            batches_per_episode: 32,
            losses: Vec::new(),
        }
    }

    /// Override the number of gradient steps run at each episode end.
    pub fn with_batches_per_episode(mut self, n: usize) -> Self {
        self.batches_per_episode = n;
        self
    }

    /// The goal vectors logged at each decision (Figs. 8–9's `rBB` is
    /// element 1 of each entry in a two-resource system).
    pub fn goal_log(&self) -> &[(SimTime, Vec<f32>)] {
        &self.goal_log
    }

    /// Losses from the post-episode training batches.
    pub fn losses(&self) -> &[f32] {
        &self.losses
    }
}

impl Policy for MrschPolicy<'_> {
    fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
        if view.window.is_empty() {
            return None;
        }
        let state = self.encoder.encode(view);
        let meas: Vec<f32> = view.measurement().iter().map(|&x| x as f32).collect();
        let goal = self.goal_mode.goal_for(view);
        let valid = self.encoder.valid_actions(view);
        self.goal_log.push((view.now, goal.clone()));
        let explore = self.mode == Mode::Train;
        let action = self.agent.act(&state, &meas, &goal, &valid, explore)?;
        if self.mode == Mode::Train {
            self.agent.record_step(&state, &meas, &goal, action);
            self.last = Some((state, meas, goal, action));
        }
        Some(action)
    }

    fn feedback(&mut self, fb: &StepFeedback) {
        if self.mode == Mode::Train && self.last.take().is_some() {
            let meas_after: Vec<f32> = fb.measurement.iter().map(|&x| x as f32).collect();
            self.agent.record_outcome(&meas_after);
        }
    }

    fn episode_end(&mut self, _report: &SimReport) {
        if self.mode == Mode::Train {
            self.agent.finish_episode();
            for _ in 0..self.batches_per_episode {
                if let Some(loss) = self.agent.train_batch() {
                    self.losses.push(loss);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "mrsch"
    }
}

/// Owned, evaluation-only MRSch policy: a trained agent plus its
/// encoder and goal mode, packaged as a self-contained boxed
/// [`mrsim::Policy`] (built via `Mrsch::into_eval_policy`). This is the
/// form the `mrsch_eval` registry hands to the evaluation harness: it
/// acts greedily, logs the goal vector per decision, and
/// [`Policy::reset`] clears that log so one instance can be reused
/// across episodes.
pub struct TrainedMrschPolicy {
    agent: DfpAgent,
    encoder: StateEncoder,
    goal_mode: GoalMode,
    goal_log: Vec<(SimTime, Vec<f32>)>,
}

impl TrainedMrschPolicy {
    pub(crate) fn new(agent: DfpAgent, encoder: StateEncoder, goal_mode: GoalMode) -> Self {
        Self { agent, encoder, goal_mode, goal_log: Vec::new() }
    }

    /// The wrapped agent (checkpointing, inspection).
    pub fn agent(&self) -> &DfpAgent {
        &self.agent
    }

    /// The goal vectors logged at each decision of the latest episode.
    pub fn goal_log(&self) -> &[(SimTime, Vec<f32>)] {
        &self.goal_log
    }
}

impl Policy for TrainedMrschPolicy {
    fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
        if view.window.is_empty() {
            return None;
        }
        let state = self.encoder.encode(view);
        let meas: Vec<f32> = view.measurement().iter().map(|&x| x as f32).collect();
        let goal = self.goal_mode.goal_for(view);
        let valid = self.encoder.valid_actions(view);
        self.goal_log.push((view.now, goal.clone()));
        self.agent.act(&state, &meas, &goal, &valid, false)
    }

    fn reset(&mut self) {
        self.goal_log.clear();
    }

    fn name(&self) -> &'static str {
        "mrsch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsch_dfp::DfpConfig;
    use mrsim::job::Job;
    use mrsim::resources::SystemConfig;
    use mrsim::simulator::{SimParams, Simulator};

    fn small_setup() -> (SystemConfig, StateEncoder, DfpAgent) {
        let system = SystemConfig::two_resource(8, 4);
        let window = 4;
        let encoder = StateEncoder::with_hour_scale(system.clone(), window);
        let mut cfg = DfpConfig::scaled(encoder.state_dim(), 2, window);
        cfg.state_hidden = vec![32];
        cfg.state_embed = 16;
        cfg.io_hidden = 16;
        cfg.io_embed = 8;
        cfg.stream_hidden = 32;
        cfg.batch_size = 8;
        let agent = DfpAgent::new(cfg, 42);
        (system, encoder, agent)
    }

    fn jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| {
                Job::new(
                    i,
                    (i as u64) * 30,
                    120 + (i as u64 % 5) * 60,
                    600,
                    vec![1 + (i as u64 % 4), (i as u64) % 3],
                )
            })
            .collect()
    }

    #[test]
    fn training_run_completes_and_records() {
        let (system, encoder, mut agent) = small_setup();
        let mut policy =
            MrschPolicy::new(&mut agent, encoder, GoalMode::Dynamic, Mode::Train)
                .with_batches_per_episode(4);
        let mut sim = Simulator::new(system, jobs(30), SimParams::new(4, true))
            .unwrap();
        let report = sim.run(&mut policy);
        assert_eq!(report.jobs_completed, 30);
        assert!(!policy.goal_log().is_empty());
        drop(policy);
        assert_eq!(agent.episodes(), 1);
        assert!(agent.replay_len() > 0, "experiences recorded");
    }

    #[test]
    fn evaluation_mode_has_no_learning_side_effects() {
        let (system, encoder, mut agent) = small_setup();
        let mut policy =
            MrschPolicy::new(&mut agent, encoder, GoalMode::Dynamic, Mode::Evaluate);
        let mut sim = Simulator::new(system, jobs(20), SimParams::new(4, true))
            .unwrap();
        let report = sim.run(&mut policy);
        assert_eq!(report.jobs_completed, 20);
        drop(policy);
        assert_eq!(agent.episodes(), 0);
        assert_eq!(agent.replay_len(), 0);
        assert_eq!(agent.train_steps(), 0);
    }

    #[test]
    fn goal_log_entries_normalize() {
        let (system, encoder, mut agent) = small_setup();
        let mut policy =
            MrschPolicy::new(&mut agent, encoder, GoalMode::Dynamic, Mode::Evaluate);
        let mut sim = Simulator::new(system, jobs(15), SimParams::new(4, true))
            .unwrap();
        sim.run(&mut policy);
        for (_, g) in policy.goal_log() {
            let sum: f32 = g.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "goal weights sum to 1: {g:?}");
        }
    }

    #[test]
    #[should_panic(expected = "state dimension")]
    fn mismatched_encoder_rejected() {
        let (system, _, mut agent) = small_setup();
        let bad = StateEncoder::with_hour_scale(system, 3); // wrong window/dim
        let _ = MrschPolicy::new(&mut agent, bad, GoalMode::Dynamic, Mode::Train);
    }
}
