//! Vector state encoding (§III-A, sized per §IV-C).
//!
//! The state is a fixed-size vector concatenating:
//!
//! 1. **Window jobs** — `W` slots of `R + 2` elements each: the job's
//!    demand for every resource as a fraction of capacity (`P_ij`), its
//!    user-estimated runtime, and its queued time (both normalized by a
//!    time scale). Empty slots are zero.
//! 2. **Resource units** — for every unit of every pool, a pair
//!    `(available?, normalized time-until-free)` in ascending
//!    release-time order.
//!
//! For the paper's Theta configuration (`W = 10`, 4392 nodes, 1293 BB
//! units) this yields `(2+2)·10 + 2·4392 + 2·1293 = 11410`, matching the
//! published input size.

use mrsim::policy::SchedulerView;
use mrsim::resources::SystemConfig;
use serde::{Deserialize, Serialize};

/// Encoder of [`SchedulerView`]s into fixed-size `f32` vectors.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StateEncoder {
    config: SystemConfig,
    window: usize,
    /// Seconds corresponding to 1.0 in encoded time features.
    time_scale: f32,
}

impl StateEncoder {
    /// Build an encoder for a system and window size. Times are
    /// normalized by `time_scale` seconds (1 h is a sensible default for
    /// HPC traces; see [`StateEncoder::with_hour_scale`]).
    pub fn new(config: SystemConfig, window: usize, time_scale: f32) -> Self {
        assert!(window > 0, "StateEncoder: window must be positive");
        assert!(time_scale > 0.0, "StateEncoder: time scale must be positive");
        Self { config, window, time_scale }
    }

    /// Encoder with times in hours.
    pub fn with_hour_scale(config: SystemConfig, window: usize) -> Self {
        Self::new(config, window, 3600.0)
    }

    /// Window size `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Total encoded dimension:
    /// `W·(R+2) + 2·Σ_r capacity_r`.
    pub fn state_dim(&self) -> usize {
        let r = self.config.num_resources();
        let units: u64 = self.config.capacities().iter().sum();
        self.window * (r + 2) + 2 * units as usize
    }

    /// Encode a scheduler view. The returned vector always has length
    /// [`StateEncoder::state_dim`].
    pub fn encode(&self, view: &SchedulerView<'_>) -> Vec<f32> {
        let r = self.config.num_resources();
        let caps = self.config.capacities();
        let mut out = Vec::with_capacity(self.state_dim());
        // 1. Window jobs.
        for slot in 0..self.window {
            if let Some(jv) = view.window.get(slot) {
                for (res, &cap) in caps.iter().enumerate() {
                    out.push(jv.job.demand_fraction(res, cap) as f32);
                }
                out.push(jv.job.estimate as f32 / self.time_scale);
                out.push(jv.queued as f32 / self.time_scale);
            } else {
                out.extend(std::iter::repeat_n(0.0, r + 2));
            }
        }
        // 2. Per-unit resource availability. The unit vector covers the
        // capacity *currently online*; the encoding is laid out over the
        // static configuration so the network input size never changes.
        // Drained units are marked (-1, 0) — distinct from both free
        // (1, 0) and occupied (0, t) — and units beyond the configured
        // capacity (a temporary over-provision) are truncated.
        for (res, &cap) in caps.iter().enumerate() {
            let units = view.pools.unit_vector(res, view.now);
            for slot in 0..cap as usize {
                match units.get(slot) {
                    Some(&(avail, ttf)) => {
                        out.push(avail);
                        out.push(ttf / self.time_scale);
                    }
                    None => {
                        out.push(-1.0);
                        out.push(0.0);
                    }
                }
            }
        }
        debug_assert_eq!(out.len(), self.state_dim());
        out
    }

    /// Validity mask over window slots: `true` where a waiting job exists.
    pub fn valid_actions(&self, view: &SchedulerView<'_>) -> Vec<bool> {
        (0..self.window).map(|i| i < view.window.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsim::job::Job;
    use mrsim::simulator::{SimParams, Simulator};

    /// Capture one view via a probe policy and run `f` on it.
    fn with_view<Ret>(
        system: SystemConfig,
        jobs: Vec<Job>,
        f: impl FnOnce(&SchedulerView<'_>) -> Ret + 'static,
    ) -> Ret {
        struct Probe<F, Ret> {
            f: Option<F>,
            out: Option<Ret>,
        }
        impl<F: FnOnce(&SchedulerView<'_>) -> Ret, Ret> mrsim::policy::Policy for Probe<F, Ret> {
            fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
                if let Some(f) = self.f.take() {
                    self.out = Some(f(view));
                }
                // Behave like FCFS afterwards so the run terminates.
                (!view.window.is_empty()).then_some(0)
            }
        }
        let mut probe = Probe { f: Some(f), out: None };
        let mut sim = Simulator::new(system, jobs, SimParams::default()).unwrap();
        sim.run(&mut probe);
        probe.out.expect("probe never invoked")
    }

    #[test]
    fn theta_dimension_matches_paper() {
        let enc = StateEncoder::with_hour_scale(SystemConfig::theta(), 10);
        assert_eq!(enc.state_dim(), 11410);
    }

    #[test]
    fn encoded_length_always_state_dim() {
        let system = SystemConfig::two_resource(8, 4);
        let enc = StateEncoder::with_hour_scale(system.clone(), 5);
        let jobs = vec![
            Job::new(0, 0, 3600, 7200, vec![4, 2]),
            Job::new(1, 0, 1800, 1800, vec![8, 0]),
        ];
        let dim = enc.state_dim();
        let v = with_view(system, jobs, move |view| enc.encode(view));
        assert_eq!(v.len(), dim);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn job_slots_encode_fraction_estimate_queued() {
        let system = SystemConfig::two_resource(8, 4);
        let enc = StateEncoder::with_hour_scale(system.clone(), 3);
        let jobs = vec![Job::new(0, 0, 3600, 7200, vec![4, 1])];
        let v = with_view(system, jobs, move |view| enc.encode(view));
        // Slot 0: P = (0.5, 0.25), estimate 2h, queued 0h.
        assert!((v[0] - 0.5).abs() < 1e-6);
        assert!((v[1] - 0.25).abs() < 1e-6);
        assert!((v[2] - 2.0).abs() < 1e-6);
        assert!((v[3] - 0.0).abs() < 1e-6);
        // Slot 1 is empty.
        assert!(v[4..8].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn idle_units_encode_available() {
        let system = SystemConfig::two_resource(4, 2);
        let enc = StateEncoder::with_hour_scale(system.clone(), 2);
        let jobs = vec![Job::new(0, 0, 60, 60, vec![1, 1])];
        let v = with_view(system, jobs, move |view| enc.encode(view));
        // With an empty system at the first decision, every unit is
        // (1.0, 0.0). Units start after 2 slots * 4 elems = 8.
        let units = &v[8..];
        assert_eq!(units.len(), 2 * (4 + 2));
        for pair in units.chunks(2) {
            assert_eq!(pair[0], 1.0);
            assert_eq!(pair[1], 0.0);
        }
    }

    #[test]
    fn valid_actions_mask_matches_window_fill() {
        let system = SystemConfig::two_resource(4, 4);
        let enc = StateEncoder::with_hour_scale(system.clone(), 4);
        let jobs = vec![
            Job::new(0, 0, 60, 60, vec![4, 0]),
            Job::new(1, 0, 60, 60, vec![4, 0]),
            Job::new(2, 0, 60, 60, vec![4, 0]),
        ];
        // First decision sees all 3 queued jobs in a window of 4.
        let mask = with_view(system, jobs, move |view| enc.valid_actions(view));
        assert_eq!(mask, vec![true, true, true, false]);
    }

    #[test]
    fn drained_units_encode_as_markers_with_fixed_dim() {
        use mrsim::policy::SchedulerView;
        use mrsim::resources::PoolState;
        let system = SystemConfig::two_resource(4, 2);
        let enc = StateEncoder::with_hour_scale(system.clone(), 2);
        let dim = enc.state_dim();
        let mut pools = PoolState::new(&system);
        pools.adjust_capacity(0, -2); // drain half the nodes
        let jobs: Vec<Job> = vec![];
        let queued: Vec<usize> = vec![];
        let view = SchedulerView {
            now: 0,
            instance: 0,
            decision: 0,
            window: vec![],
            pools: &pools,
            config: &system,
            queued: &queued,
            jobs: &jobs,
        };
        let v = enc.encode(&view);
        assert_eq!(v.len(), dim, "state dimension is capacity-invariant");
        // Units start after 2 slots * 4 elems = 8: two online node units,
        // then two drained markers.
        assert_eq!(&v[8..16], &[1.0, 0.0, 1.0, 0.0, -1.0, 0.0, -1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        StateEncoder::with_hour_scale(SystemConfig::two_resource(2, 2), 0);
    }

    #[test]
    fn three_resource_encoding_has_extra_slot_and_unit_features() {
        let system = SystemConfig::three_resource(4, 2, 3);
        let enc = StateEncoder::with_hour_scale(system.clone(), 2);
        // W*(R+2) + 2*(4+2+3) = 2*5 + 18 = 28.
        assert_eq!(enc.state_dim(), 28);
        let jobs = vec![Job::new(0, 0, 3600, 3600, vec![2, 1, 1])];
        let v = with_view(system, jobs, move |view| enc.encode(view));
        assert_eq!(v.len(), 28);
        // Slot 0 demand fractions: 0.5, 0.5, 1/3.
        assert!((v[0] - 0.5).abs() < 1e-6);
        assert!((v[1] - 0.5).abs() < 1e-6);
        assert!((v[2] - 1.0 / 3.0).abs() < 1e-6);
    }
}
