//! Bench of the §V-F runtime-overhead measurement: one greedy scheduling
//! decision at the paper's full Theta network size (state dim 11410,
//! hidden layers 4000/1000, 512-wide embedding).
//!
//! The paper reports <2 s (two-resource) and <3 s (three-resource) per
//! decision; this bench regenerates those latencies on the current host.

use criterion::{criterion_group, criterion_main, Criterion};
use mrsch::prelude::*;
use mrsch_experiments::overhead;

/// CI runs this bench on every PR with `MRSCH_BENCH_QUICK=1`: skip the
/// slow one-time table regeneration, keeping the decision-latency cells
/// (both scaled and Theta size — the Theta decision is the serving
/// hot path and rides the fused gemv kernel) as the tracked numbers.
fn quick() -> bool {
    std::env::var_os("MRSCH_BENCH_QUICK").is_some()
}

fn bench(c: &mut Criterion) {
    // Regenerate the §V-F table once (full mode only).
    if !quick() {
        let results = overhead::run(3);
        overhead::print(&results);
    }

    // Criterion measurement at scaled + Theta sizes.
    let mut group = c.benchmark_group("overhead");
    group.sample_size(10);

    let mk_agent = |system: SystemConfig, theta: bool| {
        let encoder = StateEncoder::with_hour_scale(system.clone(), 10);
        let m = system.num_resources();
        let cfg = if theta {
            DfpConfig::theta(encoder.state_dim(), m, 10)
        } else {
            DfpConfig::scaled(encoder.state_dim(), m, 10)
        };
        let agent = DfpAgent::new(cfg, 7);
        (agent, encoder.state_dim(), m)
    };

    let (mut scaled, dim, m) = mk_agent(SystemConfig::scaled(), false);
    let state = vec![0.5f32; dim];
    let meas = vec![0.5f32; m];
    let goal = vec![0.5f32; m];
    let valid = vec![true; 10];
    group.bench_function("decision_scaled_2res", |b| {
        b.iter(|| scaled.act(&state, &meas, &goal, &valid, false))
    });

    // Measured in quick mode too: a single decision is a 1-row forward
    // pass, which `mrsch_linalg::matmul` routes through the fused gemv
    // kernel — this cell is the serving-critical latency CI must track.
    let (mut theta, dim, m) = mk_agent(SystemConfig::theta(), true);
    let state = vec![0.5f32; dim];
    let meas = vec![0.5f32; m];
    let goal = vec![0.5f32; m];
    group.bench_function("decision_theta_2res", |b| {
        b.iter(|| theta.act(&state, &meas, &goal, &valid, false))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
