//! Substrate bench: event-engine throughput on a million-job trace.
//!
//! Simulates seeded [`StressConfig`] traces end to end — a clean
//! Poisson/exponential trace and a disrupted variant with cancels,
//! walltime overruns, a node-drain episode, and a tick chain — under
//! both event-queue implementations, plus the 4-shard fleet runner.
//! Each measured iteration is the *whole* pipeline a study pays for:
//! simulator construction (slab + seed events), event injection, and
//! the run loop to drain — including the by-reference
//! `handlers::is_live`/`handlers::dispatch` probe-and-route path, so
//! the events/sec cells cover the copy-free dispatch hot loop directly.
//!
//! The report (`results/BENCH_sim.json`, schema `mrsch-bench/v2`)
//! records `events_per_sec` for every cell. Host-speed-independent and
//! gated: the **in-run speedup of the indexed calendar queue over the
//! binary-heap queue** on the same trace, carried as the `ratio` of the
//! indexed cells — exactly how the GEMM gate tracks its in-run
//! speedup-over-blocked-loop.
//!
//! Env knobs: `MRSCH_BENCH_QUICK=1` shrinks the measurement budget for
//! CI; `MRSCH_BENCH_JSON=path` redirects the report (default
//! `results/BENCH_sim.json`).

use criterion::Criterion;
use mrsch_bench::report::{BenchRecord, BenchReport, SCHEMA};
use mrsch_workload::disruption::{DisruptionConfig, DrainSpec};
use mrsch_workload::StressConfig;
use mrsim::policy::{HeadOfQueue, Policy};
use mrsim::{
    partition_round_robin, BinaryHeapEventQueue, EventQueue, IndexedEventQueue, InjectedEvent, Job,
    ShardSpec, ShardedSim, SimParams, SimReport, Simulator, SystemConfig,
};
use std::time::Duration;

const NODES: u64 = 256;
const BB: u64 = 32;
const SEED: u64 = 20_220_517;
/// The acceptance-scale trace: one million jobs.
const NUM_JOBS: usize = 1_000_000;

fn system() -> SystemConfig {
    SystemConfig::two_resource(NODES, BB)
}

fn params(tick: bool) -> SimParams {
    SimParams {
        enforce_walltime: tick,
        tick: if tick { Some(900) } else { None },
        ..SimParams::new(10, true)
    }
}

/// One full simulation; returns the total number of events processed.
fn simulate<Q: EventQueue>(
    jobs: &[Job],
    events: &[InjectedEvent],
    params: SimParams,
) -> u64 {
    let mut sim = Simulator::<Q>::with_queue(system(), jobs.to_vec(), params)
        .expect("stress trace is valid");
    sim.inject_all(events).expect("injected events are valid");
    sim.run(&mut HeadOfQueue).event_counts.total()
}

/// One full 4-shard fleet run; returns the total events across shards.
fn simulate_sharded(shards: &[ShardSpec]) -> u64 {
    let reports: Vec<SimReport> = ShardedSim::new(shards.to_vec())
        .workers(4)
        .run_with(&|_| Box::new(HeadOfQueue) as Box<dyn Policy + Send>)
        .expect("shard fleet runs");
    reports.iter().map(|r| r.event_counts.total()).sum()
}

struct Measured {
    bench: &'static str,
    queue: &'static str,
    trace: &'static str,
    ns_per_iter: f64,
    events: u64,
}

fn main() {
    let quick = std::env::var_os("MRSCH_BENCH_QUICK").is_some();
    let mut criterion = Criterion::default().configure_from_args();
    // Iterations are seconds long; one calibration pass plus a
    // wall-budget-bounded sample loop keeps the full sweep in minutes.
    criterion = if quick {
        criterion.sample_size(2).measurement_time(Duration::from_millis(200))
    } else {
        criterion.sample_size(5).measurement_time(Duration::from_secs(10))
    };

    println!("generating {NUM_JOBS}-job stress traces (seed {SEED})...");
    let clean = StressConfig::engine(NUM_JOBS, vec![NODES, BB]).generate(SEED);
    let span = clean.last().expect("nonempty trace").submit;
    let disruptions = DisruptionConfig {
        cancel_fraction: 0.05,
        overrun_fraction: 0.05,
        overrun_factor: 1.5,
        drains: vec![DrainSpec { resource: 0, fraction: 0.25, at: span / 4, duration: span / 4 }],
    };
    let disrupted = disruptions.synthesize(&clean, &system(), SEED ^ 0xD15);
    let shards: Vec<ShardSpec> = partition_round_robin(&clean, 4)
        .into_iter()
        .map(|jobs| ShardSpec::new(system(), jobs, params(false)))
        .collect();

    let event_totals = [
        ("sim/1m_clean/indexed", simulate::<IndexedEventQueue>(&clean, &[], params(false))),
        ("sim/1m_clean/binheap", simulate::<BinaryHeapEventQueue>(&clean, &[], params(false))),
        (
            "sim/1m_disrupted/indexed",
            simulate::<IndexedEventQueue>(&disrupted.jobs, &disrupted.events, params(true)),
        ),
        (
            "sim/1m_disrupted/binheap",
            simulate::<BinaryHeapEventQueue>(&disrupted.jobs, &disrupted.events, params(true)),
        ),
        ("sim/1m_clean/sharded4", simulate_sharded(&shards)),
    ];
    let events_of = |id: &str| {
        event_totals.iter().find(|(b, _)| *b == id).map(|&(_, e)| e).expect("cell counted")
    };

    criterion.bench_function("sim/1m_clean/indexed", |b| {
        b.iter(|| simulate::<IndexedEventQueue>(&clean, &[], params(false)))
    });
    criterion.bench_function("sim/1m_clean/binheap", |b| {
        b.iter(|| simulate::<BinaryHeapEventQueue>(&clean, &[], params(false)))
    });
    criterion.bench_function("sim/1m_disrupted/indexed", |b| {
        b.iter(|| simulate::<IndexedEventQueue>(&disrupted.jobs, &disrupted.events, params(true)))
    });
    criterion.bench_function("sim/1m_disrupted/binheap", |b| {
        b.iter(|| simulate::<BinaryHeapEventQueue>(&disrupted.jobs, &disrupted.events, params(true)))
    });
    criterion.bench_function("sim/1m_clean/sharded4", |b| b.iter(|| simulate_sharded(&shards)));

    let mean_of = |id: &str| criterion.results().iter().find(|r| r.id == id).map(|r| r.mean_ns);
    let measured: Vec<Measured> = [
        ("sim/1m_clean/indexed", "indexed", "clean"),
        ("sim/1m_clean/binheap", "binheap", "clean"),
        ("sim/1m_disrupted/indexed", "indexed", "disrupted"),
        ("sim/1m_disrupted/binheap", "binheap", "disrupted"),
        ("sim/1m_clean/sharded4", "indexed", "clean"),
    ]
    .into_iter()
    .filter_map(|(bench, queue, trace)| {
        Some(Measured { bench, queue, trace, ns_per_iter: mean_of(bench)?, events: events_of(bench) })
    })
    .collect();
    let ns_of =
        |id: &str| measured.iter().find(|m| m.bench == id).map(|m| m.ns_per_iter);

    let results: Vec<BenchRecord> = measured
        .iter()
        .map(|m| {
            // The gated metric: on each trace, the indexed cell carries
            // its in-run speedup over the heap cell (heap ns / ours).
            // The sharded cell is recorded but untracked (its worker
            // parallelism is host-dependent).
            let ratio = (m.queue == "indexed" && !m.bench.ends_with("sharded4"))
                .then(|| {
                    ns_of(&m.bench.replace("indexed", "binheap")).map(|heap| heap / m.ns_per_iter)
                })
                .flatten();
            BenchRecord {
                bench: m.bench.to_string(),
                group: "sim".to_string(),
                unit: "events_per_sec".to_string(),
                value: m.events as f64 / (m.ns_per_iter * 1e-9),
                ratio,
                ratio_kind: if ratio.is_some() {
                    "speedup_vs_binheap".to_string()
                } else {
                    String::new()
                },
                extras: vec![
                    ("events".to_string(), m.events as f64),
                    ("jobs".to_string(), NUM_JOBS as f64),
                    ("ns_per_iter".to_string(), m.ns_per_iter),
                ],
                tags: vec![
                    ("queue".to_string(), m.queue.to_string()),
                    ("trace".to_string(), m.trace.to_string()),
                ],
            }
        })
        .collect();

    for r in &results {
        println!(
            "{}: {:.0} events/sec ({} events{})",
            r.bench,
            r.value,
            r.extra("events").unwrap_or(0.0) as u64,
            r.ratio.map(|x| format!(", {x:.2}x vs binheap")).unwrap_or_default()
        );
    }

    let report = BenchReport {
        quick,
        host: format!("{} core(s)", std::thread::available_parallelism().map_or(1, |n| n.get())),
        results,
    };
    let path = std::env::var("MRSCH_BENCH_JSON").unwrap_or_else(|_| {
        format!("{}/../../results/BENCH_sim.json", env!("CARGO_MANIFEST_DIR"))
    });
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("sim report ({SCHEMA}): {path} ({} records)", report.results.len()),
        Err(e) => eprintln!("sim report: failed to write {path}: {e}"),
    }
}
