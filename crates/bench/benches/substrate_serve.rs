//! Substrate bench: the decision-serving hot path.
//!
//! Four families of cells, written to `results/BENCH_serve.json`
//! (schema `mrsch-bench/v2`) and gated against the committed baseline:
//!
//! * **gemv vs packed GEMM** on the Theta hidden shape (1×4000 by
//!   4000×1000) — the batch-1 forward-pass matmul the §V-F decision
//!   overhead is made of. The gemv cell carries the **in-run** speedup
//!   over the packed-GEMM probe on the same operands (host-speed
//!   independent; the gated metric).
//! * **decision latency** — p50/p99 of a full single-request decision
//!   (encoder-shaped request through a [`DecisionEngine`]), measured
//!   with the serve crate's own HDR histogram.
//! * **batched vs serial decisions** — eight coalesced requests through
//!   one `decide_batch` GEMM pass vs eight `decide_one` gemv passes,
//!   on a **Theta-scale engine** (weight matrices far beyond cache, so
//!   coalescing amortises the DRAM streaming cost across the batch).
//!   The batched cell carries the in-run per-decision ratio (gated).
//!   On this single-core host the ratio hovers near parity: the packed
//!   GEMM's per-element cost roughly offsets the streaming savings, so
//!   micro-batching's measured value is queue smoothing under load, not
//!   raw throughput — the gate exists to catch either path regressing
//!   relative to the other.
//! * **open-arrival load test** — the full micro-batching service under
//!   a seeded Poisson schedule; **zero shed requests is asserted**, so
//!   a batcher that starts dropping under CI quick-mode load fails the
//!   bench outright.
//!
//! Env knobs: `MRSCH_BENCH_QUICK=1` shrinks the measurement budget for
//! CI; `MRSCH_BENCH_JSON=path` redirects the report (default
//! `results/BENCH_serve.json`).

use criterion::Criterion;
use mrsch_bench::report::{BenchRecord, BenchReport, SCHEMA};
use mrsch_linalg::{gemm, gemv, kernel_isa, Epilogue, Matrix, ParallelPolicy};
use mrsch_serve::{
    build_engine, run_loadtest, synth_requests, BatcherConfig, EngineSpec, LatencyHistogram,
    LoadgenConfig, Request,
};
use std::time::{Duration, Instant};

const SEED: u64 = 20_220_517;
/// Theta hidden-layer shape: 4000-wide activations into 1000 units.
const THETA_K: usize = 4000;
const THETA_N: usize = 1000;

/// Deterministic matrix fill (no RNG dependency in the hot loop).
fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for v in m.as_mut_slice() {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        *v = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
    m
}

fn main() {
    let quick = std::env::var_os("MRSCH_BENCH_QUICK").is_some();
    let mut criterion = Criterion::default().configure_from_args();
    criterion = if quick {
        criterion.sample_size(3).measurement_time(Duration::from_millis(300))
    } else {
        criterion.sample_size(10).measurement_time(Duration::from_secs(3))
    };

    // --- gemv vs packed GEMM on the Theta shape ------------------------
    let x = lcg_matrix(1, THETA_K, SEED);
    let w = lcg_matrix(THETA_K, THETA_N, SEED ^ 0xA5A5);
    // Sanity: both timed paths are bit-identical on these operands.
    {
        let via_gemv = gemv::gemv(&x, &w, Epilogue::None);
        let via_packed = gemm::matmul_packed_with(&x, &w, ParallelPolicy::Serial);
        assert!(
            via_gemv
                .as_slice()
                .iter()
                .zip(via_packed.as_slice())
                .all(|(p, q)| p.to_bits() == q.to_bits()),
            "gemv and packed GEMM disagree on the Theta shape"
        );
    }
    criterion.bench_function("serve/gemv/theta_1x4000x1000", |b| {
        b.iter(|| gemv::gemv(&x, &w, Epilogue::None))
    });
    criterion.bench_function("serve/packed/theta_1x4000x1000", |b| {
        b.iter(|| gemm::matmul_packed_with(&x, &w, ParallelPolicy::Serial))
    });

    // --- engine decision cells ----------------------------------------
    // Laptop-scale engine: the latency/loadtest deployment profile.
    let spec = EngineSpec::default(); // window 10, two-resource 256/75
    let engine = build_engine(&spec);
    let reqs: Vec<Request> = synth_requests(engine.config(), 8, SEED);

    // Decision latency distribution via the serve histogram (criterion
    // reports means; serving cares about tails).
    let decision_iters = if quick { 500 } else { 5_000 };
    let mut hist = LatencyHistogram::new();
    for i in 0..decision_iters {
        let req = &reqs[i % reqs.len()];
        let t0 = Instant::now();
        let action = engine.decide_one(req);
        hist.record(t0.elapsed().as_nanos() as u64);
        assert!(action.is_some(), "synth requests always have a valid action");
    }

    // Theta-scale engine (4392-node encoder, untrained weights — timing
    // is weight-value independent): the DRAM-bound batching regime.
    let theta_engine =
        build_engine(&EngineSpec { nodes: 4_392, bb: 75, ..EngineSpec::default() });
    let theta_reqs: Vec<Request> = synth_requests(theta_engine.config(), 8, SEED ^ 0x7E7A);
    let theta_batch: Vec<&Request> = theta_reqs.iter().collect();
    assert_eq!(
        theta_engine.decide_batch(&theta_batch),
        theta_batch.iter().map(|r| theta_engine.decide_one(r)).collect::<Vec<_>>(),
        "batched and serial decisions must be bit-identical"
    );

    criterion.bench_function("serve/serial8/theta_2res", |b| {
        b.iter(|| theta_batch.iter().map(|r| theta_engine.decide_one(r)).collect::<Vec<_>>())
    });
    criterion.bench_function("serve/batched8/theta_2res", |b| {
        b.iter(|| theta_engine.decide_batch(&theta_batch))
    });

    // --- open-arrival load test (zero-shed asserted) -------------------
    let load = LoadgenConfig {
        requests: if quick { 256 } else { 2_048 },
        target_qps: if quick { 2_000.0 } else { 5_000.0 },
        seed: SEED,
    };
    let report = run_loadtest(
        engine,
        BatcherConfig { max_delay: Duration::from_micros(500), ..BatcherConfig::default() },
        &load,
    );
    assert_eq!(
        report.dropped, 0,
        "micro-batcher shed {} of {} requests under the CI load profile",
        report.dropped, load.requests
    );
    assert_eq!(report.total as usize, load.requests, "every request answered");

    let mean_of = |id: &str| {
        criterion
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .expect("bench cell measured")
    };
    let gemv_ns = mean_of("serve/gemv/theta_1x4000x1000");
    let packed_ns = mean_of("serve/packed/theta_1x4000x1000");
    let serial8_ns = mean_of("serve/serial8/theta_2res");
    let batched8_ns = mean_of("serve/batched8/theta_2res");

    let shape_tags = |path: &str| {
        vec![
            ("op".to_string(), "gemm_1row".to_string()),
            ("path".to_string(), path.to_string()),
            ("shape".to_string(), format!("1x{THETA_K}x{THETA_N}")),
        ]
    };
    let results = vec![
        // The headline gated ratio: fused gemv speedup over the packed
        // micro-kernel GEMM on the same batch-1 operands, same process.
        BenchRecord {
            bench: "serve/gemv/theta_1x4000x1000".to_string(),
            group: "serve".to_string(),
            unit: "ns_per_iter".to_string(),
            value: gemv_ns,
            ratio: Some(packed_ns / gemv_ns),
            ratio_kind: "speedup_vs_packed".to_string(),
            extras: vec![("gflops".to_string(), (2 * THETA_K * THETA_N) as f64 / gemv_ns)],
            tags: shape_tags("gemv"),
        },
        BenchRecord {
            bench: "serve/packed/theta_1x4000x1000".to_string(),
            group: "serve".to_string(),
            unit: "ns_per_iter".to_string(),
            value: packed_ns,
            ratio: None,
            ratio_kind: String::new(),
            extras: vec![("gflops".to_string(), (2 * THETA_K * THETA_N) as f64 / packed_ns)],
            tags: shape_tags("packed"),
        },
        BenchRecord {
            bench: "serve/decision/window10".to_string(),
            group: "serve".to_string(),
            unit: "ns_per_decision".to_string(),
            value: hist.percentile(50.0) as f64,
            ratio: None,
            ratio_kind: String::new(),
            extras: vec![
                ("p50_ns".to_string(), hist.percentile(50.0) as f64),
                ("p99_ns".to_string(), hist.percentile(99.0) as f64),
                ("mean_ns".to_string(), hist.mean() as f64),
                ("max_ns".to_string(), hist.max() as f64),
                ("iters".to_string(), decision_iters as f64),
            ],
            tags: vec![("engine".to_string(), "window10_2res".to_string())],
        },
        // Gated: per-decision speedup of one 8-row GEMM pass over eight
        // gemv passes on the Theta-scale engine, same requests, same
        // process.
        BenchRecord {
            bench: "serve/batched8/theta_2res".to_string(),
            group: "serve".to_string(),
            unit: "ns_per_iter".to_string(),
            value: batched8_ns,
            ratio: Some(serial8_ns / batched8_ns),
            ratio_kind: "speedup_vs_serial".to_string(),
            extras: vec![
                ("batch".to_string(), 8.0),
                ("ns_per_decision".to_string(), batched8_ns / 8.0),
            ],
            tags: vec![("engine".to_string(), "theta_2res".to_string())],
        },
        BenchRecord {
            bench: "serve/serial8/theta_2res".to_string(),
            group: "serve".to_string(),
            unit: "ns_per_iter".to_string(),
            value: serial8_ns,
            ratio: None,
            ratio_kind: String::new(),
            extras: vec![("ns_per_decision".to_string(), serial8_ns / 8.0)],
            tags: vec![("engine".to_string(), "theta_2res".to_string())],
        },
        BenchRecord {
            bench: "serve/loadtest/open_arrival".to_string(),
            group: "serve".to_string(),
            unit: "qps".to_string(),
            value: report.qps,
            ratio: None,
            ratio_kind: String::new(),
            extras: vec![
                ("requests".to_string(), report.total as f64),
                ("dropped".to_string(), report.dropped as f64),
                ("p50_ns".to_string(), report.p50_ns as f64),
                ("p99_ns".to_string(), report.p99_ns as f64),
                ("mean_batch".to_string(), report.mean_batch),
            ],
            tags: vec![("arrivals".to_string(), "poisson_open".to_string())],
        },
    ];

    println!(
        "serve/gemv theta 1x{THETA_K}x{THETA_N}: {:.0} ns ({:.2}x vs packed GEMM)",
        gemv_ns,
        packed_ns / gemv_ns
    );
    println!(
        "serve/decision: p50 {} ns, p99 {} ns | batched8 {:.2}x vs serial",
        hist.percentile(50.0),
        hist.percentile(99.0),
        serial8_ns / batched8_ns
    );
    println!(
        "serve/loadtest: {:.0} qps achieved, p99 {} us, mean batch {:.2}, 0 dropped",
        report.qps,
        report.p99_ns / 1_000,
        report.mean_batch
    );

    let out = BenchReport { quick, host: kernel_isa().to_string(), results };
    let path = std::env::var("MRSCH_BENCH_JSON").unwrap_or_else(|_| {
        format!("{}/../../results/BENCH_serve.json", env!("CARGO_MANIFEST_DIR"))
    });
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, out.to_json()) {
        Ok(()) => println!("serve report ({SCHEMA}): {path} ({} records)", out.results.len()),
        Err(e) => eprintln!("serve report: failed to write {path}: {e}"),
    }
}
