//! Substrate bench: the hand-rolled GEMM that carries every forward and
//! backward pass, serial vs thread-parallel.

use criterion::{criterion_group, criterion_main, Criterion};
use mrsch_linalg::{gemm, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = mrsch_linalg::init::gaussian_matrix(&mut rng, 256, 512, 1.0);
    let b = mrsch_linalg::init::gaussian_matrix(&mut rng, 512, 256, 1.0);

    let mut group = c.benchmark_group("gemm_256x512x256");
    group.bench_function("serial", |bch| {
        bch.iter(|| gemm::matmul_with(&a, &b, gemm::ParallelPolicy::Serial))
    });
    group.bench_function("auto_parallel", |bch| {
        bch.iter(|| gemm::matmul_with(&a, &b, gemm::ParallelPolicy::Auto))
    });
    group.finish();

    // Backward-pass kernels.
    let g = mrsch_linalg::init::gaussian_matrix(&mut rng, 256, 256, 1.0);
    c.bench_function("gemm_backward_a_bt", |bch| {
        bch.iter(|| gemm::matmul_a_bt(&g, &b))
    });
    let _ = Matrix::zeros(1, 1);
}

criterion_group!(benches, bench);
criterion_main!(benches);
