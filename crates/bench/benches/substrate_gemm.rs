//! Substrate bench: the packed micro-kernel GEMM that carries every
//! forward and backward pass.
//!
//! Sweeps the shapes the pipeline actually runs — the canonical blocked
//! shape, training-batch forward/backward contractions at the scaled
//! network widths, and batch-1 inference (the `forward_inference` actor
//! path) up to the paper's Theta layer — under serial and parallel
//! policies, plus the pre-micro-kernel blocked loop on the canonical
//! shape as the in-run speedup baseline.
//!
//! On top of the printed table the run emits a machine-readable report
//! (`results/BENCH_gemm.json`, schema `mrsch-bench/v2`) that the CI
//! perf gate (`bench_gate`) compares against the committed baseline —
//! which may still be the legacy `mrsch-bench-gemm/v1` document (the
//! gate sniffs and up-converts). The canonical auto/threads2 cells
//! additionally carry a `speedup_vs_serial` extra — the in-run thread
//! scaling CI asserts on multi-core runners.
//! Env knobs: `MRSCH_BENCH_QUICK=1` shrinks the measurement budget for
//! CI; `MRSCH_BENCH_JSON=path` redirects the report.

use criterion::Criterion;
use mrsch_bench::gemm_report::{GemmRecord, GemmReport};
use mrsch_bench::report::BenchReport;
use mrsch_linalg::{gemm, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Which contraction a sweep cell measures.
#[derive(Clone, Copy)]
enum Op {
    /// `C = A · B`
    AB,
    /// `C = A · Bᵀ`
    ABt,
    /// `C = Aᵀ · B`
    AtB,
    /// The legacy pre-micro-kernel serial loop (`C = A · B`).
    LegacyBlocked,
}

impl Op {
    fn tag(self) -> &'static str {
        match self {
            Op::AB | Op::LegacyBlocked => "a_b",
            Op::ABt => "a_bt",
            Op::AtB => "at_b",
        }
    }
}

/// One sweep cell: logical `m × k × n` under a policy.
struct Cell {
    id: &'static str,
    op: Op,
    m: usize,
    k: usize,
    n: usize,
    policy: Option<gemm::ParallelPolicy>,
    policy_tag: &'static str,
}

const fn serial(id: &'static str, op: Op, m: usize, k: usize, n: usize) -> Cell {
    Cell { id, op, m, k, n, policy: Some(gemm::ParallelPolicy::Serial), policy_tag: "serial" }
}

/// The sweep. Ids are stable: the regression gate joins on them.
const CELLS: &[Cell] = &[
    // Canonical shape, every policy + the legacy baseline.
    serial("gemm/256x512x256/serial", Op::AB, 256, 512, 256),
    Cell {
        id: "gemm/256x512x256/auto",
        op: Op::AB,
        m: 256,
        k: 512,
        n: 256,
        policy: Some(gemm::ParallelPolicy::Auto),
        policy_tag: "auto",
    },
    Cell {
        id: "gemm/256x512x256/threads2",
        op: Op::AB,
        m: 256,
        k: 512,
        n: 256,
        policy: Some(gemm::ParallelPolicy::Threads { max_threads: 2 }),
        policy_tag: "threads2",
    },
    Cell {
        id: "gemm_blocked_legacy/256x512x256",
        op: Op::LegacyBlocked,
        m: 256,
        k: 512,
        n: 256,
        policy: None,
        policy_tag: "serial",
    },
    // Training-shaped: batch-32 forward and both backward contractions
    // at the scaled network widths (256/128 hidden).
    serial("gemm_train_fwd/32x256x128/serial", Op::AB, 32, 256, 128),
    serial("gemm_train_gradw/256x32x128/serial", Op::AtB, 256, 32, 128),
    serial("gemm_train_gradx/32x128x256/serial", Op::ABt, 32, 128, 256),
    // Large backward panels (the canonical shape's gradients).
    serial("gemm_backward_a_bt/256x256x512/serial", Op::ABt, 256, 256, 512),
    serial("gemm_backward_at_b/512x256x256/serial", Op::AtB, 512, 256, 256),
    // Inference-shaped: batch-1 actor path, scaled and Theta widths.
    serial("gemm_infer/1x256x128/serial", Op::AB, 1, 256, 128),
    serial("gemm_infer_theta/1x4000x1000/serial", Op::AB, 1, 4000, 1000),
];

/// Materialize the operands with the storage shapes the entry point
/// expects (`a_bt` takes B as `(n, k)`; `at_b` takes A as `(k, m)`).
fn operands(cell: &Cell, rng: &mut StdRng) -> (Matrix, Matrix) {
    let (m, k, n) = (cell.m, cell.k, cell.n);
    match cell.op {
        Op::AB | Op::LegacyBlocked => (
            mrsch_linalg::init::gaussian_matrix(rng, m, k, 1.0),
            mrsch_linalg::init::gaussian_matrix(rng, k, n, 1.0),
        ),
        Op::ABt => (
            mrsch_linalg::init::gaussian_matrix(rng, m, k, 1.0),
            mrsch_linalg::init::gaussian_matrix(rng, n, k, 1.0),
        ),
        Op::AtB => (
            mrsch_linalg::init::gaussian_matrix(rng, k, m, 1.0),
            mrsch_linalg::init::gaussian_matrix(rng, k, n, 1.0),
        ),
    }
}

fn main() {
    let quick = std::env::var_os("MRSCH_BENCH_QUICK").is_some();
    let mut criterion = Criterion::default().configure_from_args();
    if quick {
        criterion = criterion
            .sample_size(10)
            .measurement_time(Duration::from_millis(120));
    }
    let mut rng = StdRng::seed_from_u64(1);

    for cell in CELLS {
        let (a, b) = operands(cell, &mut rng);
        match (cell.op, cell.policy) {
            (Op::LegacyBlocked, _) => {
                criterion.bench_function(cell.id, |bch| {
                    bch.iter(|| gemm::reference::blocked_ikj(&a, &b))
                });
            }
            (Op::AB, Some(p)) => {
                criterion.bench_function(cell.id, |bch| bch.iter(|| gemm::matmul_with(&a, &b, p)));
            }
            (Op::ABt, Some(p)) => {
                criterion
                    .bench_function(cell.id, |bch| bch.iter(|| gemm::matmul_a_bt_with(&a, &b, p)));
            }
            (Op::AtB, Some(p)) => {
                criterion
                    .bench_function(cell.id, |bch| bch.iter(|| gemm::matmul_at_b_with(&a, &b, p)));
            }
            _ => unreachable!("policy-less cells are legacy-only"),
        }
    }

    // Assemble the report.
    let mean_of = |id: &str| {
        criterion
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
    };
    let legacy_ns = mean_of("gemm_blocked_legacy/256x512x256");

    let results: Vec<GemmRecord> = CELLS
        .iter()
        .filter_map(|cell| {
            let ns = mean_of(cell.id)?;
            let flops = 2.0 * cell.m as f64 * cell.k as f64 * cell.n as f64;
            // The canonical-shape micro-kernel cells carry their in-run
            // speedup over the legacy loop: the gate's tracked metric.
            let tracked = matches!(cell.op, Op::AB) && cell.m == 256;
            GemmRecord {
                bench: cell.id.to_string(),
                m: cell.m,
                k: cell.k,
                n: cell.n,
                op: cell.op.tag().to_string(),
                policy: cell.policy_tag.to_string(),
                ns_per_iter: ns,
                gflops: flops / ns,
                speedup_vs_blocked: if tracked {
                    legacy_ns.map(|l| l / ns)
                } else {
                    None
                },
            }
            .into()
        })
        .collect();

    let v1 = GemmReport {
        quick,
        kernel_isa: mrsch_linalg::kernel_isa().to_string(),
        results,
    };

    // Emit as v2, with in-run thread scaling on the parallel canonical
    // cells (`speedup_vs_serial` = serial ns / this cell's ns).
    let mut report = BenchReport::from_v1(&v1);
    let serial_ns = mean_of("gemm/256x512x256/serial");
    for id in ["gemm/256x512x256/auto", "gemm/256x512x256/threads2"] {
        if let (Some(serial), Some(ns)) = (serial_ns, mean_of(id)) {
            if let Some(r) = report.results.iter_mut().find(|r| r.bench == id) {
                r.extras.push(("speedup_vs_serial".to_string(), serial / ns));
            }
        }
    }

    // A bare `cargo bench -- <filter>` run that skipped the sweep still
    // writes whatever it measured; the gate catches missing shapes.
    // Cargo runs benches with cwd = the package dir, so anchor the
    // default at the workspace root two levels up.
    let path = std::env::var("MRSCH_BENCH_JSON").unwrap_or_else(|_| {
        format!("{}/../../results/BENCH_gemm.json", env!("CARGO_MANIFEST_DIR"))
    });
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("gemm report: {path} ({} records)", report.results.len()),
        Err(e) => eprintln!("gemm report: failed to write {path}: {e}"),
    }
}
