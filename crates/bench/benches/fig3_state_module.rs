//! Bench + regeneration of Fig. 3 (MLP vs CNN state module).
//!
//! Prints the MLP-vs-CNN metric rows for S1 at bench scale, then
//! measures per-decision inference cost of both architectures — the
//! quantity that differs between the two state modules.

use criterion::{criterion_group, criterion_main, Criterion};
use mrsch::prelude::*;
use mrsch_bench::{bench_eval_jobs, bench_scale, bench_trained_mrsch};
use mrsch_experiments::comparison::train_mrsch;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let spec = WorkloadSpec::s1();
    let jobs = bench_eval_jobs(&spec, &scale, 3);

    println!("Fig. 3 (bench scale, S1): arch, node util, bb util, wait(h), slowdown");
    let mut agents = Vec::new();
    for (label, kind) in [("MLP", StateModuleKind::Mlp), ("CNN", StateModuleKind::Cnn)] {
        let mut agent = train_mrsch(&spec, &scale, 3, kind);
        let r = agent.evaluate(&jobs);
        println!(
            "  {label}: {:.3}, {:.3}, {:.3}, {:.3}",
            r.resource_utilization[0],
            r.resource_utilization[1],
            r.avg_wait_hours(),
            r.avg_slowdown
        );
        agents.push((label, agent));
    }

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for (label, agent) in &mut agents {
        group.bench_function(format!("evaluate_{label}"), |b| {
            b.iter(|| agent.evaluate(&jobs))
        });
    }
    group.finish();
    // Keep a trained MLP agent around so the helper is exercised.
    let _ = bench_trained_mrsch(&spec, &scale, 4);
}

criterion_group!(benches, bench);
criterion_main!(benches);
