//! Scenario-substrate bench: event-engine throughput on **bursty**
//! open-arrival traces — the 100k-arrival diurnal and spike streams the
//! scenario registry's `bursty:*` families are built from.
//!
//! Bursty traces stress the engine differently from the homogeneous
//! Poisson stress trace of `substrate_sim`: arrivals bunch into waves
//! or storms, so the wait queue oscillates between near-empty and deep,
//! the calendar-queue buckets fill unevenly, and the scheduler is
//! invoked in bursts. Each measured iteration is the full pipeline
//! (simulator construction, run loop to drain) under [`HeadOfQueue`]
//! for both event-queue implementations.
//!
//! The report (`results/BENCH_scenario.json`, schema `mrsch-bench/v2`)
//! records `events_per_sec` for every cell. The gated,
//! host-speed-independent metric is the **in-run speedup of the indexed
//! calendar queue over the binary-heap queue on the same bursty
//! trace** — bucket-indexed insertion must keep its edge even when
//! arrival bursts pile events into a narrow time window.
//!
//! Env knobs: `MRSCH_BENCH_QUICK=1` shrinks the measurement budget for
//! CI; `MRSCH_BENCH_JSON=path` redirects the report (default
//! `results/BENCH_scenario.json`).

use criterion::Criterion;
use mrsch_bench::report::{BenchRecord, BenchReport, SCHEMA};
use mrsch_workload::{ArrivalProcess, StressConfig};
use mrsim::policy::HeadOfQueue;
use mrsim::{
    BinaryHeapEventQueue, EventQueue, IndexedEventQueue, Job, SimParams, Simulator, SystemConfig,
};
use std::time::Duration;

const NODES: u64 = 256;
const BB: u64 = 32;
const SEED: u64 = 20_220_517;
/// The acceptance-scale stream: one hundred thousand arrivals.
const NUM_JOBS: usize = 100_000;

fn system() -> SystemConfig {
    SystemConfig::two_resource(NODES, BB)
}

/// One full simulation; returns the total number of events processed.
fn simulate<Q: EventQueue>(jobs: &[Job]) -> u64 {
    let mut sim = Simulator::<Q>::with_queue(system(), jobs.to_vec(), SimParams::new(10, true))
        .expect("bursty trace is valid");
    sim.run(&mut HeadOfQueue).event_counts.total()
}

fn main() {
    let quick = std::env::var_os("MRSCH_BENCH_QUICK").is_some();
    let mut criterion = Criterion::default().configure_from_args();
    criterion = if quick {
        criterion.sample_size(2).measurement_time(Duration::from_millis(200))
    } else {
        criterion.sample_size(5).measurement_time(Duration::from_secs(10))
    };

    println!("generating {NUM_JOBS}-arrival bursty traces (seed {SEED})...");
    let base = StressConfig::engine(NUM_JOBS, vec![NODES, BB]);
    // Period ≈ 100 mean interarrivals, so the run sees ~1 000 full
    // waves/storm cycles — the steady-state bursty regime, not one
    // transient.
    let diurnal = base
        .clone()
        .with_arrivals(ArrivalProcess::Diurnal { period_secs: 2_000.0, amplitude: 0.8 })
        .generate(SEED);
    let spike = base
        .with_arrivals(ArrivalProcess::Spike {
            period_secs: 2_000.0,
            burst_fraction: 0.1,
            boost: 6.0,
        })
        .generate(SEED);

    let event_totals = [
        ("scenario/100k_diurnal/indexed", simulate::<IndexedEventQueue>(&diurnal)),
        ("scenario/100k_diurnal/binheap", simulate::<BinaryHeapEventQueue>(&diurnal)),
        ("scenario/100k_spike/indexed", simulate::<IndexedEventQueue>(&spike)),
        ("scenario/100k_spike/binheap", simulate::<BinaryHeapEventQueue>(&spike)),
    ];
    let events_of = |id: &str| {
        event_totals.iter().find(|(b, _)| *b == id).map(|&(_, e)| e).expect("cell counted")
    };

    criterion.bench_function("scenario/100k_diurnal/indexed", |b| {
        b.iter(|| simulate::<IndexedEventQueue>(&diurnal))
    });
    criterion.bench_function("scenario/100k_diurnal/binheap", |b| {
        b.iter(|| simulate::<BinaryHeapEventQueue>(&diurnal))
    });
    criterion.bench_function("scenario/100k_spike/indexed", |b| {
        b.iter(|| simulate::<IndexedEventQueue>(&spike))
    });
    criterion.bench_function("scenario/100k_spike/binheap", |b| {
        b.iter(|| simulate::<BinaryHeapEventQueue>(&spike))
    });

    let mean_of = |id: &str| criterion.results().iter().find(|r| r.id == id).map(|r| r.mean_ns);
    let cells = [
        ("scenario/100k_diurnal/indexed", "indexed", "diurnal"),
        ("scenario/100k_diurnal/binheap", "binheap", "diurnal"),
        ("scenario/100k_spike/indexed", "indexed", "spike"),
        ("scenario/100k_spike/binheap", "binheap", "spike"),
    ];

    let results: Vec<BenchRecord> = cells
        .into_iter()
        .filter_map(|(bench, queue, trace)| {
            let ns_per_iter = mean_of(bench)?;
            let events = events_of(bench);
            // The gated metric: on each bursty trace, the indexed cell
            // carries its in-run speedup over the heap cell.
            let ratio = (queue == "indexed")
                .then(|| {
                    mean_of(&bench.replace("indexed", "binheap")).map(|heap| heap / ns_per_iter)
                })
                .flatten();
            Some(BenchRecord {
                bench: bench.to_string(),
                group: "scenario".to_string(),
                unit: "events_per_sec".to_string(),
                value: events as f64 / (ns_per_iter * 1e-9),
                ratio,
                ratio_kind: if ratio.is_some() {
                    "speedup_vs_binheap".to_string()
                } else {
                    String::new()
                },
                extras: vec![
                    ("events".to_string(), events as f64),
                    ("jobs".to_string(), NUM_JOBS as f64),
                    ("ns_per_iter".to_string(), ns_per_iter),
                ],
                tags: vec![
                    ("queue".to_string(), queue.to_string()),
                    ("trace".to_string(), trace.to_string()),
                ],
            })
        })
        .collect();

    for r in &results {
        println!(
            "{}: {:.0} events/sec ({} events{})",
            r.bench,
            r.value,
            r.extra("events").unwrap_or(0.0) as u64,
            r.ratio.map(|x| format!(", {x:.2}x vs binheap")).unwrap_or_default()
        );
    }

    let report = BenchReport {
        quick,
        host: format!("{} core(s)", std::thread::available_parallelism().map_or(1, |n| n.get())),
        results,
    };
    let path = std::env::var("MRSCH_BENCH_JSON").unwrap_or_else(|_| {
        format!("{}/../../results/BENCH_scenario.json", env!("CARGO_MANIFEST_DIR"))
    });
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => {
            println!("scenario report ({SCHEMA}): {path} ({} records)", report.results.len())
        }
        Err(e) => eprintln!("scenario report: failed to write {path}: {e}"),
    }
}
