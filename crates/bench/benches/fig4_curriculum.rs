//! Bench + regeneration of Fig. 4 (curriculum orderings).
//!
//! Prints the six loss curves at bench scale, then measures the cost of
//! one training episode on each job-set kind.

use criterion::{criterion_group, criterion_main, Criterion};
use mrsch::prelude::*;
use mrsch_bench::bench_scale;
use mrsch_experiments::fig4;
use mrsch_workload::jobset::{sampled_jobset, synthetic_jobset};
use mrsch_workload::split::paper_split;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let curves = fig4::run(&scale, 17);
    fig4::print(&curves);

    // Bench a single training episode per job-set kind.
    let spec = WorkloadSpec::s1();
    let system = scale.base_system();
    let trace = scale.base_trace(17);
    let split = paper_split(&trace);
    let sets = [
        ("sampled", sampled_jobset(&split.train, scale.jobs_per_set, 5)),
        ("real", split.train[..scale.jobs_per_set.min(split.train.len())].to_vec()),
        ("synthetic", synthetic_jobset(&scale.trace_config(), scale.jobs_per_set, 5)),
    ];
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for (label, set) in sets {
        let jobs = spec.build(&set, &system, 9);
        group.bench_function(format!("train_episode_{label}"), |b| {
            b.iter_with_setup(
                || {
                    MrschBuilder::new(system.clone(), scale.sim_params())
                        .seed(1)
                        .batches_per_episode(scale.batches_per_episode)
                        .build()
                },
                |mut agent| agent.train_episode(&jobs),
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
