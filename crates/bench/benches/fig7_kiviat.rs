//! Bench + regeneration of Fig. 7 (Kiviat charts).
//!
//! Prints the normalized charts for one workload at bench scale and
//! measures the normalization itself over a realistic input size.

use criterion::{criterion_group, criterion_main, Criterion};
use mrsch_bench::bench_scale;
use mrsch_experiments::comparison::run_workload;
use mrsch_experiments::{fig7, kiviat};
use mrsch_workload::suite::WorkloadSpec;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let results = run_workload(&WorkloadSpec::s3(), &scale, 2022);
    let charts = fig7::run(&results);
    fig7::print(&charts);

    // Bench the normalization on synthetic 4-method x 4-metric data.
    let methods: Vec<String> =
        ["MRSch", "Optimization", "Scalar RL", "Heuristic"].iter().map(|s| s.to_string()).collect();
    let raw = vec![
        vec![0.92, 0.55, 1.2, 4.1],
        vec![0.85, 0.52, 1.9, 5.3],
        vec![0.80, 0.48, 2.4, 6.8],
        vec![0.74, 0.40, 3.1, 8.9],
    ];
    c.bench_function("fig7/kiviat_normalize", |b| {
        b.iter(|| kiviat::normalize(&methods, &raw, &[true, true, false, false]))
    });
    c.bench_function("fig7/polygon_area", |b| {
        b.iter(|| kiviat::polygon_area(&[0.9, 0.8, 1.0, 0.7]))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
