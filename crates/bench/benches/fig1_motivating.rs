//! Bench + regeneration of Fig. 1 (motivating example).

use criterion::{criterion_group, criterion_main, Criterion};
use mrsch_experiments::fig1;

fn bench(c: &mut Criterion) {
    // Regenerate the figure's data once.
    let result = fig1::run();
    fig1::print(&result);
    assert_eq!(result.fixed_weight_makespan_h, 3.0);
    assert_eq!(result.ideal_makespan_h, 2.0);

    c.bench_function("fig1/motivating_example", |b| b.iter(fig1::run));
}

criterion_group!(benches, bench);
criterion_main!(benches);
