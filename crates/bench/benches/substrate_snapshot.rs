//! Substrate bench: simulator checkpoint/restore on a million-job state.
//!
//! Steps a seeded disrupted 1M-job [`StressConfig`] run (cancels,
//! walltime overruns, a node-drain episode, a tick chain) to the middle
//! of its event stream, then measures three things on that state:
//!
//! * `snapshot` — serializing the live simulator with
//!   [`Simulator::snapshot`] (reported as MB/s),
//! * `restore` — reviving it with [`Simulator::restore`] (MB/s),
//! * `replay_prefix` — the alternative a crashed study pays without
//!   checkpoints: re-simulating from scratch up to the same event
//!   boundary.
//!
//! The gated, host-speed-independent metric is the restore cell's
//! **in-run `speedup_vs_replay`** (replay ns / restore ns): restoring a
//! checkpoint must stay dramatically cheaper than re-running the prefix,
//! or checkpointing has lost its point.
//!
//! Before measuring, the bench re-asserts the crash drill in-run, at two
//! scales: the 100k-job kill-restore (both event-queue implementations,
//! killed mid-drain, restored, run to completion, reports compared `==`
//! to an uninterrupted reference) and bit-identical continuation of the
//! measured 1M-job state itself. A divergence fails the bench before any
//! number is reported.
//!
//! Env knobs: `MRSCH_BENCH_QUICK=1` shrinks the measurement budget for
//! CI; `MRSCH_BENCH_JSON=path` redirects the report (default
//! `results/BENCH_snapshot.json`, schema `mrsch-bench/v2`).

use criterion::Criterion;
use mrsch_bench::report::{BenchRecord, BenchReport, SCHEMA};
use mrsch_workload::disruption::{DisruptionConfig, DrainSpec};
use mrsch_workload::StressConfig;
use mrsim::policy::HeadOfQueue;
use mrsim::{
    BinaryHeapEventQueue, EventKind, EventQueue, IndexedEventQueue, InjectedEvent, Job, SimParams,
    SimReport, SimTime, Simulator, SystemConfig,
};
use std::time::Duration;

const NODES: u64 = 256;
const BB: u64 = 32;
const SEED: u64 = 20_220_517;
/// The acceptance-scale state: one million jobs.
const NUM_JOBS: usize = 1_000_000;
/// The in-run crash drill's trace size.
const DRILL_JOBS: usize = 100_000;

fn system() -> SystemConfig {
    SystemConfig::two_resource(NODES, BB)
}

fn params() -> SimParams {
    SimParams { enforce_walltime: true, tick: Some(900), ..SimParams::new(10, true) }
}

/// A seeded disrupted trace: jobs plus injected cancel/overrun/drain
/// events, same recipe as the event-engine bench.
fn disrupted(n: usize) -> (Vec<Job>, Vec<InjectedEvent>) {
    let clean = StressConfig::engine(n, vec![NODES, BB]).generate(SEED);
    let span = clean.last().expect("nonempty trace").submit;
    let disruptions = DisruptionConfig {
        cancel_fraction: 0.05,
        overrun_fraction: 0.05,
        overrun_factor: 1.5,
        drains: vec![DrainSpec { resource: 0, fraction: 0.25, at: span / 4, duration: span / 4 }],
    };
    let trace = disruptions.synthesize(&clean, &system(), SEED ^ 0xD15);
    (trace.jobs, trace.events)
}

fn fresh<Q: EventQueue>(jobs: &[Job], events: &[InjectedEvent]) -> Simulator<Q> {
    let mut sim = Simulator::<Q>::with_queue(system(), jobs.to_vec(), params())
        .expect("stress trace is valid");
    sim.inject_all(events).expect("injected events are valid");
    sim
}

/// Step a fresh simulator through exactly `k` event batches.
fn replay_prefix<Q: EventQueue>(jobs: &[Job], events: &[InjectedEvent], k: u64) -> Simulator<Q> {
    let mut sim = fresh::<Q>(jobs, events);
    let mut policy = HeadOfQueue;
    for _ in 0..k {
        if !sim.step(&mut policy) {
            break;
        }
    }
    sim
}

fn finish<Q: EventQueue>(mut sim: Simulator<Q>) -> SimReport {
    let mut policy = HeadOfQueue;
    while sim.step(&mut policy) {}
    sim.final_report()
}

/// The drain window `[start, end)` of an injected event stream.
fn drain_window(events: &[InjectedEvent]) -> (SimTime, SimTime) {
    let (mut start, mut end) = (SimTime::MAX, 0);
    for ev in events {
        if let EventKind::CapacityChange { delta, .. } = ev.kind {
            if delta < 0 {
                start = start.min(ev.time);
            } else {
                end = end.max(ev.time);
            }
        }
    }
    assert!(start < end, "trace carries a drain episode");
    (start, end)
}

/// The 100k-job kill-restore drill, re-asserted in-run: crash the run
/// mid-drain under queue impl `Q`, restore the in-memory snapshot, and
/// the finished report must equal the uninterrupted reference `==`.
fn crash_drill<Q: EventQueue>(jobs: &[Job], events: &[InjectedEvent], reference: &SimReport) {
    let (drain_start, drain_end) = drain_window(events);
    let mut sim = fresh::<Q>(jobs, events);
    let mut policy = HeadOfQueue;
    while sim.step(&mut policy) {
        if sim.now() > drain_start && sim.now() < drain_end {
            break;
        }
    }
    assert!(
        sim.now() > drain_start && sim.now() < drain_end,
        "drill killed the run mid-drain (t={})",
        sim.now()
    );
    let bytes = sim.snapshot();
    drop(sim); // the crash: only the snapshot bytes survive
    let restored: Simulator<Q> = Simulator::restore(&bytes).expect("snapshot restores");
    assert_eq!(
        &finish(restored),
        reference,
        "restored run diverged from the uninterrupted reference"
    );
}

fn main() {
    let quick = std::env::var_os("MRSCH_BENCH_QUICK").is_some();
    let mut criterion = Criterion::default().configure_from_args();
    criterion = if quick {
        criterion.sample_size(2).measurement_time(Duration::from_millis(200))
    } else {
        criterion.sample_size(5).measurement_time(Duration::from_secs(10))
    };

    // In-run crash drill first: no numbers from a codec that diverges.
    println!("crash drill: {DRILL_JOBS}-job disrupted kill-restore (both queues)...");
    let (drill_jobs, drill_events) = disrupted(DRILL_JOBS);
    let drill_reference = finish(fresh::<IndexedEventQueue>(&drill_jobs, &drill_events));
    assert!(drill_reference.jobs_cancelled > 0, "drill cancels landed");
    assert!(drill_reference.jobs_killed > 0, "drill walltime kills landed");
    crash_drill::<IndexedEventQueue>(&drill_jobs, &drill_events, &drill_reference);
    crash_drill::<BinaryHeapEventQueue>(&drill_jobs, &drill_events, &drill_reference);
    println!("crash drill: restored reports bit-identical under indexed + binheap queues");

    println!("generating the {NUM_JOBS}-job disrupted stress trace (seed {SEED})...");
    let (jobs, events) = disrupted(NUM_JOBS);

    // The measured boundary: half the run's event batches.
    let mut probe = fresh::<IndexedEventQueue>(&jobs, &events);
    let mut steps = 0u64;
    let mut policy = HeadOfQueue;
    while probe.step(&mut policy) {
        steps += 1;
    }
    let k = steps / 2;
    let mid = replay_prefix::<IndexedEventQueue>(&jobs, &events, k);
    let bytes = mid.snapshot();
    let mb = bytes.len() as f64 / 1e6;
    println!(
        "mid-run state: {k}/{steps} event batches, t={}, snapshot {:.1} MB",
        mid.now(),
        mb
    );

    // Bit-identical continuation of the measured state itself.
    let continued = finish(replay_prefix::<IndexedEventQueue>(&jobs, &events, k));
    let restored: Simulator<IndexedEventQueue> =
        Simulator::restore(&bytes).expect("1M-job snapshot restores");
    assert_eq!(
        finish(restored),
        continued,
        "1M-job restore diverged from uninterrupted continuation"
    );
    println!("1M-job restore continues bit-identically");

    criterion.bench_function("snapshot/1m_disrupted/replay_prefix", |b| {
        b.iter(|| replay_prefix::<IndexedEventQueue>(&jobs, &events, k).now())
    });
    criterion.bench_function("snapshot/1m_disrupted/snapshot", |b| {
        b.iter(|| mid.snapshot().len())
    });
    criterion.bench_function("snapshot/1m_disrupted/restore", |b| {
        b.iter(|| {
            let sim: Simulator<IndexedEventQueue> =
                Simulator::restore(&bytes).expect("snapshot restores");
            sim.now()
        })
    });

    let mean_of = |id: &str| {
        criterion
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .expect("cell measured")
    };
    let replay_ns = mean_of("snapshot/1m_disrupted/replay_prefix");
    let snapshot_ns = mean_of("snapshot/1m_disrupted/snapshot");
    let restore_ns = mean_of("snapshot/1m_disrupted/restore");
    let mb_per_sec = |ns: f64| mb / (ns * 1e-9);

    let base_extras = |ns: f64| {
        vec![
            ("bytes".to_string(), bytes.len() as f64),
            ("ns_per_iter".to_string(), ns),
            ("jobs".to_string(), NUM_JOBS as f64),
            ("steps_at_snapshot".to_string(), k as f64),
        ]
    };
    let results = vec![
        BenchRecord {
            bench: "snapshot/1m_disrupted/replay_prefix".to_string(),
            group: "snapshot".to_string(),
            unit: "ns_per_iter".to_string(),
            value: replay_ns,
            ratio: None,
            ratio_kind: String::new(),
            extras: base_extras(replay_ns),
            tags: vec![("queue".to_string(), "indexed".to_string())],
        },
        BenchRecord {
            bench: "snapshot/1m_disrupted/snapshot".to_string(),
            group: "snapshot".to_string(),
            unit: "mb_per_sec".to_string(),
            value: mb_per_sec(snapshot_ns),
            ratio: None,
            ratio_kind: String::new(),
            extras: base_extras(snapshot_ns),
            tags: vec![("queue".to_string(), "indexed".to_string())],
        },
        BenchRecord {
            // The gated cell: restoring must beat re-simulating the
            // prefix by a wide, host-independent margin.
            bench: "snapshot/1m_disrupted/restore".to_string(),
            group: "snapshot".to_string(),
            unit: "mb_per_sec".to_string(),
            value: mb_per_sec(restore_ns),
            ratio: Some(replay_ns / restore_ns),
            ratio_kind: "speedup_vs_replay".to_string(),
            extras: {
                let mut e = base_extras(restore_ns);
                e.push(("replay_ns_per_iter".to_string(), replay_ns));
                e
            },
            tags: vec![("queue".to_string(), "indexed".to_string())],
        },
    ];

    for r in &results {
        match r.unit.as_str() {
            "mb_per_sec" => println!(
                "{}: {:.0} MB/s ({:.1} MB in {:.2} ms{})",
                r.bench,
                r.value,
                mb,
                r.extra("ns_per_iter").unwrap_or(0.0) / 1e6,
                r.ratio.map(|x| format!(", {x:.0}x vs replay")).unwrap_or_default()
            ),
            _ => println!("{}: {:.2} ms per replayed prefix", r.bench, r.value / 1e6),
        }
    }

    let report = BenchReport {
        quick,
        host: format!("{} core(s)", std::thread::available_parallelism().map_or(1, |n| n.get())),
        results,
    };
    let path = std::env::var("MRSCH_BENCH_JSON").unwrap_or_else(|_| {
        format!("{}/../../results/BENCH_snapshot.json", env!("CARGO_MANIFEST_DIR"))
    });
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => {
            println!("snapshot report ({SCHEMA}): {path} ({} records)", report.results.len())
        }
        Err(e) => eprintln!("snapshot report: failed to write {path}: {e}"),
    }
}
