//! Bench + regeneration of Fig. 9 (box plot of rBB across S1-S5).

use criterion::{criterion_group, criterion_main, Criterion};
use mrsch_bench::bench_scale;
use mrsch_experiments::fig9;
use mrsch_linalg::stats::box_summary;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let boxes = fig9::run(&scale, 2022);
    fig9::print(&boxes);

    // Bench the summary statistic on a goal-log-sized series.
    let series: Vec<f64> = (0..5_000).map(|i| 0.5 + 0.4 * ((i as f64) * 0.01).sin()).collect();
    c.bench_function("fig9/box_summary_5k", |b| b.iter(|| box_summary(&series)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
