//! Bench + regeneration of Fig. 5 (system-level metrics).
//!
//! Runs the four methods on one representative workload (S4) at bench
//! scale, prints the Fig. 5 rows, then measures each method's full
//! evaluation run.

use criterion::{criterion_group, criterion_main, Criterion};
use mrsch::prelude::*;
use mrsch_baselines::{FcfsPolicy, GaPolicy};
use mrsch_bench::{bench_eval_jobs, bench_scale, bench_trained_mrsch};
use mrsch_experiments::comparison::run_workload;
use mrsch_experiments::fig5;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let results = run_workload(&WorkloadSpec::s4(), &scale, 2022);
    fig5::print(&results);

    let spec = WorkloadSpec::s4();
    let system = spec.system_for(&scale.base_system());
    let jobs = bench_eval_jobs(&spec, &scale, 2022);
    let mut mrsch = bench_trained_mrsch(&spec, &scale, 2022);

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("evaluate_mrsch", |b| b.iter(|| mrsch.evaluate(&jobs)));
    group.bench_function("evaluate_fcfs", |b| {
        b.iter(|| {
            Simulator::new(system.clone(), jobs.clone(), scale.sim_params())
                .unwrap()
                .run(&mut FcfsPolicy::default())
        })
    });
    group.bench_function("evaluate_ga", |b| {
        b.iter(|| {
            Simulator::new(system.clone(), jobs.clone(), scale.sim_params())
                .unwrap()
                .run(&mut GaPolicy::with_seed(1))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
