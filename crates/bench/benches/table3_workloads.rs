//! Bench + regeneration of Table III (workload suite materialization).

use criterion::{criterion_group, criterion_main, Criterion};
use mrsch_bench::bench_scale;
use mrsch_experiments::table3;
use mrsch_workload::suite::WorkloadSpec;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let stats = table3::run(&scale, 2022);
    table3::print(&stats);

    let base = scale.base_trace(2022);
    let system = scale.base_system();
    c.bench_function("table3/build_s4_workload", |b| {
        b.iter(|| WorkloadSpec::s4().build(&base, &system, 7))
    });
    c.bench_function("table3/full_suite_stats", |b| {
        b.iter(|| table3::run(&scale, 2022))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
