//! Bench + regeneration of Fig. 10 (three-resource case study).
//!
//! Prints the five-axis Kiviat chart for S9 at bench scale and benches a
//! three-resource MRSch evaluation (the per-decision cost grows with the
//! third resource's unit count).

use criterion::{criterion_group, criterion_main, Criterion};
use mrsch::prelude::*;
use mrsch_bench::{bench_eval_jobs, bench_scale, bench_trained_mrsch};
use mrsch_experiments::comparison::run_workload;
use mrsch_experiments::fig10;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let results = run_workload(&WorkloadSpec::s9(), &scale, 2022);
    let charts = fig10::charts_from(&results);
    fig10::print(&charts);

    let spec = WorkloadSpec::s9();
    let jobs = bench_eval_jobs(&spec, &scale, 2022);
    let mut agent = bench_trained_mrsch(&spec, &scale, 2022);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("evaluate_three_resource_s9", |b| {
        b.iter(|| agent.evaluate(&jobs))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
