//! Bench + regeneration of Fig. 8 (rBB fluctuation under S5).
//!
//! Prints the 12-hour rBB series summary at bench scale and measures the
//! goal-logging evaluation run.

use criterion::{criterion_group, criterion_main, Criterion};
use mrsch::prelude::*;
use mrsch_bench::{bench_eval_jobs, bench_scale, bench_trained_mrsch};
use mrsch_experiments::fig8;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let series = fig8::run(&scale, 2022);
    println!(
        "Fig. 8 (bench scale): {} samples in the 12-hour window",
        series.samples.len()
    );
    let values: Vec<f64> = series.samples.iter().map(|(_, r)| *r).collect();
    if let Some(s) = mrsch_linalg::stats::box_summary(&values) {
        println!("  rBB range [{:.3}, {:.3}], mean {:.3}", s.min, s.max, s.mean);
    }

    let spec = WorkloadSpec::s5();
    let jobs = bench_eval_jobs(&spec, &scale, 2022);
    let mut agent = bench_trained_mrsch(&spec, &scale, 2022);
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("evaluate_with_goal_log_s5", |b| {
        b.iter(|| agent.evaluate_with_goal_log(&jobs))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
