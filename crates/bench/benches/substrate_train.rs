//! Substrate bench: training throughput and the trained-policy cache.
//!
//! Two families of cells, written to `results/BENCH_train.json` (schema
//! `mrsch-bench/v2`) and gated against the committed baseline:
//!
//! * **barrier vs pipelined curriculum training** — the same curriculum
//!   trained three ways with two rollout workers: the round-barrier
//!   trainer, the lockstep pipeline (staleness 0 — **asserted
//!   bit-identical** to the barrier checkpoint in-run), and the
//!   bounded-staleness pipeline (`max_staleness = 2`), whose
//!   episodes/sec carries the **in-run** `speedup_vs_barrier` ratio.
//!   Rollout can only overlap learning with real cores, so the 1.2×
//!   acceptance floor is enforced by `bench_gate
//!   --require-pipeline-scaling`, which CI enables on multi-core
//!   runners only (the thread-scaling precedent).
//! * **cold vs warm policy cache** — the same `EvalPlan` grid (mrsch ×
//!   clean × seeds) run twice against one content-addressed cache
//!   directory. The cold pass trains and stores every cell; the warm
//!   pass must replay from the cache with **zero retrains** and a
//!   **bit-identical grid** (both asserted), and its grid-seconds carry
//!   the in-run `speedup_vs_cold` ratio, **self-asserted ≥ 3×** — a
//!   cache hit skips training entirely, so the floor holds on any host.
//!
//! Env knobs: `MRSCH_BENCH_QUICK=1` shrinks the measurement budget for
//! CI; `MRSCH_BENCH_JSON=path` redirects the report (default
//! `results/BENCH_train.json`).

use mrsch::prelude::*;
use mrsch_bench::report::{BenchRecord, BenchReport, PIPELINE_BENCH, SCHEMA};
use mrsch_dfp::DfpConfig;
use mrsch_eval::{EvalPlan, PolicyCache, PolicySpec};
use mrsch_linalg::kernel_isa;
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 20_220_517;

/// Small-but-real DFP network: big enough that gradient batches
/// dominate an episode, small enough for CI quick mode.
fn bench_dfp_config() -> DfpConfig {
    let mut cfg = DfpConfig::scaled(1, 2, 4);
    cfg.state_hidden = vec![32];
    cfg.state_embed = 16;
    cfg.io_hidden = 16;
    cfg.io_embed = 8;
    cfg.stream_hidden = 32;
    cfg.batch_size = 8;
    cfg
}

fn bench_system() -> SystemConfig {
    SystemConfig::two_resource(16, 8)
}

fn bench_scenario(jobs: usize, seed: u64) -> Scenario {
    Scenario::new(
        "clean",
        JobSource::Theta(ThetaConfig {
            machine_nodes: 16,
            mean_interarrival: 120.0,
            ..ThetaConfig::scaled(jobs)
        }),
        WorkloadSpec::s1(),
        SimParams::new(4, true),
    )
    .with_seed(seed)
}

fn main() {
    let quick = std::env::var_os("MRSCH_BENCH_QUICK").is_some();
    let (jobs, per_phase) = if quick { (30, 3) } else { (80, 8) };

    // --- barrier vs pipelined curriculum training ----------------------
    let curriculum = Curriculum::disruption_hardening(
        bench_scenario(jobs, SEED ^ 5),
        DisruptionConfig { cancel_fraction: 0.3, ..Default::default() },
        DisruptionConfig::node_drain(0.25, 600, 2400),
        per_phase,
    );
    let total_episodes = (3 * per_phase) as f64;
    let train = |trainer: TrainerConfig| {
        let mut agent = MrschBuilder::new(bench_system(), SimParams::new(4, true))
            .seed(SEED)
            .trainer(trainer)
            .dfp_config(bench_dfp_config())
            .build();
        let t0 = Instant::now();
        agent.train_with_curriculum(&curriculum);
        (t0.elapsed().as_secs_f64(), agent.agent_mut().network_mut().save_checkpoint())
    };

    let base = TrainerConfig::default().workers(2).round_size(2).batches_per_episode(4);
    let (barrier_s, barrier_ckpt) = train(base.clone());
    let (lockstep_s, lockstep_ckpt) = train(base.clone().pipeline(PipelineConfig::lockstep()));
    assert_eq!(
        barrier_ckpt.as_ref(),
        lockstep_ckpt.as_ref(),
        "lockstep pipeline must be bit-identical to the barrier trainer"
    );
    let (pipelined_s, _) = train(base.clone().pipeline(PipelineConfig::bounded_staleness(2)));

    println!(
        "train/curriculum ({:.0} episodes): barrier {:.2}s, lockstep {:.2}s, \
         pipelined(s=2) {:.2}s ({:.2}x vs barrier)",
        total_episodes,
        barrier_s,
        lockstep_s,
        pipelined_s,
        barrier_s / pipelined_s
    );

    // --- cold vs warm policy cache -------------------------------------
    let seeds: Vec<u64> = if quick { vec![1] } else { vec![1, 2] };
    let cells = seeds.len();
    let cache_dir = std::env::temp_dir()
        .join(format!("mrsch_bench_policy_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let grid_run = |cache: Arc<PolicyCache>| {
        let plan = EvalPlan::new(
            bench_system(),
            vec![PolicySpec::mrsch()],
            vec![bench_scenario(jobs, SEED ^ 9)],
            seeds.clone(),
        )
        .train_episodes(per_phase)
        .trainer(TrainerConfig::default())
        .dfp_config(bench_dfp_config())
        .policy_cache(cache);
        let t0 = Instant::now();
        let grid = plan.run();
        (t0.elapsed().as_secs_f64(), grid)
    };

    let cold_cache = Arc::new(PolicyCache::new(&cache_dir));
    let (cold_s, cold_grid) = grid_run(cold_cache.clone());
    assert_eq!(cold_cache.misses(), cells, "cold pass trains every cell");
    assert_eq!(cold_cache.stores(), cells, "cold pass stores every cell");

    let warm_cache = Arc::new(PolicyCache::new(&cache_dir));
    let (warm_s, warm_grid) = grid_run(warm_cache.clone());
    assert_eq!(warm_cache.misses(), 0, "warm pass must not retrain");
    assert_eq!(warm_cache.hits(), cells, "warm pass replays every cell");
    assert_eq!(
        cold_grid.cells.len(),
        warm_grid.cells.len(),
        "cache replay covers the full grid"
    );
    for (c, w) in cold_grid.cells.iter().zip(&warm_grid.cells) {
        assert_eq!(c.report, w.report, "cache hit must replay bit-identically");
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    let warm_speedup = cold_s / warm_s;
    assert!(
        warm_speedup >= 3.0,
        "warm cache ran only {warm_speedup:.2}x faster than cold (< 3x floor): \
         cold {cold_s:.2}s, warm {warm_s:.2}s"
    );
    println!(
        "train/policy_cache ({cells} cell(s)): cold {cold_s:.2}s, warm {warm_s:.2}s \
         ({warm_speedup:.2}x, zero retrains)"
    );

    // --- report --------------------------------------------------------
    let train_cell = |bench: &str, secs: f64, ratio: Option<f64>, trainer: &str| BenchRecord {
        bench: bench.to_string(),
        group: "train".to_string(),
        unit: "episodes_per_sec".to_string(),
        value: total_episodes / secs,
        ratio,
        ratio_kind: if ratio.is_some() { "speedup_vs_barrier".to_string() } else { String::new() },
        extras: vec![
            ("seconds".to_string(), secs),
            ("episodes".to_string(), total_episodes),
            ("workers".to_string(), 2.0),
        ],
        tags: vec![("trainer".to_string(), trainer.to_string())],
    };
    let results = vec![
        train_cell("train/curriculum/barrier_w2", barrier_s, None, "barrier"),
        train_cell("train/curriculum/lockstep_w2", lockstep_s, None, "pipeline_lockstep"),
        // The gated throughput cell: bounded-staleness pipeline speedup
        // over the barrier trainer, same curriculum, same process.
        train_cell(
            PIPELINE_BENCH,
            pipelined_s,
            Some(barrier_s / pipelined_s),
            "pipeline_staleness2",
        ),
        BenchRecord {
            bench: "train/policy_cache/cold".to_string(),
            group: "train".to_string(),
            unit: "grid_seconds".to_string(),
            value: cold_s,
            ratio: None,
            ratio_kind: String::new(),
            extras: vec![("cells".to_string(), cells as f64)],
            tags: vec![("cache".to_string(), "cold".to_string())],
        },
        // Gated (the committed baseline pins this ratio at 3.75x, so the
        // gate's 20% tolerance lands exactly on the 3x acceptance floor;
        // the in-run assert above enforces the same floor regardless).
        BenchRecord {
            bench: "train/policy_cache/warm".to_string(),
            group: "train".to_string(),
            unit: "grid_seconds".to_string(),
            value: warm_s,
            ratio: Some(warm_speedup),
            ratio_kind: "speedup_vs_cold".to_string(),
            extras: vec![
                ("cells".to_string(), cells as f64),
                ("hits".to_string(), warm_cache.hits() as f64),
                ("retrains".to_string(), warm_cache.misses() as f64),
            ],
            tags: vec![("cache".to_string(), "warm".to_string())],
        },
    ];

    let out = BenchReport { quick, host: kernel_isa().to_string(), results };
    let path = std::env::var("MRSCH_BENCH_JSON").unwrap_or_else(|_| {
        format!("{}/../../results/BENCH_train.json", env!("CARGO_MANIFEST_DIR"))
    });
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, out.to_json()) {
        Ok(()) => println!("train report ({SCHEMA}): {path} ({} records)", out.results.len()),
        Err(e) => eprintln!("train report: failed to write {path}: {e}"),
    }
}
