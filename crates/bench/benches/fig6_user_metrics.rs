//! Bench + regeneration of Fig. 6 (user-level metrics).
//!
//! Prints the Fig. 6 rows for S5 (the paper's most contended two-resource
//! workload) and benches the end-to-end metric extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use mrsch::prelude::*;
use mrsch_bench::{bench_eval_jobs, bench_scale, bench_trained_mrsch};
use mrsch_experiments::comparison::run_workload;
use mrsch_experiments::fig6;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let results = run_workload(&WorkloadSpec::s5(), &scale, 2022);
    fig6::print(&results);
    let (wait_pct, sd_pct) = fig6::mrsch_improvements(&results);
    println!("MRSch improvements on S5: wait -{wait_pct:.1}%, slowdown -{sd_pct:.1}%");

    let spec = WorkloadSpec::s5();
    let jobs = bench_eval_jobs(&spec, &scale, 2022);
    let mut mrsch = bench_trained_mrsch(&spec, &scale, 2022);
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("evaluate_and_aggregate_s5", |b| {
        b.iter(|| {
            let r = mrsch.evaluate(&jobs);
            (r.avg_wait_hours(), r.avg_slowdown)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
