//! General machine-readable benchmark reports (`mrsch-bench/v2`) and the
//! ratio-based CI regression gate.
//!
//! The v1 schema (`mrsch-bench-gemm/v1`, [`crate::gemm_report`]) hard-wired
//! GEMM fields (`m`/`k`/`n`/`gflops`). v2 generalizes to *any* benchmark
//! family — the GEMM sweep and the event-engine throughput bench both
//! emit it:
//!
//! * `bench` — stable id, the gate's join key,
//! * `group` — benchmark family (`gemm`, `sim`, ...),
//! * `unit` + `value` — the raw measurement (`ns_per_iter`,
//!   `events_per_sec`, ...), host-speed dependent, never gated,
//! * `ratio` + `ratio_kind` — an **in-run** comparison against a
//!   reference implementation measured in the same process
//!   (`speedup_vs_blocked` for GEMM, `speedup_vs_binheap` for the event
//!   engine). Host-speed independent, and exactly what the gate checks,
//! * `extras` — free-form numeric facts (`gflops`, `speedup_vs_serial`),
//! * `tags` — free-form string facts (`op`, `policy`, `queue`).
//!
//! [`BenchReport::parse_any`] sniffs the schema tag and transparently
//! up-converts v1 documents, so the committed v1 GEMM baseline keeps
//! gating new v2 reports without regeneration.

use std::fmt::Write as _;

use crate::gemm_report::{self, json, GateOutcome, GemmReport};

/// Schema tag stamped into every v2 report.
pub const SCHEMA: &str = "mrsch-bench/v2";

/// One measured benchmark cell.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Stable benchmark id (the gate's join key).
    pub bench: String,
    /// Benchmark family (`gemm`, `sim`, ...).
    pub group: String,
    /// Unit of `value` (`ns_per_iter`, `events_per_sec`, ...).
    pub unit: String,
    /// The raw measurement, in `unit`.
    pub value: f64,
    /// In-run ratio against a reference implementation; the gate's
    /// tracked metric (higher is better).
    pub ratio: Option<f64>,
    /// What `ratio` compares against (`speedup_vs_blocked`, ...).
    /// Empty when `ratio` is `None`.
    pub ratio_kind: String,
    /// Additional numeric facts, insertion-ordered.
    pub extras: Vec<(String, f64)>,
    /// Additional string facts, insertion-ordered.
    pub tags: Vec<(String, String)>,
}

impl BenchRecord {
    /// Look up an extra by key.
    pub fn extra(&self, key: &str) -> Option<f64> {
        self.extras.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Look up a tag by key.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A full v2 bench run.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// True when the run used the reduced quick-mode budget.
    pub quick: bool,
    /// Host/kernel description (e.g. [`mrsch_linalg::kernel_isa`]).
    pub host: String,
    /// All measured cells.
    pub results: Vec<BenchRecord>,
}

impl BenchReport {
    /// Look up a record by its stable bench id.
    pub fn record(&self, bench: &str) -> Option<&BenchRecord> {
        self.results.iter().find(|r| r.bench == bench)
    }

    /// Serialize to the `mrsch-bench/v2` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"host\": \"{}\",", escape(&self.host));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"bench\": \"{}\", \"group\": \"{}\", \"unit\": \"{}\", \"value\": {}",
                escape(&r.bench),
                escape(&r.group),
                escape(&r.unit),
                fmt_num(r.value),
            );
            if let Some(ratio) = r.ratio {
                let _ = write!(
                    out,
                    ", \"ratio\": {}, \"ratio_kind\": \"{}\"",
                    fmt_num(ratio),
                    escape(&r.ratio_kind)
                );
            }
            if !r.extras.is_empty() {
                out.push_str(", \"extras\": {");
                for (j, (k, v)) in r.extras.iter().enumerate() {
                    let sep = if j == 0 { "" } else { ", " };
                    let _ = write!(out, "{sep}\"{}\": {}", escape(k), fmt_num(*v));
                }
                out.push('}');
            }
            if !r.tags.is_empty() {
                out.push_str(", \"tags\": {");
                for (j, (k, v)) in r.tags.iter().enumerate() {
                    let sep = if j == 0 { "" } else { ", " };
                    let _ = write!(out, "{sep}\"{}\": \"{}\"", escape(k), escape(v));
                }
                out.push('}');
            }
            out.push('}');
            out.push_str(if i + 1 < self.results.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a document of *either* schema: `mrsch-bench/v2` natively, or
    /// `mrsch-bench-gemm/v1` up-converted through [`BenchReport::from_v1`].
    pub fn parse_any(text: &str) -> Result<BenchReport, String> {
        let root = json::parse(text)?;
        match root.get("schema").and_then(json::Value::as_str) {
            Some(SCHEMA) => Self::from_value(&root),
            Some(gemm_report::SCHEMA) => Ok(Self::from_v1(&GemmReport::parse(text)?)),
            other => Err(format!(
                "unexpected schema {other:?} (want {SCHEMA:?} or {:?})",
                gemm_report::SCHEMA
            )),
        }
    }

    /// Parse a strict `mrsch-bench/v2` document.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let root = json::parse(text)?;
        let schema = root.get("schema").and_then(json::Value::as_str);
        if schema != Some(SCHEMA) {
            return Err(format!("unexpected schema {schema:?} (want {SCHEMA:?})"));
        }
        Self::from_value(&root)
    }

    fn from_value(root: &json::Value) -> Result<BenchReport, String> {
        let results = root
            .get("results")
            .and_then(json::Value::as_array)
            .ok_or("missing results array")?
            .iter()
            .map(|v| {
                let field_str = |key: &str| {
                    v.get(key)
                        .and_then(json::Value::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("record missing string field '{key}'"))
                };
                let pairs = |key: &str| -> Vec<(String, &json::Value)> {
                    match v.get(key) {
                        Some(json::Value::Obj(fields)) => {
                            fields.iter().map(|(k, val)| (k.clone(), val)).collect()
                        }
                        _ => Vec::new(),
                    }
                };
                Ok(BenchRecord {
                    bench: field_str("bench")?,
                    group: field_str("group")?,
                    unit: field_str("unit")?,
                    value: v
                        .get("value")
                        .and_then(json::Value::as_f64)
                        .ok_or("record missing numeric field 'value'")?,
                    ratio: v.get("ratio").and_then(json::Value::as_f64),
                    ratio_kind: v
                        .get("ratio_kind")
                        .and_then(json::Value::as_str)
                        .unwrap_or("")
                        .to_string(),
                    extras: pairs("extras")
                        .into_iter()
                        .filter_map(|(k, val)| val.as_f64().map(|x| (k, x)))
                        .collect(),
                    tags: pairs("tags")
                        .into_iter()
                        .filter_map(|(k, val)| val.as_str().map(|s| (k, s.to_string())))
                        .collect(),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchReport {
            quick: root.get("quick").and_then(json::Value::as_bool).unwrap_or(false),
            host: root
                .get("host")
                .and_then(json::Value::as_str)
                .unwrap_or("unknown")
                .to_string(),
            results,
        })
    }

    /// Up-convert a v1 GEMM report: `ns_per_iter` becomes the value,
    /// `speedup_vs_blocked` the gated ratio, shape and throughput land
    /// in extras, operation and policy in tags.
    pub fn from_v1(v1: &GemmReport) -> BenchReport {
        BenchReport {
            quick: v1.quick,
            host: v1.kernel_isa.clone(),
            results: v1
                .results
                .iter()
                .map(|r| BenchRecord {
                    bench: r.bench.clone(),
                    group: "gemm".to_string(),
                    unit: "ns_per_iter".to_string(),
                    value: r.ns_per_iter,
                    ratio: r.speedup_vs_blocked,
                    ratio_kind: if r.speedup_vs_blocked.is_some() {
                        "speedup_vs_blocked".to_string()
                    } else {
                        String::new()
                    },
                    extras: vec![
                        ("gflops".to_string(), r.gflops),
                        ("m".to_string(), r.m as f64),
                        ("k".to_string(), r.k as f64),
                        ("n".to_string(), r.n as f64),
                    ],
                    tags: vec![
                        ("op".to_string(), r.op.clone()),
                        ("policy".to_string(), r.policy.clone()),
                    ],
                })
                .collect(),
        }
    }
}

/// Gate `current` against `baseline`: every baseline record carrying a
/// `ratio` is tracked, and the current run must reach at least
/// `(1 - tolerance)` of the baseline's ratio. When the baseline tracks
/// the canonical GEMM shape, its absolute
/// [`gemm_report::CANONICAL_MIN_SPEEDUP`] floor applies too. Works on
/// reports of either schema (after [`BenchReport::parse_any`]).
pub fn gate(current: &BenchReport, baseline: &BenchReport, tolerance: f64) -> GateOutcome {
    let mut out = GateOutcome::default();
    for base in &baseline.results {
        let Some(base_ratio) = base.ratio else {
            continue;
        };
        let Some(cur) = current.record(&base.bench) else {
            out.failures.push(format!("{}: tracked bench missing from current run", base.bench));
            continue;
        };
        let Some(cur_ratio) = cur.ratio else {
            out.failures.push(format!("{}: current run lost the ratio measurement", base.bench));
            continue;
        };
        let kind = if cur.ratio_kind.is_empty() { "ratio" } else { &cur.ratio_kind };
        let floor = base_ratio * (1.0 - tolerance);
        let verdict = if cur_ratio >= floor { "ok" } else { "REGRESSED" };
        out.checked.push(format!(
            "{}: {} {:.2}x (baseline {:.2}x, floor {:.2}x) {}",
            base.bench, kind, cur_ratio, base_ratio, floor, verdict
        ));
        if cur_ratio < floor {
            out.failures.push(format!(
                "{}: {} {:.2}x fell below {:.2}x ({}% of baseline {:.2}x)",
                base.bench,
                kind,
                cur_ratio,
                floor,
                ((1.0 - tolerance) * 100.0).round(),
                base_ratio
            ));
        }
    }
    // The micro-kernel PR's absolute acceptance bar: enforced whenever
    // the baseline tracks the canonical shape (i.e. for GEMM baselines;
    // a sim-only baseline doesn't drag GEMM cells into its gate).
    if baseline.record(gemm_report::CANONICAL_BENCH).is_some_and(|b| b.ratio.is_some()) {
        let floor = gemm_report::CANONICAL_MIN_SPEEDUP;
        match current.record(gemm_report::CANONICAL_BENCH).and_then(|r| r.ratio) {
            Some(s) if s >= floor => out.checked.push(format!(
                "{}: absolute floor {floor:.1}x ok ({s:.2}x)",
                gemm_report::CANONICAL_BENCH
            )),
            Some(s) => out.failures.push(format!(
                "{}: {s:.2}x below the absolute {floor:.1}x floor",
                gemm_report::CANONICAL_BENCH
            )),
            None => out.failures.push(format!(
                "{}: no ratio measurement in current run",
                gemm_report::CANONICAL_BENCH
            )),
        }
    }
    out
}

/// Check in-run thread scaling (`--require-thread-scaling`): the
/// canonical threads2 GEMM cell must carry a `speedup_vs_serial` extra
/// of at least `floor`. Only meaningful on multi-core hosts — CI gates
/// behind an `nproc` check.
pub fn check_thread_scaling(current: &BenchReport, floor: f64) -> GateOutcome {
    let mut out = GateOutcome::default();
    let bench = "gemm/256x512x256/threads2";
    match current.record(bench).and_then(|r| r.extra("speedup_vs_serial")) {
        Some(s) if s >= floor => {
            out.checked.push(format!("{bench}: speedup_vs_serial {s:.2}x >= {floor:.2}x ok"));
        }
        Some(s) => out.failures.push(format!(
            "{bench}: speedup_vs_serial {s:.2}x below the {floor:.2}x thread-scaling floor"
        )),
        None => out
            .failures
            .push(format!("{bench}: no speedup_vs_serial measurement in current run")),
    }
    out
}

/// The training-bench cell whose in-run `speedup_vs_barrier` ratio the
/// `--require-pipeline-scaling` check reads.
pub const PIPELINE_BENCH: &str = "train/curriculum/pipelined_w2_s2";

/// Check in-run pipeline scaling (`--require-pipeline-scaling`): the
/// pipelined training cell must have run at least `floor` times the
/// barrier trainer's episode throughput in the same process. Rollout
/// and learning can only overlap with real parallelism, so CI gates
/// behind an `nproc` check exactly like thread scaling.
pub fn check_pipeline_scaling(current: &BenchReport, floor: f64) -> GateOutcome {
    let mut out = GateOutcome::default();
    match current.record(PIPELINE_BENCH).and_then(|r| r.ratio) {
        Some(s) if s >= floor => {
            out.checked
                .push(format!("{PIPELINE_BENCH}: speedup_vs_barrier {s:.2}x >= {floor:.2}x ok"));
        }
        Some(s) => out.failures.push(format!(
            "{PIPELINE_BENCH}: speedup_vs_barrier {s:.2}x below the {floor:.2}x pipeline-scaling floor"
        )),
        None => out
            .failures
            .push(format!("{PIPELINE_BENCH}: no speedup_vs_barrier measurement in current run")),
    }
    out
}

/// Trim float noise: integers print bare, everything else with enough
/// digits to round-trip the measurements we record.
fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x:.6}")
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_report::GemmRecord;

    fn v2_record(bench: &str, ratio: Option<f64>) -> BenchRecord {
        BenchRecord {
            bench: bench.to_string(),
            group: "sim".to_string(),
            unit: "events_per_sec".to_string(),
            value: 2_500_000.0,
            ratio,
            ratio_kind: if ratio.is_some() {
                "speedup_vs_binheap".to_string()
            } else {
                String::new()
            },
            extras: vec![("events".to_string(), 3_400_000.0)],
            tags: vec![("queue".to_string(), "indexed".to_string())],
        }
    }

    fn v2_report(cells: Vec<BenchRecord>) -> BenchReport {
        BenchReport { quick: true, host: "test".to_string(), results: cells }
    }

    #[test]
    fn v2_json_roundtrips() {
        let original = v2_report(vec![
            v2_record("sim/1m_clean/indexed", Some(1.4)),
            v2_record("sim/1m_clean/sharded4", None),
        ]);
        let parsed = BenchReport::parse(&original.to_json()).expect("own output parses");
        assert_eq!(parsed, original);
        let sniffed = BenchReport::parse_any(&original.to_json()).expect("sniffed parse");
        assert_eq!(sniffed, original);
    }

    #[test]
    fn v1_documents_up_convert_through_parse_any() {
        let v1 = GemmReport {
            quick: false,
            kernel_isa: "portable".to_string(),
            results: vec![GemmRecord {
                bench: "gemm/256x512x256/serial".to_string(),
                m: 256,
                k: 512,
                n: 256,
                op: "a_b".to_string(),
                policy: "serial".to_string(),
                ns_per_iter: 936233.0,
                gflops: 71.68,
                speedup_vs_blocked: Some(4.741),
            }],
        };
        let up = BenchReport::parse_any(&v1.to_json()).expect("v1 must up-convert");
        assert_eq!(up.host, "portable");
        let r = up.record("gemm/256x512x256/serial").expect("record mapped");
        assert_eq!(r.group, "gemm");
        assert_eq!(r.unit, "ns_per_iter");
        assert_eq!(r.value, 936233.0);
        assert_eq!(r.ratio, Some(4.741));
        assert_eq!(r.ratio_kind, "speedup_vs_blocked");
        assert_eq!(r.extra("gflops"), Some(71.68));
        assert_eq!(r.extra("m"), Some(256.0));
        assert_eq!(r.tag("policy"), Some("serial"));
    }

    #[test]
    fn parse_any_rejects_unknown_schemas() {
        assert!(BenchReport::parse_any("{\"schema\": \"other/v9\", \"results\": []}").is_err());
        assert!(BenchReport::parse_any("not json").is_err());
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_past_it() {
        let baseline = v2_report(vec![v2_record("sim/1m_clean/indexed", Some(1.5))]);
        let ok = gate(&v2_report(vec![v2_record("sim/1m_clean/indexed", Some(1.3))]), &baseline, 0.20);
        assert!(ok.failures.is_empty(), "{:?}", ok.failures);
        let bad =
            gate(&v2_report(vec![v2_record("sim/1m_clean/indexed", Some(1.1))]), &baseline, 0.20);
        assert_eq!(bad.failures.len(), 1, "{:?}", bad.failures);
        assert!(bad.failures[0].contains("fell below"));
    }

    #[test]
    fn gate_fails_on_missing_tracked_bench_and_ignores_untracked() {
        let baseline = v2_report(vec![
            v2_record("sim/1m_clean/indexed", Some(1.5)),
            v2_record("sim/1m_clean/sharded4", None),
        ]);
        let current = v2_report(vec![]);
        let outcome = gate(&current, &baseline, 0.20);
        assert_eq!(outcome.failures.len(), 1, "{:?}", outcome.failures);
        assert!(outcome.failures[0].contains("missing"));
    }

    #[test]
    fn canonical_floor_applies_only_with_a_gemm_baseline() {
        // Sim-only baseline: no canonical GEMM record, no floor check.
        let sim_base = v2_report(vec![v2_record("sim/1m_clean/indexed", Some(1.5))]);
        let sim_cur = v2_report(vec![v2_record("sim/1m_clean/indexed", Some(1.5))]);
        assert!(gate(&sim_cur, &sim_base, 0.20).failures.is_empty());
        // GEMM baseline tracking the canonical shape: floor enforced.
        let mut canon = v2_record(crate::gemm_report::CANONICAL_BENCH, Some(2.6));
        canon.group = "gemm".to_string();
        let gemm_base = v2_report(vec![canon.clone()]);
        let mut weak = canon.clone();
        weak.ratio = Some(2.2); // within 20% tolerance, below 2.5x floor
        let outcome = gate(&v2_report(vec![weak]), &gemm_base, 0.20);
        assert!(
            outcome.failures.iter().any(|f| f.contains("absolute")),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn pipeline_scaling_check_reads_the_gated_ratio() {
        let mut cell = v2_record(PIPELINE_BENCH, Some(1.35));
        cell.group = "train".to_string();
        cell.ratio_kind = "speedup_vs_barrier".to_string();
        let ok = check_pipeline_scaling(&v2_report(vec![cell.clone()]), 1.2);
        assert!(ok.failures.is_empty(), "{:?}", ok.failures);
        cell.ratio = Some(1.05);
        let slow = check_pipeline_scaling(&v2_report(vec![cell]), 1.2);
        assert_eq!(slow.failures.len(), 1);
        let missing = check_pipeline_scaling(&v2_report(vec![]), 1.2);
        assert_eq!(missing.failures.len(), 1);
    }

    #[test]
    fn thread_scaling_check_reads_the_extras() {
        let mut cell = v2_record("gemm/256x512x256/threads2", None);
        cell.extras = vec![("speedup_vs_serial".to_string(), 1.42)];
        let ok = check_thread_scaling(&v2_report(vec![cell.clone()]), 1.05);
        assert!(ok.failures.is_empty(), "{:?}", ok.failures);
        cell.extras = vec![("speedup_vs_serial".to_string(), 0.8)];
        let slow = check_thread_scaling(&v2_report(vec![cell]), 1.05);
        assert_eq!(slow.failures.len(), 1);
        let missing = check_thread_scaling(&v2_report(vec![]), 1.05);
        assert_eq!(missing.failures.len(), 1);
    }
}
