//! Shared helpers for the Criterion benchmark harness.
//!
//! Every figure of the paper has a matching bench target (see
//! `benches/`). Each bench first *regenerates the figure's rows/series
//! once* at bench scale (printed to stdout so `cargo bench` output
//! contains the reproduction data), then measures the core computation
//! with Criterion.

use mrsch::prelude::*;
use mrsch_experiments::ExpScale;
use mrsch_workload::split::paper_split;

pub mod gemm_report;
pub mod report;

/// The scale benches run at: the quick experiment scale with slightly
/// smaller training so one-time setup stays in seconds.
pub fn bench_scale() -> ExpScale {
    let mut s = ExpScale::quick();
    s.eval_jobs = 60;
    s.jobs_per_set = 30;
    s.batches_per_episode = 4;
    s
}

/// Evaluation job list for a spec at bench scale.
pub fn bench_eval_jobs(spec: &WorkloadSpec, scale: &ExpScale, seed: u64) -> Vec<Job> {
    let system = spec.system_for(&scale.base_system());
    let trace = scale.base_trace(seed);
    let split = paper_split(&trace);
    let mut test = split.test;
    test.truncate(scale.eval_jobs);
    spec.build(&test, &system, seed ^ 0xEA1)
}

/// One-time trained MRSch agent for a spec at bench scale.
pub fn bench_trained_mrsch(spec: &WorkloadSpec, scale: &ExpScale, seed: u64) -> Mrsch {
    mrsch_experiments::comparison::train_mrsch(spec, scale, seed, StateModuleKind::Mlp)
}
