//! CI perf regression gate for tracked benchmarks.
//!
//! ```text
//! bench_gate <current.json> <baseline.json> [--tolerance 0.20]
//!                                           [--require-thread-scaling [floor]]
//!                                           [--require-pipeline-scaling [floor]]
//! ```
//!
//! Both files are bench reports — `mrsch-bench/v2` ([`report`]) or the
//! legacy `mrsch-bench-gemm/v1` ([`gemm_report`]), sniffed by schema tag
//! and up-converted, so the committed v1 GEMM baseline keeps working.
//! The gate compares the **in-run ratio** carried by every tracked
//! record (speedup over the legacy blocked loop for GEMM, indexed-queue
//! speedup over the binary heap for the event engine) — host-speed
//! independent, measured in the same process as the candidate — and
//! fails (exit 1) when any tracked record falls more than `tolerance`
//! below the committed baseline, or when the canonical serial GEMM shape
//! drops under the absolute 2.5× acceptance floor (only enforced when
//! the baseline tracks that shape).
//!
//! `--require-thread-scaling` additionally asserts the canonical
//! threads2 GEMM cell recorded a `speedup_vs_serial` extra of at least
//! `floor` (default 1.05) — CI enables it only on multi-core runners.
//! `--require-pipeline-scaling` does the same for the pipelined training
//! cell's `speedup_vs_barrier` ratio (default floor 1.2): rollout can
//! only overlap learning with real cores, so CI gates it identically.

use mrsch_bench::report::{self, BenchReport};

fn load(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    BenchReport::parse_any(&text)
        .unwrap_or_else(|e| panic!("bench_gate: cannot parse {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.20f64;
    let mut thread_scaling: Option<f64> = None;
    let mut pipeline_scaling: Option<f64> = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            let v = it.next().expect("--tolerance needs a value");
            tolerance = v.parse().expect("--tolerance must be a number");
        } else if arg == "--require-thread-scaling" {
            // Optional floor value; defaults to a modest 1.05x.
            let floor = it
                .peek()
                .and_then(|v| v.parse::<f64>().ok())
                .inspect(|_| {
                    it.next();
                })
                .unwrap_or(1.05);
            thread_scaling = Some(floor);
        } else if arg == "--require-pipeline-scaling" {
            // Optional floor value; the acceptance bar is 1.2x.
            let floor = it
                .peek()
                .and_then(|v| v.parse::<f64>().ok())
                .inspect(|_| {
                    it.next();
                })
                .unwrap_or(1.2);
            pipeline_scaling = Some(floor);
        } else {
            paths.push(arg.clone());
        }
    }
    let [current_path, baseline_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_gate <current.json> <baseline.json> \
             [--tolerance 0.20] [--require-thread-scaling [floor]] \
             [--require-pipeline-scaling [floor]]"
        );
        std::process::exit(2);
    };

    let current = load(current_path);
    let baseline = load(baseline_path);
    println!(
        "bench_gate: current host '{}' (quick={}), baseline host '{}', tolerance {:.0}%",
        current.host,
        current.quick,
        baseline.host,
        tolerance * 100.0
    );
    let mut outcome = report::gate(&current, &baseline, tolerance);
    if let Some(floor) = thread_scaling {
        let scaling = report::check_thread_scaling(&current, floor);
        outcome.checked.extend(scaling.checked);
        outcome.failures.extend(scaling.failures);
    }
    if let Some(floor) = pipeline_scaling {
        let scaling = report::check_pipeline_scaling(&current, floor);
        outcome.checked.extend(scaling.checked);
        outcome.failures.extend(scaling.failures);
    }
    for line in &outcome.checked {
        println!("  {line}");
    }
    if outcome.failures.is_empty() {
        println!("bench_gate: PASS");
        return;
    }
    for failure in &outcome.failures {
        eprintln!("bench_gate: FAIL {failure}");
    }
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use mrsch_bench::gemm_report::{gate, GemmRecord, GemmReport, CANONICAL_BENCH};
    use mrsch_bench::report::{self, BenchReport};

    fn record(bench: &str, speedup: Option<f64>) -> GemmRecord {
        GemmRecord {
            bench: bench.to_string(),
            m: 256,
            k: 512,
            n: 256,
            op: "a_b".to_string(),
            policy: "serial".to_string(),
            ns_per_iter: 1_000_000.0,
            gflops: 67.1,
            speedup_vs_blocked: speedup,
        }
    }

    fn report(cells: Vec<GemmRecord>) -> GemmReport {
        GemmReport { quick: true, kernel_isa: "test".to_string(), results: cells }
    }

    #[test]
    fn json_roundtrips_bitwise() {
        let original = report(vec![
            record(CANONICAL_BENCH, Some(4.25)),
            record("gemm_infer/1x256x128/serial", None),
        ]);
        let parsed = GemmReport::parse(&original.to_json()).expect("own output must parse");
        assert_eq!(parsed.results.len(), 2);
        assert_eq!(parsed.results[0].bench, CANONICAL_BENCH);
        assert_eq!(parsed.results[0].speedup_vs_blocked, Some(4.25));
        assert_eq!(parsed.results[1].speedup_vs_blocked, None);
        assert!(parsed.quick);
    }

    #[test]
    fn parser_rejects_garbage_and_wrong_schema() {
        assert!(GemmReport::parse("not json").is_err());
        assert!(GemmReport::parse("{\"schema\": \"other/v9\", \"results\": []}").is_err());
        assert!(GemmReport::parse("{\"schema\": \"mrsch-bench-gemm/v1\"}").is_err());
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let baseline = report(vec![record(CANONICAL_BENCH, Some(4.0))]);
        // 15% down on a 20% tolerance: fine, and above the 2.5 floor.
        let current = report(vec![record(CANONICAL_BENCH, Some(3.4))]);
        let outcome = gate(&current, &baseline, 0.20);
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
        assert!(!outcome.checked.is_empty());
    }

    #[test]
    fn gate_fails_past_tolerance() {
        let baseline = report(vec![record(CANONICAL_BENCH, Some(4.0))]);
        let current = report(vec![record(CANONICAL_BENCH, Some(3.0))]);
        let outcome = gate(&current, &baseline, 0.20);
        assert_eq!(outcome.failures.len(), 1, "{:?}", outcome.failures);
        assert!(outcome.failures[0].contains("fell below"));
    }

    #[test]
    fn gate_enforces_absolute_floor_even_with_weak_baseline() {
        // A baseline that itself sits near the floor cannot ratchet the
        // acceptance bar away: 2.4x fails the absolute 2.5x check.
        let baseline = report(vec![record(CANONICAL_BENCH, Some(2.6))]);
        let current = report(vec![record(CANONICAL_BENCH, Some(2.4))]);
        let outcome = gate(&current, &baseline, 0.20);
        assert!(
            outcome.failures.iter().any(|f| f.contains("absolute")),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn gate_fails_on_missing_tracked_shape() {
        let baseline = report(vec![
            record(CANONICAL_BENCH, Some(4.0)),
            record("gemm/256x512x256/auto", Some(4.0)),
        ]);
        let current = report(vec![record(CANONICAL_BENCH, Some(4.0))]);
        let outcome = gate(&current, &baseline, 0.20);
        assert!(
            outcome.failures.iter().any(|f| f.contains("missing")),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn untracked_records_are_ignored_by_the_gate() {
        let baseline = report(vec![
            record(CANONICAL_BENCH, Some(4.0)),
            record("gemm_infer/1x256x128/serial", None),
        ]);
        // The untracked inference record may vanish freely.
        let current = report(vec![record(CANONICAL_BENCH, Some(4.0))]);
        let outcome = gate(&current, &baseline, 0.20);
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    }

    #[test]
    fn v2_gate_accepts_a_v1_baseline_document() {
        // The exact cross-schema path main() exercises: a v2 current run
        // gated against the committed v1 baseline file.
        let v1_baseline = report(vec![record(CANONICAL_BENCH, Some(4.0))]);
        let baseline = BenchReport::parse_any(&v1_baseline.to_json()).expect("v1 sniffs");
        let current = BenchReport::from_v1(&report(vec![record(CANONICAL_BENCH, Some(3.6))]));
        let outcome = report::gate(&current, &baseline, 0.20);
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
        assert!(outcome.checked.iter().any(|c| c.contains("speedup_vs_blocked")));

        let regressed = BenchReport::from_v1(&report(vec![record(CANONICAL_BENCH, Some(3.0))]));
        assert!(!report::gate(&regressed, &baseline, 0.20).failures.is_empty());
    }
}
