//! CI perf regression gate for the GEMM micro-kernel.
//!
//! ```text
//! bench_gate <current.json> <baseline.json> [--tolerance 0.20]
//! ```
//!
//! Both files are `mrsch-bench-gemm/v1` reports ([`gemm_report`]). The
//! gate compares the *speedup-over-legacy-blocked-loop* ratio of every
//! tracked shape — a host-speed-independent metric, measured in the
//! same run as the kernel itself — and fails (exit 1) when any tracked
//! shape falls more than `tolerance` below the committed baseline, or
//! when the canonical serial shape drops under the absolute 2.5×
//! acceptance floor.

use mrsch_bench::gemm_report::{self, GemmReport};

fn load(path: &str) -> GemmReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    GemmReport::parse(&text).unwrap_or_else(|e| panic!("bench_gate: cannot parse {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.20f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            let v = it.next().expect("--tolerance needs a value");
            tolerance = v.parse().expect("--tolerance must be a number");
        } else {
            paths.push(arg.clone());
        }
    }
    let [current_path, baseline_path] = paths.as_slice() else {
        eprintln!("usage: bench_gate <current.json> <baseline.json> [--tolerance 0.20]");
        std::process::exit(2);
    };

    let current = load(current_path);
    let baseline = load(baseline_path);
    println!(
        "bench_gate: current isa '{}' (quick={}), baseline isa '{}', tolerance {:.0}%",
        current.kernel_isa,
        current.quick,
        baseline.kernel_isa,
        tolerance * 100.0
    );
    let outcome = gemm_report::gate(&current, &baseline, tolerance);
    for line in &outcome.checked {
        println!("  {line}");
    }
    if outcome.failures.is_empty() {
        println!("bench_gate: PASS");
        return;
    }
    for failure in &outcome.failures {
        eprintln!("bench_gate: FAIL {failure}");
    }
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use mrsch_bench::gemm_report::{gate, GemmRecord, GemmReport, CANONICAL_BENCH};

    fn record(bench: &str, speedup: Option<f64>) -> GemmRecord {
        GemmRecord {
            bench: bench.to_string(),
            m: 256,
            k: 512,
            n: 256,
            op: "a_b".to_string(),
            policy: "serial".to_string(),
            ns_per_iter: 1_000_000.0,
            gflops: 67.1,
            speedup_vs_blocked: speedup,
        }
    }

    fn report(cells: Vec<GemmRecord>) -> GemmReport {
        GemmReport { quick: true, kernel_isa: "test".to_string(), results: cells }
    }

    #[test]
    fn json_roundtrips_bitwise() {
        let original = report(vec![
            record(CANONICAL_BENCH, Some(4.25)),
            record("gemm_infer/1x256x128/serial", None),
        ]);
        let parsed = GemmReport::parse(&original.to_json()).expect("own output must parse");
        assert_eq!(parsed.results.len(), 2);
        assert_eq!(parsed.results[0].bench, CANONICAL_BENCH);
        assert_eq!(parsed.results[0].speedup_vs_blocked, Some(4.25));
        assert_eq!(parsed.results[1].speedup_vs_blocked, None);
        assert!(parsed.quick);
    }

    #[test]
    fn parser_rejects_garbage_and_wrong_schema() {
        assert!(GemmReport::parse("not json").is_err());
        assert!(GemmReport::parse("{\"schema\": \"other/v9\", \"results\": []}").is_err());
        assert!(GemmReport::parse("{\"schema\": \"mrsch-bench-gemm/v1\"}").is_err());
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let baseline = report(vec![record(CANONICAL_BENCH, Some(4.0))]);
        // 15% down on a 20% tolerance: fine, and above the 2.5 floor.
        let current = report(vec![record(CANONICAL_BENCH, Some(3.4))]);
        let outcome = gate(&current, &baseline, 0.20);
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
        assert!(!outcome.checked.is_empty());
    }

    #[test]
    fn gate_fails_past_tolerance() {
        let baseline = report(vec![record(CANONICAL_BENCH, Some(4.0))]);
        let current = report(vec![record(CANONICAL_BENCH, Some(3.0))]);
        let outcome = gate(&current, &baseline, 0.20);
        assert_eq!(outcome.failures.len(), 1, "{:?}", outcome.failures);
        assert!(outcome.failures[0].contains("fell below"));
    }

    #[test]
    fn gate_enforces_absolute_floor_even_with_weak_baseline() {
        // A baseline that itself sits near the floor cannot ratchet the
        // acceptance bar away: 2.4x fails the absolute 2.5x check.
        let baseline = report(vec![record(CANONICAL_BENCH, Some(2.6))]);
        let current = report(vec![record(CANONICAL_BENCH, Some(2.4))]);
        let outcome = gate(&current, &baseline, 0.20);
        assert!(
            outcome.failures.iter().any(|f| f.contains("absolute")),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn gate_fails_on_missing_tracked_shape() {
        let baseline = report(vec![
            record(CANONICAL_BENCH, Some(4.0)),
            record("gemm/256x512x256/auto", Some(4.0)),
        ]);
        let current = report(vec![record(CANONICAL_BENCH, Some(4.0))]);
        let outcome = gate(&current, &baseline, 0.20);
        assert!(
            outcome.failures.iter().any(|f| f.contains("missing")),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn untracked_records_are_ignored_by_the_gate() {
        let baseline = report(vec![
            record(CANONICAL_BENCH, Some(4.0)),
            record("gemm_infer/1x256x128/serial", None),
        ]);
        // The untracked inference record may vanish freely.
        let current = report(vec![record(CANONICAL_BENCH, Some(4.0))]);
        let outcome = gate(&current, &baseline, 0.20);
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    }
}
