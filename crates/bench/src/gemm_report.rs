//! Machine-readable GEMM benchmark reports and the CI regression gate.
//!
//! `cargo bench --bench substrate_gemm` emits `results/BENCH_gemm.json`
//! (schema `mrsch-bench-gemm/v1`): one record per measured
//! (shape, operation, policy) with ns/iter and GFLOP/s, plus — for the
//! tracked canonical shapes — the speedup over the pre-micro-kernel
//! blocked loop measured *in the same run*. The gate compares that
//! in-run speedup ratio against the committed baseline
//! (`results/BENCH_gemm_baseline.json`) rather than raw nanoseconds, so
//! a slower CI runner doesn't trip it but a regressed kernel does.
//!
//! The vendored `serde` is a no-op facade, so the JSON here is written
//! by hand and read back by a deliberately small parser that accepts
//! exactly the subset this schema uses (objects, arrays, strings,
//! numbers, booleans, null).

use std::fmt::Write as _;

/// Schema tag stamped into every report.
pub const SCHEMA: &str = "mrsch-bench-gemm/v1";

/// One measured (shape, operation, policy) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct GemmRecord {
    /// Stable benchmark id (`gemm/256x512x256/serial`, ...): the gate's
    /// join key.
    pub bench: String,
    /// Output rows.
    pub m: usize,
    /// Reduction depth.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Contraction: `a_b`, `a_bt`, or `at_b`.
    pub op: String,
    /// Parallel policy the cell ran under (`serial`, `auto`, ...).
    pub policy: String,
    /// Mean wall time per iteration, nanoseconds.
    pub ns_per_iter: f64,
    /// Throughput at `2·m·n·k` flops per iteration.
    pub gflops: f64,
    /// Speedup over the legacy blocked loop on the same shape, measured
    /// in the same run (only for tracked shapes). This ratio is what
    /// the regression gate compares — it is host-speed independent.
    pub speedup_vs_blocked: Option<f64>,
}

/// A full bench run.
#[derive(Clone, Debug, PartialEq)]
pub struct GemmReport {
    /// True when the run used the reduced quick-mode budget.
    pub quick: bool,
    /// Which kernel instantiation the host dispatched
    /// ([`mrsch_linalg::kernel_isa`]).
    pub kernel_isa: String,
    /// All measured cells.
    pub results: Vec<GemmRecord>,
}

impl GemmReport {
    /// Look up a record by its stable bench id.
    pub fn record(&self, bench: &str) -> Option<&GemmRecord> {
        self.results.iter().find(|r| r.bench == bench)
    }

    /// Serialize to the `mrsch-bench-gemm/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"kernel_isa\": \"{}\",", escape(&self.kernel_isa));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"bench\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"op\": \"{}\", \
                 \"policy\": \"{}\", \"ns_per_iter\": {:.1}, \"gflops\": {:.3}",
                escape(&r.bench),
                r.m,
                r.k,
                r.n,
                escape(&r.op),
                escape(&r.policy),
                r.ns_per_iter,
                r.gflops,
            );
            match r.speedup_vs_blocked {
                Some(s) => {
                    let _ = write!(out, ", \"speedup_vs_blocked\": {s:.3}}}");
                }
                None => out.push('}'),
            }
            out.push_str(if i + 1 < self.results.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a `mrsch-bench-gemm/v1` document.
    pub fn parse(text: &str) -> Result<GemmReport, String> {
        let root = json::parse(text)?;
        let schema = root.get("schema").and_then(json::Value::as_str);
        if schema != Some(SCHEMA) {
            return Err(format!("unexpected schema {schema:?} (want {SCHEMA:?})"));
        }
        let results = root
            .get("results")
            .and_then(json::Value::as_array)
            .ok_or("missing results array")?
            .iter()
            .map(|v| {
                let field_str = |key: &str| {
                    v.get(key)
                        .and_then(json::Value::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("record missing string field '{key}'"))
                };
                let field_num = |key: &str| {
                    v.get(key)
                        .and_then(json::Value::as_f64)
                        .ok_or_else(|| format!("record missing numeric field '{key}'"))
                };
                Ok(GemmRecord {
                    bench: field_str("bench")?,
                    m: field_num("m")? as usize,
                    k: field_num("k")? as usize,
                    n: field_num("n")? as usize,
                    op: field_str("op")?,
                    policy: field_str("policy")?,
                    ns_per_iter: field_num("ns_per_iter")?,
                    gflops: field_num("gflops")?,
                    speedup_vs_blocked: v.get("speedup_vs_blocked").and_then(json::Value::as_f64),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(GemmReport {
            quick: root.get("quick").and_then(json::Value::as_bool).unwrap_or(false),
            kernel_isa: root
                .get("kernel_isa")
                .and_then(json::Value::as_str)
                .unwrap_or("unknown")
                .to_string(),
            results,
        })
    }
}

/// Outcome of gating a current report against the committed baseline.
#[derive(Clone, Debug, Default)]
pub struct GateOutcome {
    /// One line per tracked comparison (for the job log).
    pub checked: Vec<String>,
    /// Human-readable failures; empty means the gate passes.
    pub failures: Vec<String>,
}

/// Absolute floor on the canonical-shape serial speedup — the
/// acceptance bar of the micro-kernel PR, enforced forever after.
pub const CANONICAL_BENCH: &str = "gemm/256x512x256/serial";
/// Minimum `speedup_vs_blocked` for [`CANONICAL_BENCH`].
pub const CANONICAL_MIN_SPEEDUP: f64 = 2.5;

/// Compare `current` against `baseline`: every baseline record carrying
/// `speedup_vs_blocked` is tracked, and the current run must reach at
/// least `(1 - tolerance)` of the baseline's speedup ratio. The
/// canonical serial shape must additionally clear the absolute
/// [`CANONICAL_MIN_SPEEDUP`] floor.
pub fn gate(current: &GemmReport, baseline: &GemmReport, tolerance: f64) -> GateOutcome {
    let mut out = GateOutcome::default();
    for base in &baseline.results {
        let Some(base_speedup) = base.speedup_vs_blocked else {
            continue;
        };
        let Some(cur) = current.record(&base.bench) else {
            out.failures
                .push(format!("{}: tracked shape missing from current run", base.bench));
            continue;
        };
        let Some(cur_speedup) = cur.speedup_vs_blocked else {
            out.failures
                .push(format!("{}: current run lost the speedup measurement", base.bench));
            continue;
        };
        let floor = base_speedup * (1.0 - tolerance);
        let verdict = if cur_speedup >= floor { "ok" } else { "REGRESSED" };
        out.checked.push(format!(
            "{}: speedup_vs_blocked {:.2}x (baseline {:.2}x, floor {:.2}x) {}",
            base.bench, cur_speedup, base_speedup, floor, verdict
        ));
        if cur_speedup < floor {
            out.failures.push(format!(
                "{}: speedup_vs_blocked {:.2}x fell below {:.2}x ({}% of baseline {:.2}x)",
                base.bench,
                cur_speedup,
                floor,
                ((1.0 - tolerance) * 100.0).round(),
                base_speedup
            ));
        }
    }
    if let Some(canonical) = current.record(CANONICAL_BENCH) {
        match canonical.speedup_vs_blocked {
            Some(s) if s >= CANONICAL_MIN_SPEEDUP => out.checked.push(format!(
                "{CANONICAL_BENCH}: absolute floor {CANONICAL_MIN_SPEEDUP:.1}x ok ({s:.2}x)"
            )),
            Some(s) => out.failures.push(format!(
                "{CANONICAL_BENCH}: {s:.2}x below the absolute {CANONICAL_MIN_SPEEDUP:.1}x floor"
            )),
            None => out
                .failures
                .push(format!("{CANONICAL_BENCH}: no speedup measurement in current run")),
        }
    } else {
        out.failures
            .push(format!("{CANONICAL_BENCH}: missing from current run"));
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Minimal JSON reader for the report schema.
pub mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (always carried as f64).
        Num(f64),
        /// A string (escapes decoded).
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, insertion-ordered.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The string payload, if any.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric payload, if any.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }

        /// The boolean payload, if any.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The array payload, if any.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Parse one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&ch) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", ch as char))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_obj(bytes, pos),
            Some(b'[') => parse_arr(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
            Some(_) => parse_num(bytes, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let ch_len = utf8_len(c);
                    let chunk = bytes
                        .get(*pos..*pos + ch_len)
                        .and_then(|raw| std::str::from_utf8(raw).ok())
                        .ok_or_else(|| format!("bad utf8 at byte {pos}"))?;
                    out.push_str(chunk);
                    *pos += ch_len;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }

    fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            fields.push((key, parse_value(bytes, pos)?));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}
