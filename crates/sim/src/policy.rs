//! The scheduling-policy interface.
//!
//! A [`Policy`] is consulted at every *scheduling instance* (triggered by
//! job submission or completion). The simulator repeatedly asks it to
//! select one job from the window; fitting selections start immediately,
//! the first non-fitting selection becomes the reservation and ends the
//! instance (§III-C). After every applied selection the policy receives a
//! [`StepFeedback`] carrying the post-action measurement vector — this is
//! the feedback channel DFP and the scalar-RL baseline learn from.

use crate::job::{Job, JobId};
use crate::metrics::SimReport;
use crate::resources::{PoolState, SystemConfig};
use crate::SimTime;

/// One waiting job as seen by a policy.
#[derive(Clone, Copy, Debug)]
pub struct JobView<'a> {
    /// The underlying job (demands, estimate, submit). Policies must not
    /// use [`Job::runtime`] — that is trace ground truth the real system
    /// would not know; the simulator exposes it only for completeness.
    pub job: &'a Job,
    /// How long the job has been waiting (`now - submit`) — the "queued
    /// time" element of the paper's job encoding.
    pub queued: SimTime,
}

/// Everything a policy may observe at a decision point.
#[derive(Clone, Debug)]
pub struct SchedulerView<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// Monotone scheduling-instance counter (one per trigger event batch).
    pub instance: u64,
    /// Monotone decision counter (one per `select` call).
    pub decision: u64,
    /// The window: up to `W` oldest waiting jobs.
    pub window: Vec<JobView<'a>>,
    /// Live allocation state (free units, running allocations).
    pub pools: &'a PoolState,
    /// Static system description.
    pub config: &'a SystemConfig,
    /// Ids of *all* waiting jobs (window is a prefix of this). In a
    /// workflow (DAG) trace this is exactly the **ready frontier**:
    /// dependency-held jobs are not enqueued until their predecessors
    /// settle, so they are invisible here and in the window. See
    /// [`SchedulerView::ready_frontier`].
    pub queued: &'a [JobId],
    /// Full job table, indexable by [`JobId`].
    pub jobs: &'a [Job],
}

impl<'a> SchedulerView<'a> {
    /// Current measurement vector (per-resource utilization, normalized
    /// by the capacity *currently online* — honest under disruptions).
    pub fn measurement(&self) -> Vec<f64> {
        self.pools.measurement()
    }

    /// Does window entry `idx` fit in the free resources right now?
    pub fn fits(&self, idx: usize) -> bool {
        self.pools.fits(&self.window[idx].job.demands)
    }

    /// The ready frontier of the workflow DAG: every waiting job whose
    /// predecessors have all settled. For an independent-job trace this
    /// is simply the whole wait queue — the two views coincide because
    /// the simulator never enqueues a dependency-held job, so policies
    /// written against either name observe identical state.
    pub fn ready_frontier(&self) -> &'a [JobId] {
        self.queued
    }

    /// Capacity of each pool currently online (drains/power caps applied).
    pub fn current_capacities(&self) -> Vec<u64> {
        (0..self.pools.num_resources()).map(|r| self.pools.capacity(r)).collect()
    }

    /// Fraction of configured capacity online per pool: all 1.0 in an
    /// undisrupted system, 0.75 on a 25 % node drain. Policies use this
    /// to detect (and react to) disruptions.
    pub fn capacity_online(&self) -> Vec<f64> {
        (0..self.pools.num_resources()).map(|r| self.pools.online_fraction(r)).collect()
    }

    /// Is any pool currently drained below its configured capacity?
    pub fn is_disrupted(&self) -> bool {
        (0..self.pools.num_resources())
            .any(|r| self.pools.capacity(r) < self.pools.base_capacity(r))
    }

    /// The goal-vector weights of the paper's Eq. (1): for each resource
    /// `j`, the normalized total outstanding demand-time
    /// `r_j = Σ_i P_ij·t_i / Σ_j Σ_i P_ij·t_i`, summed over *all* jobs in
    /// the system — queued jobs (with their full estimate) and running
    /// jobs (with their remaining estimate). Demand fractions are taken
    /// over the capacity *currently online*, so a drained pool reads as
    /// proportionally more contended.
    ///
    /// Falls back to uniform weights when no job demands anything.
    pub fn contention_weights(&self) -> Vec<f64> {
        let nres = self.config.num_resources();
        let caps = self.current_capacities();
        let mut demand_time = vec![0.0f64; nres];
        for &jid in self.queued {
            let job = &self.jobs[jid];
            let t = job.estimate as f64;
            for r in 0..nres {
                demand_time[r] += job.demand_fraction(r, caps[r]) * t;
            }
        }
        for alloc in self.pools.running() {
            let remaining = alloc.est_end.saturating_sub(self.now) as f64;
            for r in 0..nres {
                let frac = if caps[r] == 0 {
                    0.0
                } else {
                    alloc.demands[r] as f64 / caps[r] as f64
                };
                demand_time[r] += frac * remaining;
            }
        }
        let total: f64 = demand_time.iter().sum();
        if total <= 0.0 {
            return vec![1.0 / nres as f64; nres];
        }
        demand_time.iter().map(|d| d / total).collect()
    }
}

/// Post-action feedback delivered to the policy.
#[derive(Clone, Debug)]
pub struct StepFeedback {
    /// Decision counter value of the corresponding `select` call.
    pub decision: u64,
    /// Window index the policy chose.
    pub action: usize,
    /// The job that was chosen.
    pub job: JobId,
    /// `true` if the job started immediately; `false` if it became the
    /// reservation (ending the instance).
    pub started: bool,
    /// Measurement vector *after* the action was applied.
    pub measurement: Vec<f64>,
    /// Simulation time of the decision.
    pub now: SimTime,
}

/// A scheduling policy: the agent side of the simulator's agent–environment
/// loop.
pub trait Policy {
    /// Choose a window index to schedule next, or `None` to end the
    /// scheduling instance without a reservation. Indices out of range are
    /// treated as `None`.
    fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize>;

    /// Observe the effect of the most recent selection. Default: ignore.
    fn feedback(&mut self, _fb: &StepFeedback) {}

    /// Called once when the trace is exhausted and the simulation ends.
    fn episode_end(&mut self, _report: &SimReport) {}

    /// Restore the policy to its initial (post-construction) state so
    /// one instance can be reused across episodes, the way the
    /// simulator itself is reused via `Simulator::load`. After `reset`,
    /// running an episode must be **bit-identical** to running it on a
    /// freshly built instance — stateful policies (internal RNGs,
    /// cached plans, logs) must restore their seeds and clear their
    /// caches. Stateless policies keep the default no-op.
    fn reset(&mut self) {}

    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str {
        "policy"
    }
}

/// Reference policy: always select the head of the window.
///
/// Combined with the simulator's reservation + EASY backfilling mechanics
/// this *is* the paper's "Heuristic" baseline (FCFS extended to
/// multi-resource scheduling); it also serves as the trivial policy for
/// simulator unit tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeadOfQueue;

impl Policy for HeadOfQueue {
    fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
        if view.window.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn name(&self) -> &'static str {
        "fcfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::SystemConfig;

    #[test]
    fn contention_weights_match_eq1_hand_computation() {
        // System: 10 nodes, 10 BB. One queued job: 5 nodes, 0 BB, est 100.
        // Another queued: 0 nodes, 10 BB, est 50.
        // rA = 0.5*100 = 50 ; rB = 1.0*50 = 50 -> weights (0.5, 0.5).
        let config = SystemConfig::two_resource(10, 10);
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![5, 0]),
            Job::new(1, 0, 50, 50, vec![0, 10]),
        ];
        let pools = PoolState::new(&config);
        let queued = vec![0, 1];
        let view = SchedulerView {
            now: 0,
            instance: 0,
            decision: 0,
            window: vec![],
            pools: &pools,
            config: &config,
            queued: &queued,
            jobs: &jobs,
        };
        let w = view.contention_weights();
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contention_weights_include_running_jobs() {
        let config = SystemConfig::two_resource(10, 10);
        let jobs = vec![Job::new(0, 0, 100, 100, vec![10, 0])];
        let mut pools = PoolState::new(&config);
        pools.allocate(&jobs[0], 0);
        let queued: Vec<JobId> = vec![];
        let view = SchedulerView {
            now: 50, // remaining estimate 50
            instance: 0,
            decision: 0,
            window: vec![],
            pools: &pools,
            config: &config,
            queued: &queued,
            jobs: &jobs,
        };
        let w = view.contention_weights();
        assert!((w[0] - 1.0).abs() < 1e-12, "all contention on nodes");
        assert_eq!(w[1], 0.0);
    }

    #[test]
    fn contention_weights_uniform_when_idle() {
        let config = SystemConfig::two_resource(4, 4);
        let jobs: Vec<Job> = vec![];
        let pools = PoolState::new(&config);
        let queued: Vec<JobId> = vec![];
        let view = SchedulerView {
            now: 0,
            instance: 0,
            decision: 0,
            window: vec![],
            pools: &pools,
            config: &config,
            queued: &queued,
            jobs: &jobs,
        };
        assert_eq!(view.contention_weights(), vec![0.5, 0.5]);
    }

    #[test]
    fn view_exposes_disruption_state() {
        let config = SystemConfig::two_resource(8, 4);
        let jobs: Vec<Job> = vec![];
        let mut pools = PoolState::new(&config);
        pools.adjust_capacity(0, -2); // 25 % node drain
        let queued: Vec<JobId> = vec![];
        let view = SchedulerView {
            now: 0,
            instance: 0,
            decision: 0,
            window: vec![],
            pools: &pools,
            config: &config,
            queued: &queued,
            jobs: &jobs,
        };
        assert!(view.is_disrupted());
        assert_eq!(view.current_capacities(), vec![6, 4]);
        let online = view.capacity_online();
        assert!((online[0] - 0.75).abs() < 1e-12);
        assert_eq!(online[1], 1.0);
    }

    #[test]
    fn contention_weights_use_current_capacity() {
        // One queued job wanting 4 nodes + 4 BB. At full capacity (8, 8)
        // the weights are even; with half the nodes drained the node side
        // reads twice as contended.
        let config = SystemConfig::two_resource(8, 8);
        let jobs = vec![Job::new(0, 0, 100, 100, vec![4, 4])];
        let mut pools = PoolState::new(&config);
        let queued = vec![0];
        let make = |pools: &PoolState| -> Vec<f64> {
            SchedulerView {
                now: 0,
                instance: 0,
                decision: 0,
                window: vec![],
                pools,
                config: &config,
                queued: &queued,
                jobs: &jobs,
            }
            .contention_weights()
        };
        let even = make(&pools);
        assert!((even[0] - 0.5).abs() < 1e-12);
        pools.adjust_capacity(0, -4);
        let drained = make(&pools);
        assert!((drained[0] - 2.0 / 3.0).abs() < 1e-12, "nodes weight doubles: {drained:?}");
    }

    #[test]
    fn head_of_queue_selects_zero_or_none() {
        let config = SystemConfig::two_resource(4, 4);
        let jobs = vec![Job::new(0, 0, 10, 10, vec![1, 1])];
        let pools = PoolState::new(&config);
        let queued = vec![0];
        let mut view = SchedulerView {
            now: 0,
            instance: 0,
            decision: 0,
            window: vec![JobView { job: &jobs[0], queued: 0 }],
            pools: &pools,
            config: &config,
            queued: &queued,
            jobs: &jobs,
        };
        let mut p = HeadOfQueue;
        assert_eq!(p.select(&view), Some(0));
        view.window.clear();
        assert_eq!(p.select(&view), None);
        assert_eq!(p.name(), "fcfs");
    }
}
