//! The waiting queue and the scheduling window.
//!
//! Jobs wait in arrival order (the facility prioritization policy of the
//! paper's simulated system is FCFS ordering of the queue itself; the
//! *policy* then chooses within a window at the queue front, §III-A
//! "Action"). The window provides the starvation protection of §III-C:
//! only the `W` oldest waiting jobs are eligible for selection.

use crate::job::JobId;

/// FCFS-ordered waiting queue with window extraction.
#[derive(Clone, Debug, Default)]
pub struct WaitQueue {
    jobs: Vec<JobId>,
}

impl WaitQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a newly submitted job (queues are arrival-ordered; the
    /// simulator submits in event order so no sorting is needed).
    pub fn enqueue(&mut self, job: JobId) {
        self.jobs.push(job);
    }

    /// Remove a job that has been started (by selection or backfill).
    ///
    /// # Panics
    /// Panics if the job is not queued.
    pub fn remove(&mut self, job: JobId) {
        let idx = self
            .jobs
            .iter()
            .position(|&j| j == job)
            .unwrap_or_else(|| panic!("WaitQueue::remove: job {job} not queued"));
        self.jobs.remove(idx);
    }

    /// Remove a job if it is queued (cancellation path: the job may have
    /// started or finished before the cancel event fired). Returns
    /// whether it was present.
    pub fn try_remove(&mut self, job: JobId) -> bool {
        match self.jobs.iter().position(|&j| j == job) {
            Some(idx) => {
                self.jobs.remove(idx);
                true
            }
            None => false,
        }
    }

    /// The first `window` waiting jobs, oldest first.
    pub fn window(&self, window: usize) -> &[JobId] {
        &self.jobs[..window.min(self.jobs.len())]
    }

    /// All waiting jobs, oldest first.
    pub fn all(&self) -> &[JobId] {
        &self.jobs
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when nothing waits.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Is the given job currently queued?
    pub fn contains(&self, job: JobId) -> bool {
        self.jobs.contains(&job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = WaitQueue::new();
        for id in [3, 1, 4, 1 + 4] {
            q.enqueue(id);
        }
        assert_eq!(q.all(), &[3, 1, 4, 5]);
    }

    #[test]
    fn window_truncates() {
        let mut q = WaitQueue::new();
        for id in 0..5 {
            q.enqueue(id);
        }
        assert_eq!(q.window(3), &[0, 1, 2]);
        assert_eq!(q.window(10).len(), 5);
        assert_eq!(q.window(0).len(), 0);
    }

    #[test]
    fn remove_middle_preserves_order() {
        let mut q = WaitQueue::new();
        for id in 0..4 {
            q.enqueue(id);
        }
        q.remove(1);
        assert_eq!(q.all(), &[0, 2, 3]);
        assert!(!q.contains(1));
        assert!(q.contains(2));
    }

    #[test]
    #[should_panic(expected = "not queued")]
    fn remove_missing_panics() {
        let mut q = WaitQueue::new();
        q.remove(9);
    }

    #[test]
    fn try_remove_reports_presence() {
        let mut q = WaitQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        assert!(q.try_remove(1));
        assert!(!q.try_remove(1), "second removal is a no-op");
        assert!(!q.try_remove(9));
        assert_eq!(q.all(), &[2]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = WaitQueue::new();
        assert!(q.is_empty());
        q.enqueue(0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
