//! The waiting queue and the scheduling window.
//!
//! Jobs wait in arrival order (the facility prioritization policy of the
//! paper's simulated system is FCFS ordering of the queue itself; the
//! *policy* then chooses within a window at the queue front, §III-A
//! "Action"). The window provides the starvation protection of §III-C:
//! only the `W` oldest waiting jobs are eligible for selection.
//!
//! The storage is a `Vec` with a head cursor: removing the queue head —
//! by far the common case under FCFS selection — is O(1) (advance the
//! cursor) rather than an O(n) memmove, and membership queries use a
//! per-job presence bitmap so duplicate-submit filtering stays O(1) on
//! million-job traces. The cursor compacts away once it dominates the
//! buffer, bounding memory at O(live + recently removed).

use crate::job::JobId;

/// FCFS-ordered waiting queue with window extraction.
#[derive(Clone, Debug, Default)]
pub struct WaitQueue {
    /// Queue storage; the live region is `jobs[head..]`.
    jobs: Vec<JobId>,
    /// Start of the live region (everything before it was head-popped).
    head: usize,
    /// `present[id]` iff job `id` is currently queued (grown on demand).
    present: Vec<bool>,
}

impl WaitQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a newly submitted job (queues are arrival-ordered; the
    /// simulator submits in event order so no sorting is needed).
    pub fn enqueue(&mut self, job: JobId) {
        debug_assert!(!self.contains(job), "job {job} double-enqueued");
        self.jobs.push(job);
        if self.present.len() <= job {
            self.present.resize(job + 1, false);
        }
        self.present[job] = true;
    }

    /// Remove a job that has been started (by selection or backfill).
    ///
    /// # Panics
    /// Panics if the job is not queued.
    pub fn remove(&mut self, job: JobId) {
        if !self.try_remove(job) {
            panic!("WaitQueue::remove: job {job} not queued");
        }
    }

    /// Remove a job if it is queued (cancellation path: the job may have
    /// started or finished before the cancel event fired). Returns
    /// whether it was present.
    pub fn try_remove(&mut self, job: JobId) -> bool {
        if !self.contains(job) {
            return false;
        }
        if self.jobs[self.head] == job {
            // Head removal: the FCFS fast path.
            self.head += 1;
        } else {
            let idx = self.jobs[self.head..]
                .iter()
                .position(|&j| j == job)
                .expect("present bitmap says queued");
            self.jobs.remove(self.head + idx);
        }
        self.present[job] = false;
        self.maybe_compact();
        true
    }

    /// The first `window` waiting jobs, oldest first.
    pub fn window(&self, window: usize) -> &[JobId] {
        let live = &self.jobs[self.head..];
        &live[..window.min(live.len())]
    }

    /// All waiting jobs, oldest first.
    pub fn all(&self) -> &[JobId] {
        &self.jobs[self.head..]
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.jobs.len() - self.head
    }

    /// True when nothing waits.
    pub fn is_empty(&self) -> bool {
        self.head == self.jobs.len()
    }

    /// Is the given job currently queued?
    pub fn contains(&self, job: JobId) -> bool {
        self.present.get(job).copied().unwrap_or(false)
    }

    /// Drop the dead prefix once it outweighs the live region, keeping
    /// the amortized cost of head pops O(1).
    fn maybe_compact(&mut self) {
        if self.head > 32 && self.head >= self.len() {
            self.jobs.drain(..self.head);
            self.head = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = WaitQueue::new();
        for id in [3, 1, 4, 1 + 4] {
            q.enqueue(id);
        }
        assert_eq!(q.all(), &[3, 1, 4, 5]);
    }

    #[test]
    fn window_truncates() {
        let mut q = WaitQueue::new();
        for id in 0..5 {
            q.enqueue(id);
        }
        assert_eq!(q.window(3), &[0, 1, 2]);
        assert_eq!(q.window(10).len(), 5);
        assert_eq!(q.window(0).len(), 0);
    }

    #[test]
    fn remove_middle_preserves_order() {
        let mut q = WaitQueue::new();
        for id in 0..4 {
            q.enqueue(id);
        }
        q.remove(1);
        assert_eq!(q.all(), &[0, 2, 3]);
        assert!(!q.contains(1));
        assert!(q.contains(2));
    }

    #[test]
    #[should_panic(expected = "not queued")]
    fn remove_missing_panics() {
        let mut q = WaitQueue::new();
        q.remove(9);
    }

    #[test]
    fn try_remove_reports_presence() {
        let mut q = WaitQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        assert!(q.try_remove(1));
        assert!(!q.try_remove(1), "second removal is a no-op");
        assert!(!q.try_remove(9));
        assert_eq!(q.all(), &[2]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = WaitQueue::new();
        assert!(q.is_empty());
        q.enqueue(0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn head_pops_with_interleaved_enqueues_stay_fifo() {
        // Exercise the head cursor across compaction: pop the head many
        // times while the queue keeps receiving arrivals.
        let mut q = WaitQueue::new();
        let mut expect = std::collections::VecDeque::new();
        for wave in 0..40usize {
            for k in 0..3 {
                let id = wave * 3 + k;
                q.enqueue(id);
                expect.push_back(id);
            }
            let head = *expect.front().unwrap();
            assert_eq!(q.all().first(), Some(&head));
            q.remove(head);
            expect.pop_front();
            assert_eq!(q.all(), expect.iter().copied().collect::<Vec<_>>().as_slice());
        }
        while let Some(id) = expect.pop_front() {
            assert!(q.try_remove(id));
        }
        assert!(q.is_empty());
        assert_eq!(q.all(), &[] as &[JobId]);
    }

    #[test]
    fn reenqueue_after_removal_works() {
        let mut q = WaitQueue::new();
        q.enqueue(7);
        q.remove(7);
        assert!(!q.contains(7));
        q.enqueue(7);
        assert!(q.contains(7));
        assert_eq!(q.all(), &[7]);
    }
}
