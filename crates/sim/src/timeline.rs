//! Post-hoc utilization timelines.
//!
//! The paper's utilization metrics are single time-averaged numbers; for
//! plotting (and for debugging schedules) a *time series* of occupancy is
//! more useful. This module reconstructs per-resource occupancy over time
//! from a finished run's job records via an event sweep — no simulator
//! instrumentation required, and it works on any [`SimReport`].

use crate::job::Job;
use crate::metrics::SimReport;
use crate::SimTime;

/// A step function of per-resource used units over time.
///
/// `points[k] = (t_k, used)` means the occupancy vector equals `used`
/// on `[t_k, t_{k+1})`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Timeline {
    /// Change points in ascending time order.
    pub points: Vec<(SimTime, Vec<u64>)>,
    /// Capacities, for normalization.
    pub capacities: Vec<u64>,
}

impl Timeline {
    /// Build the occupancy timeline of a finished run.
    ///
    /// `jobs` must be the same table the simulation ran over (records
    /// reference job ids for their demand vectors).
    pub fn from_report(report: &SimReport, jobs: &[Job], capacities: &[u64]) -> Timeline {
        let nres = capacities.len();
        // (time, +1/-1, job) events; release before acquire at ties.
        let mut events: Vec<(SimTime, i8, usize)> = Vec::new();
        for rec in &report.records {
            events.push((rec.start, 1, rec.id));
            events.push((rec.end, -1, rec.id));
        }
        events.sort_by_key(|&(t, sign, _)| (t, sign));
        let mut used = vec![0i64; nres];
        let mut points: Vec<(SimTime, Vec<u64>)> = Vec::new();
        let mut i = 0usize;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                let (_, sign, id) = events[i];
                for (r, &d) in jobs[id].demands.iter().enumerate() {
                    used[r] += sign as i64 * d as i64;
                }
                i += 1;
            }
            points.push((t, used.iter().map(|&u| u.max(0) as u64).collect()));
        }
        Timeline { points, capacities: capacities.to_vec() }
    }

    /// Occupancy vector at time `t` (the step value in force at `t`).
    pub fn at(&self, t: SimTime) -> Vec<u64> {
        match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(idx) => self.points[idx].1.clone(),
            Err(0) => vec![0; self.capacities.len()],
            Err(idx) => self.points[idx - 1].1.clone(),
        }
    }

    /// Utilization (0..1) of resource `r` at time `t`.
    pub fn utilization_at(&self, r: usize, t: SimTime) -> f64 {
        if self.capacities[r] == 0 {
            return 0.0;
        }
        self.at(t)[r] as f64 / self.capacities[r] as f64
    }

    /// Sample utilization of resource `r` at `n` evenly spaced times over
    /// `[start, end]` — ready-to-plot series.
    pub fn sample(&self, r: usize, start: SimTime, end: SimTime, n: usize) -> Vec<(SimTime, f64)> {
        assert!(n >= 2 && end > start, "sample: need n>=2 and end>start");
        (0..n)
            .map(|k| {
                let t = start + (end - start) * k as u64 / (n as u64 - 1);
                (t, self.utilization_at(r, t))
            })
            .collect()
    }

    /// Peak occupancy per resource over the whole timeline.
    pub fn peak(&self) -> Vec<u64> {
        let nres = self.capacities.len();
        let mut peak = vec![0u64; nres];
        for (_, used) in &self.points {
            for r in 0..nres {
                peak[r] = peak[r].max(used[r]);
            }
        }
        peak
    }

    /// Time-weighted average utilization per resource between the first
    /// and last change points — must agree with the simulator's own
    /// integral on the same span.
    pub fn mean_utilization(&self) -> Vec<f64> {
        let nres = self.capacities.len();
        if self.points.len() < 2 {
            return vec![0.0; nres];
        }
        let t0 = self.points.first().unwrap().0;
        let t1 = self.points.last().unwrap().0;
        let span = (t1 - t0).max(1) as f64;
        let mut acc = vec![0.0f64; nres];
        for w in self.points.windows(2) {
            let dt = (w[1].0 - w[0].0) as f64;
            for (a, &u) in acc.iter_mut().zip(&w[0].1) {
                *a += u as f64 * dt;
            }
        }
        (0..nres)
            .map(|r| {
                if self.capacities[r] == 0 {
                    0.0
                } else {
                    acc[r] / (self.capacities[r] as f64 * span)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::HeadOfQueue;
    use crate::resources::SystemConfig;
    use crate::simulator::{SimParams, Simulator};

    fn run(jobs: Vec<Job>) -> (SimReport, Vec<Job>, Vec<u64>) {
        let config = SystemConfig::two_resource(8, 4);
        let caps = config.capacities();
        let mut sim = Simulator::new(config, jobs.clone(), SimParams::default()).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        (report, jobs, caps)
    }

    #[test]
    fn occupancy_steps_match_schedule() {
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![4, 2]),
            Job::new(1, 50, 100, 100, vec![4, 2]),
        ];
        let (report, jobs, caps) = run(jobs);
        let tl = Timeline::from_report(&report, &jobs, &caps);
        assert_eq!(tl.at(0), vec![4, 2]);
        assert_eq!(tl.at(75), vec![8, 4], "both running in overlap");
        assert_eq!(tl.at(120), vec![4, 2], "first finished at t=100");
        assert_eq!(tl.at(1000), vec![0, 0]);
        assert_eq!(tl.peak(), vec![8, 4]);
    }

    #[test]
    fn utilization_before_first_event_is_zero() {
        let jobs = vec![Job::new(0, 100, 50, 50, vec![2, 0])];
        let (report, jobs, caps) = run(jobs);
        let tl = Timeline::from_report(&report, &jobs, &caps);
        assert_eq!(tl.utilization_at(0, 0), 0.0);
        assert_eq!(tl.utilization_at(0, 120), 0.25);
    }

    #[test]
    fn mean_matches_simulator_integral() {
        let jobs = vec![
            Job::new(0, 0, 200, 200, vec![4, 0]),
            Job::new(1, 0, 100, 100, vec![4, 4]),
            Job::new(2, 50, 300, 400, vec![2, 1]),
        ];
        let (report, jobs, caps) = run(jobs);
        let tl = Timeline::from_report(&report, &jobs, &caps);
        let mean = tl.mean_utilization();
        for (r, &sim_util) in report.resource_utilization.iter().enumerate() {
            assert!(
                (mean[r] - sim_util).abs() < 1e-9,
                "resource {r}: timeline {} vs simulator {}",
                mean[r],
                sim_util
            );
        }
    }

    #[test]
    fn sample_produces_monotone_times() {
        let jobs = vec![Job::new(0, 0, 500, 500, vec![8, 0])];
        let (report, jobs, caps) = run(jobs);
        let tl = Timeline::from_report(&report, &jobs, &caps);
        let series = tl.sample(0, 0, 500, 11);
        assert_eq!(series.len(), 11);
        assert!(series.windows(2).all(|w| w[0].0 < w[1].0));
        assert!((series[5].1 - 1.0).abs() < 1e-12, "fully busy mid-run");
    }

    #[test]
    fn empty_report_is_safe() {
        let tl = Timeline { points: vec![], capacities: vec![4, 4] };
        assert_eq!(tl.at(10), vec![0, 0]);
        assert_eq!(tl.mean_utilization(), vec![0.0, 0.0]);
        assert_eq!(tl.peak(), vec![0, 0]);
    }
}
