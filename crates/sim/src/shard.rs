//! Sharded multi-cluster simulation with a deterministic merge.
//!
//! A million-job campaign rarely models one machine: it is a fleet of
//! clusters (or one cluster split into independent partitions), each an
//! independent DES. This module runs such a fleet across threads using
//! the same striped worker pattern as `mrsch-eval`'s `EvalPlan`: worker
//! `w` of `k` simulates shards `w, w + k, w + 2k, ...` and results land
//! in a slot vector indexed by shard, so the returned reports are in
//! shard order **regardless of worker count or completion timing**. Each
//! shard's simulation is single-threaded and bit-deterministic, which
//! makes the whole fleet deterministic: `workers(1)` and `workers(8)`
//! produce byte-identical report vectors (the large-trace determinism
//! suite pins exactly that).

use crate::event::{EventQueue, IndexedEventQueue, InjectedEvent};
use crate::job::{Job, JobId};
use crate::metrics::SimReport;
use crate::policy::Policy;
use crate::resources::SystemConfig;
use crate::simulator::{SimError, SimParams, Simulator};
use crate::SimTime;
use std::path::{Path, PathBuf};

/// Everything one shard needs to simulate independently.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// The shard's cluster configuration.
    pub config: SystemConfig,
    /// Dense-id trace for this shard.
    pub jobs: Vec<Job>,
    /// Simulation parameters.
    pub params: SimParams,
    /// Disruption events injected before the run.
    pub events: Vec<InjectedEvent>,
    /// Wait-aware relative cancels (`Simulator::schedule_cancel_after_start`).
    pub relative_cancels: Vec<(JobId, SimTime)>,
}

impl ShardSpec {
    /// A clean shard (no disruptions).
    pub fn new(config: SystemConfig, jobs: Vec<Job>, params: SimParams) -> Self {
        Self { config, jobs, params, events: Vec::new(), relative_cancels: Vec::new() }
    }
}

/// Periodic checkpointing for a fleet run: every `every` processed
/// event batches each shard overwrites `dir/shard-NNNN.snap` with its
/// current [`Simulator::snapshot`] (written crash-safely via a temp
/// file + rename, so a kill mid-write never leaves a torn snapshot).
#[derive(Clone, Debug)]
pub struct SnapshotConfig {
    /// Event batches between snapshots (at least 1).
    pub every: u64,
    /// Directory receiving one `shard-NNNN.snap` per shard.
    pub dir: PathBuf,
}

/// A fleet of independent shards plus a worker count.
#[derive(Clone, Debug)]
pub struct ShardedSim {
    shards: Vec<ShardSpec>,
    workers: usize,
    snapshots: Option<SnapshotConfig>,
}

impl ShardedSim {
    /// A fleet over the given shards, serial by default.
    pub fn new(shards: Vec<ShardSpec>) -> Self {
        Self { shards, workers: 1, snapshots: None }
    }

    /// Set the worker-thread count (clamped to at least 1; more workers
    /// than shards is harmless). Returns `self` for chaining.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enable periodic checkpoints: every `every` event batches each
    /// shard rewrites its `shard-NNNN.snap` in `dir` (the CLI's
    /// `--snapshot-every N --snapshot-dir DIR`). Returns `self` for
    /// chaining.
    pub fn snapshots(mut self, every: u64, dir: impl Into<PathBuf>) -> Self {
        self.snapshots = Some(SnapshotConfig { every: every.max(1), dir: dir.into() });
        self
    }

    /// Number of shards in the fleet.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Simulate every shard with the default indexed event queue.
    ///
    /// `make_policy(shard_index)` builds each shard's policy — shards
    /// never share policy state, which is what keeps the fleet
    /// embarrassingly parallel *and* deterministic.
    pub fn run_with<F>(&self, make_policy: &F) -> Result<Vec<SimReport>, SimError>
    where
        F: Fn(usize) -> Box<dyn Policy + Send> + Sync,
    {
        self.run_with_queue::<IndexedEventQueue, F>(make_policy)
    }

    /// [`ShardedSim::run_with`] generic over the event-queue
    /// implementation (the determinism suite cross-checks both).
    pub fn run_with_queue<Q, F>(&self, make_policy: &F) -> Result<Vec<SimReport>, SimError>
    where
        Q: EventQueue,
        F: Fn(usize) -> Box<dyn Policy + Send> + Sync,
    {
        let n = self.shards.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = self.workers.min(n);
        let snap = self.snapshots.as_ref();
        if workers == 1 {
            return (0..n)
                .map(|i| run_shard::<Q>(&self.shards[i], i, snap, make_policy(i)))
                .collect();
        }
        let mut slots: Vec<Option<Result<SimReport, SimError>>> = (0..n).map(|_| None).collect();
        let shards = &self.shards;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut idx = w;
                        while idx < n {
                            out.push((idx, run_shard::<Q>(&shards[idx], idx, snap, make_policy(idx))));
                            idx += workers;
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                for (idx, report) in handle.join().expect("shard worker panicked") {
                    slots[idx] = Some(report);
                }
            }
        });
        slots.into_iter().map(|slot| slot.expect("every shard simulated")).collect()
    }
}

/// Simulate one shard start to finish, optionally checkpointing.
fn run_shard<Q: EventQueue>(
    spec: &ShardSpec,
    index: usize,
    snap: Option<&SnapshotConfig>,
    mut policy: Box<dyn Policy + Send>,
) -> Result<SimReport, SimError> {
    let mut sim: Simulator<Q> =
        Simulator::with_queue(spec.config.clone(), spec.jobs.clone(), spec.params)?;
    sim.inject_all(&spec.events)?;
    for &(id, delay) in &spec.relative_cancels {
        sim.schedule_cancel_after_start(id, delay)?;
    }
    let Some(cfg) = snap else {
        return Ok(sim.run(policy.as_mut()));
    };
    // Stepped run: snapshots land only at event-batch boundaries, where
    // restore-and-continue is bit-identical to never stopping.
    let mut batches = 0u64;
    while sim.step(policy.as_mut()) {
        batches += 1;
        if batches % cfg.every == 0 {
            write_shard_snapshot(&cfg.dir, index, &sim)
                .map_err(|e| SimError::Snapshot(format!("shard {index}: {e}")))?;
        }
    }
    let report = sim.final_report();
    policy.episode_end(&report);
    Ok(report)
}

/// File name of shard `index`'s checkpoint inside a snapshot dir.
pub fn shard_snapshot_name(index: usize) -> String {
    format!("shard-{index:04}.snap")
}

/// Write one shard's checkpoint crash-safely (temp file in the same
/// directory, then an atomic rename over the previous snapshot) and
/// return its final path.
pub fn write_shard_snapshot<Q: EventQueue>(
    dir: &Path,
    index: usize,
    sim: &Simulator<Q>,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let name = shard_snapshot_name(index);
    let path = dir.join(&name);
    let tmp = dir.join(format!(".{name}.tmp"));
    std::fs::write(&tmp, sim.snapshot())?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Deal a job stream round-robin into `shards` dense-id traces: job `i`
/// of the input becomes job `i / shards` of shard `i % shards`. Submit
/// order (and thus each shard's FCFS order) is preserved.
pub fn partition_round_robin(jobs: &[Job], shards: usize) -> Vec<Vec<Job>> {
    let shards = shards.max(1);
    let mut out: Vec<Vec<Job>> = (0..shards).map(|_| Vec::new()).collect();
    for (i, job) in jobs.iter().enumerate() {
        let mut j = job.clone();
        j.id = i / shards;
        out[i % shards].push(j);
    }
    out
}

/// Fleet-level aggregates with a deterministic episode-order merge: every
/// total folds over the reports in shard order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardTotals {
    /// Shards merged.
    pub shards: usize,
    /// Sum of completed jobs.
    pub jobs_completed: usize,
    /// Sum of cancelled jobs.
    pub jobs_cancelled: usize,
    /// Sum of walltime-killed jobs.
    pub jobs_killed: usize,
    /// Sum of jobs still waiting at the horizon.
    pub jobs_unfinished: usize,
    /// Total events processed across the fleet.
    pub events: u64,
    /// Total policy decisions.
    pub decisions: u64,
    /// Total scheduling instances.
    pub instances: u64,
    /// Earliest shard start time.
    pub start_time: SimTime,
    /// Latest shard end time.
    pub end_time: SimTime,
}

impl ShardTotals {
    /// Merge per-shard reports (in shard order).
    pub fn merge(reports: &[SimReport]) -> Self {
        let mut totals = Self { shards: reports.len(), ..Self::default() };
        totals.start_time = reports.iter().map(|r| r.start_time).min().unwrap_or(0);
        for r in reports {
            totals.jobs_completed += r.jobs_completed;
            totals.jobs_cancelled += r.jobs_cancelled;
            totals.jobs_killed += r.jobs_killed;
            totals.jobs_unfinished += r.jobs_unfinished;
            totals.events += r.event_counts.total();
            totals.decisions += r.decisions;
            totals.instances += r.instances;
            totals.end_time = totals.end_time.max(r.end_time);
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BinaryHeapEventQueue;
    use crate::policy::HeadOfQueue;

    fn fleet(nshards: usize) -> ShardedSim {
        let jobs: Vec<Job> = (0..60)
            .map(|i| {
                Job::new(
                    i,
                    (i as SimTime) * 7,
                    20 + (i as SimTime * 13) % 90,
                    150,
                    vec![1 + (i as u64 % 4), i as u64 % 3],
                )
            })
            .collect();
        let shards = partition_round_robin(&jobs, nshards)
            .into_iter()
            .map(|js| ShardSpec::new(SystemConfig::two_resource(6, 6), js, SimParams::default()))
            .collect();
        ShardedSim::new(shards)
    }

    fn fcfs() -> Box<dyn Policy + Send> {
        Box::new(HeadOfQueue)
    }

    #[test]
    fn partition_deals_round_robin_with_dense_ids() {
        let jobs: Vec<Job> =
            (0..7).map(|i| Job::new(i, i as SimTime, 10, 10, vec![1])).collect();
        let parts = partition_round_robin(&jobs, 3);
        assert_eq!(parts.iter().map(Vec::len).collect::<Vec<_>>(), vec![3, 2, 2]);
        for part in &parts {
            for (idx, job) in part.iter().enumerate() {
                assert_eq!(job.id, idx, "shard ids re-densified");
            }
        }
        // Submit order inside each shard is preserved.
        assert_eq!(parts[1].iter().map(|j| j.submit).collect::<Vec<_>>(), vec![1, 4]);
    }

    #[test]
    fn worker_count_does_not_change_any_report() {
        let one = fleet(4).workers(1).run_with(&|_| fcfs()).unwrap();
        let two = fleet(4).workers(2).run_with(&|_| fcfs()).unwrap();
        let four = fleet(4).workers(4).run_with(&|_| fcfs()).unwrap();
        let eight = fleet(4).workers(8).run_with(&|_| fcfs()).unwrap();
        assert_eq!(one, two, "1 vs 2 workers");
        assert_eq!(one, four, "1 vs 4 workers");
        assert_eq!(one, eight, "more workers than shards is harmless");
    }

    #[test]
    fn queue_implementation_does_not_change_any_report() {
        let indexed = fleet(3).workers(3).run_with(&|_| fcfs()).unwrap();
        let heap =
            fleet(3).workers(3).run_with_queue::<BinaryHeapEventQueue, _>(&|_| fcfs()).unwrap();
        assert_eq!(indexed, heap);
    }

    #[test]
    fn totals_merge_accounts_every_job() {
        let reports = fleet(4).workers(2).run_with(&|_| fcfs()).unwrap();
        let totals = ShardTotals::merge(&reports);
        assert_eq!(totals.shards, 4);
        assert_eq!(
            totals.jobs_completed
                + totals.jobs_cancelled
                + totals.jobs_killed
                + totals.jobs_unfinished,
            60
        );
        assert!(totals.events > 0);
        assert!(totals.end_time > totals.start_time);
    }

    #[test]
    fn periodic_snapshots_restore_to_the_uninterrupted_reports() {
        let dir = std::env::temp_dir()
            .join(format!("mrsim-shard-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reference = fleet(3).workers(1).run_with(&|_| fcfs()).unwrap();
        let with_snaps =
            fleet(3).workers(2).snapshots(3, &dir).run_with(&|_| fcfs()).unwrap();
        assert_eq!(with_snaps, reference, "checkpointing must not perturb the run");
        for (i, expected) in reference.iter().enumerate() {
            let path = dir.join(shard_snapshot_name(i));
            let bytes = std::fs::read(&path)
                .unwrap_or_else(|e| panic!("snapshot for shard {i} at {path:?}: {e}"));
            let mut sim = Simulator::<IndexedEventQueue>::restore(&bytes).unwrap();
            let mut policy = fcfs();
            while sim.step(policy.as_mut()) {}
            assert_eq!(
                &sim.final_report(),
                expected,
                "shard {i} restored from its last periodic snapshot diverged"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_snapshot_dir_surfaces_a_snapshot_error() {
        let dir = std::env::temp_dir()
            .join(format!("mrsim-shard-snap-ro-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A *file* where the directory should be makes create_dir_all fail.
        std::fs::write(&dir, b"not a directory").unwrap();
        let err = fleet(2).snapshots(1, &dir).run_with(&|_| fcfs()).unwrap_err();
        assert!(matches!(err, SimError::Snapshot(_)), "got {err:?}");
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn empty_fleet_is_fine() {
        let reports = ShardedSim::new(Vec::new()).workers(4).run_with(&|_| fcfs()).unwrap();
        assert!(reports.is_empty());
        assert_eq!(ShardTotals::merge(&reports).shards, 0);
    }

    #[test]
    fn invalid_shard_surfaces_the_error() {
        let bad = ShardSpec::new(
            SystemConfig::two_resource(2, 2),
            vec![Job::new(0, 0, 10, 10, vec![5, 0])], // infeasible demand
            SimParams::default(),
        );
        let err = ShardedSim::new(vec![bad]).run_with(&|_| fcfs()).unwrap_err();
        assert!(matches!(err, SimError::InvalidJob(_)));
    }
}
