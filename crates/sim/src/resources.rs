//! Schedulable resources and the live allocation state of the system.
//!
//! Every resource is a *pool of interchangeable units* — compute nodes,
//! terabytes of burst buffer, kilowatts of a power budget. A job requests
//! an integer unit count per pool and holds those units for its whole
//! execution. This uniform model is exactly what the paper's state
//! encoding assumes ("The resource unit can be defined by the system
//! administrator, e.g., a node for the CPU resource or a TB burst buffer
//! as the unit for the burst buffer resource", §III-A).

use crate::job::{Job, JobId};
use crate::SimTime;
use serde::{Deserialize, Serialize};

/// Static description of one schedulable resource pool.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceSpec {
    /// Human-readable name ("nodes", "burst_buffer_tb", "power_kw").
    pub name: String,
    /// Total number of interchangeable units in the pool.
    pub capacity: u64,
}

impl ResourceSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        Self { name: name.into(), capacity }
    }
}

/// Static description of the whole system: an ordered list of pools.
///
/// Job demand vectors are aligned with this order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The schedulable resource pools.
    pub resources: Vec<ResourceSpec>,
}

impl SystemConfig {
    /// A system with arbitrary pools.
    pub fn new(resources: Vec<ResourceSpec>) -> Self {
        assert!(!resources.is_empty(), "SystemConfig: need at least one resource");
        Self { resources }
    }

    /// Two-resource system: compute nodes + burst-buffer units.
    pub fn two_resource(nodes: u64, burst_buffer: u64) -> Self {
        Self::new(vec![
            ResourceSpec::new("nodes", nodes),
            ResourceSpec::new("burst_buffer_tb", burst_buffer),
        ])
    }

    /// Three-resource system of the §V-E case study: nodes, burst buffer,
    /// and a power budget expressed in kW units.
    pub fn three_resource(nodes: u64, burst_buffer: u64, power_kw: u64) -> Self {
        Self::new(vec![
            ResourceSpec::new("nodes", nodes),
            ResourceSpec::new("burst_buffer_tb", burst_buffer),
            ResourceSpec::new("power_kw", power_kw),
        ])
    }

    /// The paper's full Theta configuration: 4392 compute nodes and a
    /// 1.26 PB shared burst buffer in TB units (1293 units), giving the
    /// state-vector size 4W + 2·4392 + 2·1293 = 11410 for W = 10 (§IV-C).
    pub fn theta() -> Self {
        Self::two_resource(4392, 1293)
    }

    /// A proportionally scaled system used by the default experiments so
    /// the full train/evaluate pipeline runs at laptop scale: 256 nodes
    /// and a 75-unit burst buffer (~same node:BB ratio as Theta).
    pub fn scaled() -> Self {
        Self::two_resource(256, 75)
    }

    /// Number of resource pools.
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// Capacity vector.
    pub fn capacities(&self) -> Vec<u64> {
        self.resources.iter().map(|r| r.capacity).collect()
    }

    /// Validate a job against this system: demand vector length matches
    /// and no demand exceeds pool capacity (otherwise the job could never
    /// start and the simulation would deadlock).
    pub fn validate_job(&self, job: &Job) -> Result<(), String> {
        if job.demands.len() != self.resources.len() {
            return Err(format!(
                "job {} has {} demands but system has {} resources",
                job.id,
                job.demands.len(),
                self.resources.len()
            ));
        }
        for (r, spec) in self.resources.iter().enumerate() {
            if job.demands[r] > spec.capacity {
                return Err(format!(
                    "job {} demands {} {} but capacity is {}",
                    job.id, job.demands[r], spec.name, spec.capacity
                ));
            }
        }
        Ok(())
    }
}

/// One running job's allocation, tracked for release-time estimation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// The running job.
    pub job: JobId,
    /// Units held per resource.
    pub demands: Vec<u64>,
    /// Time the job started.
    pub start: SimTime,
    /// *Estimated* end time (`start + estimate`) — what policies and
    /// backfilling may plan with.
    pub est_end: SimTime,
    /// Actual end time (`start + runtime`) — simulator-internal.
    pub actual_end: SimTime,
}

/// Live allocation state of all pools.
///
/// Capacity is *time-varying*: [`PoolState::adjust_capacity`] applies
/// node drains/returns and power-cap ramps. A shrink larger than the
/// currently free units does not kill anything — the excess is parked in
/// a per-pool *drain debt* and absorbed as running jobs release, exactly
/// like `scontrol update state=drain`. [`PoolState::check_conservation`]
/// (`free + held == capacity`) holds at every instant throughout.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PoolState {
    /// Configured (static) capacity — the denominator of encoder layouts.
    /// Fields are `pub(crate)` for `crate::snapshot`, which persists and
    /// reconstructs this state verbatim (incl. drain debt).
    pub(crate) base_capacities: Vec<u64>,
    /// Current online capacity.
    pub(crate) capacities: Vec<u64>,
    pub(crate) free: Vec<u64>,
    /// Units scheduled for removal that are still held by running jobs.
    pub(crate) draining: Vec<u64>,
    pub(crate) running: Vec<Allocation>,
}

impl PoolState {
    /// Fresh, fully idle state.
    pub fn new(config: &SystemConfig) -> Self {
        let capacities = config.capacities();
        Self {
            base_capacities: capacities.clone(),
            free: capacities.clone(),
            draining: vec![0; capacities.len()],
            capacities,
            running: Vec::new(),
        }
    }

    /// Current online capacity of pool `r`.
    pub fn capacity(&self, r: usize) -> u64 {
        self.capacities[r]
    }

    /// Configured capacity of pool `r` (before any capacity changes).
    pub fn base_capacity(&self, r: usize) -> u64 {
        self.base_capacities[r]
    }

    /// Units of pool `r` pending removal (drain debt held by running jobs).
    pub fn draining(&self, r: usize) -> u64 {
        self.draining[r]
    }

    /// Fraction of configured capacity currently online, in `[0, ∞)`.
    /// 1.0 means no disruption; a 25 % node drain reads 0.75.
    pub fn online_fraction(&self, r: usize) -> f64 {
        if self.base_capacities[r] == 0 {
            1.0
        } else {
            self.capacities[r] as f64 / self.base_capacities[r] as f64
        }
    }

    /// Apply a capacity change of `delta` units to pool `r`.
    ///
    /// Positive deltas first pay down drain debt (a return cancels a
    /// pending drain without any unit movement, because drained-but-held
    /// units never left `capacities`), then bring fresh units online.
    /// Negative deltas take free units immediately and park the excess as
    /// drain debt to be absorbed by future releases. A shrink is clamped
    /// to the units that actually remain after pending debt — otherwise
    /// an over-drain would record *phantom* debt that silently eats
    /// later returns.
    pub fn adjust_capacity(&mut self, r: usize, delta: i64) {
        if delta >= 0 {
            let mut add = delta as u64;
            let undrain = add.min(self.draining[r]);
            self.draining[r] -= undrain;
            add -= undrain;
            self.capacities[r] += add;
            self.free[r] += add;
        } else {
            let cut = delta.unsigned_abs().min(self.capacities[r] - self.draining[r]);
            let immediate = cut.min(self.free[r]);
            self.free[r] -= immediate;
            self.capacities[r] -= immediate;
            self.draining[r] += cut - immediate;
        }
        debug_assert!(self.check_conservation());
    }

    /// Free units of pool `r`.
    pub fn free(&self, r: usize) -> u64 {
        self.free[r]
    }

    /// Used units of pool `r`.
    pub fn used(&self, r: usize) -> u64 {
        self.capacities[r] - self.free[r]
    }

    /// Instantaneous utilization of pool `r` in `[0, 1]`.
    pub fn utilization(&self, r: usize) -> f64 {
        if self.capacities[r] == 0 {
            0.0
        } else {
            self.used(r) as f64 / self.capacities[r] as f64
        }
    }

    /// Utilization vector over all pools — the DFP *measurement*.
    pub fn measurement(&self) -> Vec<f64> {
        (0..self.capacities.len()).map(|r| self.utilization(r)).collect()
    }

    /// Number of pools.
    pub fn num_resources(&self) -> usize {
        self.capacities.len()
    }

    /// Does `demands` fit in the currently free units of every pool?
    pub fn fits(&self, demands: &[u64]) -> bool {
        demands.iter().zip(&self.free).all(|(d, f)| d <= f)
    }

    /// Currently running allocations (unsorted).
    pub fn running(&self) -> &[Allocation] {
        &self.running
    }

    /// Number of running jobs.
    pub fn num_running(&self) -> usize {
        self.running.len()
    }

    /// Is the given job currently holding an allocation?
    pub fn is_running(&self, job: JobId) -> bool {
        self.running.iter().any(|a| a.job == job)
    }

    /// Allocate for a starting job.
    ///
    /// # Panics
    /// Panics if the job does not fit — callers must check [`fits`] first.
    ///
    /// [`fits`]: PoolState::fits
    pub fn allocate(&mut self, job: &Job, now: SimTime) {
        self.allocate_parts(job.id, &job.demands, now, job.estimate, job.runtime);
    }

    /// [`PoolState::allocate`] from unbundled fields — the simulator's
    /// slab-backed hot path, which has no `&Job` at hand.
    pub fn allocate_parts(
        &mut self,
        job: JobId,
        demands: &[u64],
        now: SimTime,
        estimate: SimTime,
        runtime: SimTime,
    ) {
        assert!(self.fits(demands), "allocate: job {job} does not fit");
        for (f, d) in self.free.iter_mut().zip(demands) {
            *f -= d;
        }
        self.running.push(Allocation {
            job,
            demands: demands.to_vec(),
            start: now,
            est_end: now + estimate,
            actual_end: now + runtime,
        });
    }

    /// Release the allocation of a finishing job, returning it. Freed
    /// units first pay down any pending drain debt before becoming
    /// available again.
    ///
    /// # Panics
    /// Panics if the job is not running.
    pub fn release(&mut self, job: JobId) -> Allocation {
        let idx = self
            .running
            .iter()
            .position(|a| a.job == job)
            .unwrap_or_else(|| panic!("release: job {job} is not running"));
        let alloc = self.running.swap_remove(idx);
        for (f, d) in self.free.iter_mut().zip(&alloc.demands) {
            *f += d;
        }
        for r in 0..self.capacities.len() {
            let absorb = self.draining[r].min(self.free[r]);
            if absorb > 0 {
                self.free[r] -= absorb;
                self.capacities[r] -= absorb;
                self.draining[r] -= absorb;
            }
        }
        debug_assert!(self.check_conservation());
        alloc
    }

    /// Per-unit `(available, estimated seconds until free)` encoding of
    /// pool `r` at time `now` — the state representation of §III-A.
    ///
    /// Free units come first as `(1.0, 0.0)`; occupied units follow in
    /// ascending estimated-release order (ties broken by job id) so the
    /// encoding is deterministic. If a running job has overstayed its
    /// estimate the remaining time clamps to zero.
    pub fn unit_vector(&self, r: usize, now: SimTime) -> Vec<(f32, f32)> {
        let mut v = Vec::with_capacity(self.capacities[r] as usize);
        for _ in 0..self.free[r] {
            v.push((1.0, 0.0));
        }
        let mut occupied: Vec<(SimTime, JobId, u64)> = self
            .running
            .iter()
            .filter(|a| a.demands[r] > 0)
            .map(|a| (a.est_end, a.job, a.demands[r]))
            .collect();
        occupied.sort_unstable();
        for (est_end, _, units) in occupied {
            let remaining = est_end.saturating_sub(now) as f32;
            for _ in 0..units {
                v.push((0.0, remaining));
            }
        }
        debug_assert_eq!(v.len() as u64, self.capacities[r]);
        v
    }

    /// Estimated free units of pool `r` at future time `t`, assuming every
    /// running job releases at its *estimated* end and nothing new starts.
    /// Pending drain debt is honored: freed units are absorbed by the
    /// drain before becoming available, exactly as [`PoolState::release`]
    /// will do.
    pub fn projected_free(&self, r: usize, t: SimTime) -> u64 {
        let mut free = self.free[r];
        for a in &self.running {
            if a.est_end <= t {
                free += a.demands[r];
            }
        }
        free.saturating_sub(self.draining[r])
    }

    /// Internal consistency check: free + Σ running demands == capacity
    /// for every pool. Used by tests and debug assertions.
    pub fn check_conservation(&self) -> bool {
        (0..self.capacities.len()).all(|r| {
            let held: u64 = self.running.iter().map(|a| a.demands[r]).sum();
            self.free[r] + held == self.capacities[r]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: JobId, runtime: SimTime, est: SimTime, demands: Vec<u64>) -> Job {
        Job::new(id, 0, runtime, est, demands)
    }

    #[test]
    fn theta_state_vector_size_matches_paper() {
        // §IV-C: [4W + 2*N1 + 2*N2, 1] = [11410, 1] with W = 10.
        let cfg = SystemConfig::theta();
        let w = 10;
        let n1 = cfg.resources[0].capacity as usize;
        let n2 = cfg.resources[1].capacity as usize;
        assert_eq!(4 * w + 2 * n1 + 2 * n2, 11410);
    }

    #[test]
    fn allocate_release_conserves_units() {
        let cfg = SystemConfig::two_resource(10, 5);
        let mut pools = PoolState::new(&cfg);
        let j = job(0, 100, 120, vec![4, 2]);
        assert!(pools.fits(&j.demands));
        pools.allocate(&j, 0);
        assert_eq!(pools.free(0), 6);
        assert_eq!(pools.free(1), 3);
        assert!(pools.check_conservation());
        let alloc = pools.release(0);
        assert_eq!(alloc.est_end, 120);
        assert_eq!(alloc.actual_end, 100);
        assert_eq!(pools.free(0), 10);
        assert!(pools.check_conservation());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn over_allocate_panics() {
        let cfg = SystemConfig::two_resource(2, 2);
        let mut pools = PoolState::new(&cfg);
        pools.allocate(&job(0, 10, 10, vec![3, 0]), 0);
    }

    #[test]
    fn utilization_and_measurement() {
        let cfg = SystemConfig::two_resource(10, 4);
        let mut pools = PoolState::new(&cfg);
        pools.allocate(&job(0, 10, 10, vec![5, 1]), 0);
        assert!((pools.utilization(0) - 0.5).abs() < 1e-12);
        assert!((pools.utilization(1) - 0.25).abs() < 1e-12);
        assert_eq!(pools.measurement(), vec![0.5, 0.25]);
    }

    #[test]
    fn unit_vector_orders_by_release_time() {
        let cfg = SystemConfig::two_resource(4, 2);
        let mut pools = PoolState::new(&cfg);
        pools.allocate(&job(0, 50, 60, vec![1, 0]), 0);
        pools.allocate(&job(1, 20, 30, vec![2, 0]), 0);
        let v = pools.unit_vector(0, 10);
        // 1 free unit, then job1's 2 units (est release 30-10=20), then job0's.
        assert_eq!(v[0], (1.0, 0.0));
        assert_eq!(v[1], (0.0, 20.0));
        assert_eq!(v[2], (0.0, 20.0));
        assert_eq!(v[3], (0.0, 50.0));
    }

    #[test]
    fn unit_vector_clamps_overstayed_estimates() {
        let cfg = SystemConfig::two_resource(1, 1);
        let mut pools = PoolState::new(&cfg);
        pools.allocate(&job(0, 100, 10, vec![1, 1]), 0);
        // estimate = max(10, runtime) = 100 per Job::new; craft manually:
        let v = pools.unit_vector(0, 500);
        assert_eq!(v[0].1, 0.0, "past-estimate remaining time clamps to 0");
    }

    #[test]
    fn projected_free_uses_estimates() {
        let cfg = SystemConfig::two_resource(4, 4);
        let mut pools = PoolState::new(&cfg);
        pools.allocate(&job(0, 100, 100, vec![3, 0]), 0); // est end 100
        assert_eq!(pools.projected_free(0, 50), 1);
        assert_eq!(pools.projected_free(0, 100), 4);
    }

    #[test]
    fn projected_free_honors_pending_drain_debt() {
        let cfg = SystemConfig::two_resource(10, 4);
        let mut pools = PoolState::new(&cfg);
        pools.allocate(&job(0, 100, 100, vec![8, 0]), 0); // free = 2
        pools.adjust_capacity(0, -6); // 2 removed now, 4 parked as debt
        // At the release, the 8 freed units first pay the 4-unit debt:
        // only 4 are actually available.
        assert_eq!(pools.projected_free(0, 100), 4);
        assert_eq!(pools.projected_free(0, 50), 0, "debt exceeds current free");
    }

    #[test]
    fn validate_job_catches_mismatches() {
        let cfg = SystemConfig::two_resource(4, 4);
        assert!(cfg.validate_job(&job(0, 1, 1, vec![1, 1])).is_ok());
        assert!(cfg.validate_job(&job(1, 1, 1, vec![1])).is_err());
        assert!(cfg.validate_job(&job(2, 1, 1, vec![5, 0])).is_err());
    }

    #[test]
    fn named_configs() {
        assert_eq!(SystemConfig::theta().capacities(), vec![4392, 1293]);
        assert_eq!(SystemConfig::three_resource(8, 4, 500).num_resources(), 3);
    }

    #[test]
    fn capacity_shrink_takes_free_units_immediately() {
        let cfg = SystemConfig::two_resource(10, 4);
        let mut pools = PoolState::new(&cfg);
        pools.adjust_capacity(0, -3);
        assert_eq!(pools.capacity(0), 7);
        assert_eq!(pools.free(0), 7);
        assert_eq!(pools.draining(0), 0);
        assert_eq!(pools.base_capacity(0), 10);
        assert!((pools.online_fraction(0) - 0.7).abs() < 1e-12);
        assert!(pools.check_conservation());
    }

    #[test]
    fn capacity_shrink_beyond_free_becomes_drain_debt() {
        let cfg = SystemConfig::two_resource(10, 4);
        let mut pools = PoolState::new(&cfg);
        pools.allocate(&job(0, 100, 100, vec![8, 0]), 0);
        // Only 2 free: a 5-unit drain removes 2 now, parks 3 as debt.
        pools.adjust_capacity(0, -5);
        assert_eq!(pools.capacity(0), 8);
        assert_eq!(pools.free(0), 0);
        assert_eq!(pools.draining(0), 3);
        assert!(pools.check_conservation());
        // The release pays the debt before freeing units.
        pools.release(0);
        assert_eq!(pools.capacity(0), 5);
        assert_eq!(pools.free(0), 5);
        assert_eq!(pools.draining(0), 0);
        assert!(pools.check_conservation());
    }

    #[test]
    fn capacity_return_cancels_drain_debt_first() {
        let cfg = SystemConfig::two_resource(10, 4);
        let mut pools = PoolState::new(&cfg);
        pools.allocate(&job(0, 100, 100, vec![9, 0]), 0);
        pools.adjust_capacity(0, -4); // 1 free removed, 3 parked
        assert_eq!(pools.draining(0), 3);
        // Returning 4 units: 3 cancel the debt (no unit movement), 1 fresh.
        pools.adjust_capacity(0, 4);
        assert_eq!(pools.draining(0), 0);
        assert_eq!(pools.capacity(0), 10);
        assert_eq!(pools.free(0), 1);
        assert!(pools.check_conservation());
        pools.release(0);
        assert_eq!(pools.free(0), 10);
        assert!(pools.check_conservation());
    }

    #[test]
    fn over_drain_clamps_instead_of_recording_phantom_debt() {
        // Idle 10-unit pool: a -20 drain can only remove the 10 units
        // that exist; a +10 return must restore full capacity.
        let cfg = SystemConfig::two_resource(10, 4);
        let mut pools = PoolState::new(&cfg);
        pools.adjust_capacity(0, -20);
        assert_eq!(pools.capacity(0), 0);
        assert_eq!(pools.draining(0), 0, "no phantom debt");
        pools.adjust_capacity(0, 10);
        assert_eq!(pools.capacity(0), 10);
        assert_eq!(pools.free(0), 10);
        // With held units: 8 held, -20 drain = 2 immediate + 8 debt max.
        let mut pools = PoolState::new(&cfg);
        pools.allocate(&job(0, 10, 10, vec![8, 0]), 0);
        pools.adjust_capacity(0, -20);
        assert_eq!(pools.capacity(0), 8);
        assert_eq!(pools.draining(0), 8, "debt capped at held units");
        pools.release(0);
        assert_eq!(pools.capacity(0), 0);
        pools.adjust_capacity(0, 10);
        assert_eq!(pools.capacity(0), 10);
        assert!(pools.check_conservation());
    }

    #[test]
    fn measurement_normalizes_by_current_capacity() {
        let cfg = SystemConfig::two_resource(8, 4);
        let mut pools = PoolState::new(&cfg);
        pools.allocate(&job(0, 10, 10, vec![4, 0]), 0);
        assert_eq!(pools.measurement()[0], 0.5);
        pools.adjust_capacity(0, -2); // 8 -> 6 online, 4 still used
        assert!((pools.measurement()[0] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn is_running_tracks_allocations() {
        let cfg = SystemConfig::two_resource(4, 4);
        let mut pools = PoolState::new(&cfg);
        assert!(!pools.is_running(0));
        pools.allocate(&job(0, 10, 10, vec![1, 0]), 0);
        assert!(pools.is_running(0));
        pools.release(0);
        assert!(!pools.is_running(0));
    }
}
