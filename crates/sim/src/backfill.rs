//! Reservation and EASY backfilling (§II-A, §III-C of the paper).
//!
//! When the selected job cannot start, the scheduler *reserves* it: it
//! computes the earliest future time (the **shadow time**) at which the
//! job will fit, assuming running jobs release their resources at their
//! user-estimated end times. Waiting jobs behind the reservation may then
//! *backfill* onto currently free resources provided they cannot delay the
//! reservation: either they finish (by estimate) before the shadow time,
//! or they only consume units that remain spare even after the reserved
//! job starts.

use crate::resources::PoolState;
use crate::SimTime;

/// The reservation computed for a job that could not start immediately.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReservationPlan {
    /// Earliest time the reserved job fits, assuming estimated releases.
    pub shadow: SimTime,
    /// Per-resource spare units at the shadow time *after* the reserved
    /// job starts — the "extra" capacity long-running backfill jobs may
    /// consume without delaying the reservation.
    pub extra: Vec<u64>,
}

/// Compute the reservation plan for `job` against the current pool state.
///
/// Candidate shadow times are `now` plus every distinct estimated release
/// time of a running allocation; the earliest candidate where the job's
/// full demand fits is chosen. Returns `None` when no candidate fits —
/// which can only happen while capacity is drained below the job's
/// demand (static validation guarantees a fit at full capacity). The
/// reservation then waits for a capacity-return event to re-trigger
/// scheduling; see `Simulator::backfill_pass` for how backfilling
/// proceeds without a shadow time.
pub fn compute_reservation(
    pools: &PoolState,
    demands: &[u64],
    now: SimTime,
) -> Option<ReservationPlan> {
    let nres = pools.num_resources();
    let mut candidates: Vec<SimTime> = vec![now];
    candidates.extend(
        pools
            .running()
            .iter()
            .map(|a| a.est_end.max(now)),
    );
    candidates.sort_unstable();
    candidates.dedup();
    for &t in &candidates {
        let fits = (0..nres).all(|r| pools.projected_free(r, t) >= demands[r]);
        if fits {
            let extra = (0..nres)
                .map(|r| pools.projected_free(r, t) - demands[r])
                .collect();
            return Some(ReservationPlan { shadow: t, extra });
        }
    }
    None
}

/// May `candidate` backfill right now without delaying the reservation?
///
/// EASY rule, generalized to multiple resources:
/// 1. the candidate must fit in the currently free units of every pool;
/// 2. *and* either it is estimated to finish no later than the shadow
///    time, or its demand fits within the plan's per-resource `extra`
///    units (so the reserved job can still start on time even if the
///    candidate runs long).
pub fn can_backfill(
    plan: &ReservationPlan,
    pools: &PoolState,
    demands: &[u64],
    estimate: SimTime,
    now: SimTime,
) -> bool {
    if !pools.fits(demands) {
        return false;
    }
    if now + estimate <= plan.shadow {
        return true;
    }
    demands.iter().zip(&plan.extra).all(|(d, e)| d <= e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::resources::SystemConfig;

    fn setup() -> (SystemConfig, PoolState) {
        let cfg = SystemConfig::two_resource(10, 10);
        let pools = PoolState::new(&cfg);
        (cfg, pools)
    }

    fn job(id: usize, runtime: SimTime, est: SimTime, demands: Vec<u64>) -> Job {
        Job::new(id, 0, runtime, est, demands)
    }

    #[test]
    fn shadow_is_now_when_fits_immediately() {
        let (_, pools) = setup();
        let j = job(0, 10, 10, vec![5, 5]);
        let plan = compute_reservation(&pools, &j.demands, 100).unwrap();
        assert_eq!(plan.shadow, 100);
        assert_eq!(plan.extra, vec![5, 5]);
    }

    #[test]
    fn shadow_waits_for_earliest_sufficient_release() {
        let (_, mut pools) = setup();
        // Two running jobs: one frees 4 nodes at t=50, another 4 at t=80.
        pools.allocate(&job(0, 50, 50, vec![4, 0]), 0);
        pools.allocate(&job(1, 80, 80, vec![4, 0]), 0);
        // Reserved job needs 8 nodes; free now = 2; after t=50 -> 6; after t=80 -> 10.
        let reserved = job(2, 100, 100, vec![8, 0]);
        let plan = compute_reservation(&pools, &reserved.demands, 10).unwrap();
        assert_eq!(plan.shadow, 80);
        assert_eq!(plan.extra, vec![2, 10]);
    }

    #[test]
    fn short_job_backfills_ahead_of_shadow() {
        let (_, mut pools) = setup();
        pools.allocate(&job(0, 100, 100, vec![9, 0]), 0);
        let reserved = job(1, 50, 50, vec![5, 0]);
        let plan = compute_reservation(&pools, &reserved.demands, 0).unwrap();
        assert_eq!(plan.shadow, 100);
        // 1 node free; a 1-node job estimated at 60s finishes before t=100.
        let shortie = job(2, 60, 60, vec![1, 0]);
        assert!(can_backfill(&plan, &pools, &shortie.demands, shortie.estimate, 0));
    }

    #[test]
    fn long_job_blocked_unless_it_fits_in_extra() {
        let (_, mut pools) = setup();
        pools.allocate(&job(0, 100, 100, vec![9, 0]), 0);
        let reserved = job(1, 50, 50, vec![5, 0]);
        let plan = compute_reservation(&pools, &reserved.demands, 0).unwrap();
        // extra = projected_free(100) - 5 = 10 - 5 = 5 nodes.
        assert_eq!(plan.extra[0], 5);
        // 1-node job running past shadow: 1 <= extra, may backfill.
        let long_small = job(2, 500, 500, vec![1, 0]);
        assert!(can_backfill(&plan, &pools, &long_small.demands, long_small.estimate, 0));
        // But it must also fit NOW: only 1 node free, so 2-node job cannot.
        let long_big = job(3, 500, 500, vec![2, 0]);
        assert!(!can_backfill(&plan, &pools, &long_big.demands, long_big.estimate, 0));
    }

    #[test]
    fn backfill_respects_every_resource() {
        let (_, mut pools) = setup();
        // 5 nodes and all 10 BB are held until t=100.
        pools.allocate(&job(0, 100, 100, vec![5, 10]), 0);
        let reserved = job(1, 10, 10, vec![10, 0]);
        let plan = compute_reservation(&pools, &reserved.demands, 0).unwrap();
        assert_eq!(plan.shadow, 100);
        // Candidate fits node-wise but needs BB that is not free.
        let bb_hungry = job(2, 10, 10, vec![1, 1]);
        assert!(!can_backfill(&plan, &pools, &bb_hungry.demands, bb_hungry.estimate, 0));
        // Pure-CPU candidate of estimate 50 <= shadow backfills.
        let cpu_only = job(3, 50, 50, vec![1, 0]);
        assert!(can_backfill(&plan, &pools, &cpu_only.demands, cpu_only.estimate, 0));
    }

    #[test]
    fn delaying_candidate_is_rejected() {
        let (_, mut pools) = setup();
        pools.allocate(&job(0, 40, 40, vec![6, 0]), 0);
        // Reserved needs 8 nodes -> shadow at t=40, extra = 10-8 = 2.
        let reserved = job(1, 10, 10, vec![8, 0]);
        let plan = compute_reservation(&pools, &reserved.demands, 0).unwrap();
        assert_eq!(plan.shadow, 40);
        // 4-node candidate estimated to run 100s: fits now (4 free) but
        // would hold 4 > extra=2 nodes at the shadow time -> rejected.
        let delayer = job(2, 100, 100, vec![4, 0]);
        assert!(!can_backfill(&plan, &pools, &delayer.demands, delayer.estimate, 0));
    }

    #[test]
    fn no_plan_while_drain_debt_pends() {
        let (_, mut pools) = setup();
        pools.allocate(&job(0, 100, 100, vec![8, 0]), 0); // free = 2
        // Drain 6: 2 removed immediately, 4 parked as debt. After the
        // release absorbs the debt only 4 nodes exist — a 6-node job has
        // no shadow time until capacity returns.
        pools.adjust_capacity(0, -6);
        let reserved = job(1, 10, 10, vec![6, 0]);
        assert_eq!(compute_reservation(&pools, &reserved.demands, 0), None);
        // A 4-node job fits at the (post-absorption) release.
        let smaller = job(2, 10, 10, vec![4, 0]);
        let plan = compute_reservation(&pools, &smaller.demands, 0).unwrap();
        assert_eq!(plan.shadow, 100);
        assert_eq!(plan.extra, vec![0, 10]);
    }

    #[test]
    fn no_plan_when_capacity_drained_below_demand() {
        let (_, mut pools) = setup();
        // Drain 6 of 10 nodes: a 8-node job can never fit until they return.
        pools.adjust_capacity(0, -6);
        let reserved = job(0, 10, 10, vec![8, 0]);
        assert_eq!(compute_reservation(&pools, &reserved.demands, 0), None);
        // A job within the shrunken capacity still gets a plan.
        let small = job(1, 10, 10, vec![4, 0]);
        assert!(compute_reservation(&pools, &small.demands, 0).is_some());
    }

    #[test]
    fn shadow_clamps_past_estimates_to_now() {
        let (_, mut pools) = setup();
        pools.allocate(&job(0, 10, 10, vec![10, 0]), 0);
        // Ask at t=50, well past the allocation's est_end=10 (overstayed).
        let reserved = job(1, 10, 10, vec![10, 0]);
        let plan = compute_reservation(&pools, &reserved.demands, 50).unwrap();
        assert_eq!(plan.shadow, 50, "overdue releases count as 'now'");
    }
}
