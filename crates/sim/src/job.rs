//! Jobs: the unit of work a batch scheduler places.
//!
//! HPC jobs are *rigid*: they request a fixed amount of every schedulable
//! resource and hold all of it from start to completion (§I of the paper
//! contrasts this with data-center malleable tasks).

use crate::SimTime;
use serde::{Deserialize, Serialize};

/// Identifier of a job within one simulation (dense, 0-based).
pub type JobId = usize;

/// A rigid batch job as read from a workload trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Job {
    /// Dense identifier; must equal the job's index in the trace vector.
    pub id: JobId,
    /// Submission (arrival) time.
    pub submit: SimTime,
    /// Actual runtime, known to the simulator from the trace but *not*
    /// revealed to scheduling policies until completion.
    pub runtime: SimTime,
    /// User-supplied walltime estimate; policies and backfilling plan with
    /// this value. Real traces almost always have `estimate >= runtime`.
    pub estimate: SimTime,
    /// Requested units of each schedulable resource, aligned with
    /// [`crate::resources::SystemConfig::resources`].
    pub demands: Vec<u64>,
}

impl Job {
    /// Construct a job. Runtime and estimate are clamped to at least 1
    /// second (zero-length jobs would stall event-driven progress).
    pub fn new(
        id: JobId,
        submit: SimTime,
        runtime: SimTime,
        estimate: SimTime,
        demands: Vec<u64>,
    ) -> Self {
        Self {
            id,
            submit,
            runtime: runtime.max(1),
            estimate: estimate.max(1).max(runtime),
            demands,
        }
    }

    /// Demand for resource `r` as a fraction of system capacity — the
    /// `P_ij` of the paper's Table II / Eq. (1).
    pub fn demand_fraction(&self, r: usize, capacity: u64) -> f64 {
        if capacity == 0 {
            0.0
        } else {
            self.demands[r] as f64 / capacity as f64
        }
    }
}

/// Lifecycle state of a job inside the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted and waiting in the queue.
    Queued,
    /// Executing on the system.
    Running,
    /// Completed.
    Finished,
    /// Removed by a user cancellation (while queued or running).
    Cancelled,
    /// Killed by the walltime enforcer at `start + estimate`.
    Killed,
}

impl JobState {
    /// True once the job can never run again (finished, cancelled, killed).
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Finished | JobState::Cancelled | JobState::Killed)
    }
}

/// How a job left the system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// Ran to completion.
    Finished,
    /// Cancelled by its user. If it never started, `start == end` is the
    /// cancellation time and the record carries pure queue wait.
    Cancelled,
    /// Ran but was killed at its walltime limit (`end = start + estimate`).
    Killed,
}

/// Per-job outcome recorded by the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The job this record describes.
    pub id: JobId,
    /// Submission time (copied from the job for self-containedness).
    pub submit: SimTime,
    /// Time the job began executing (for a cancelled-while-queued job,
    /// the cancellation time — see [`JobOutcome::Cancelled`]).
    pub start: SimTime,
    /// Time the job left the system.
    pub end: SimTime,
    /// Whether the job started via backfilling rather than direct
    /// selection (diagnostics for the backfill tests and ablations).
    pub backfilled: bool,
    /// How the job left the system.
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// Queue wait time: `start - submit`.
    pub fn wait(&self) -> SimTime {
        self.start - self.submit
    }

    /// Actual runtime: `end - start`.
    pub fn runtime(&self) -> SimTime {
        self.end - self.start
    }

    /// Slowdown: `(wait + runtime) / runtime` (§IV-B metric 4).
    pub fn slowdown(&self) -> f64 {
        let rt = self.runtime().max(1) as f64;
        (self.wait() as f64 + rt) / rt
    }

    /// Bounded slowdown with a 10-second floor on runtime, a standard
    /// robustness variant reported alongside plain slowdown.
    pub fn bounded_slowdown(&self, bound: SimTime) -> f64 {
        let rt = self.runtime().max(1) as f64;
        let denom = rt.max(bound as f64);
        ((self.wait() as f64 + rt) / denom).max(1.0)
    }
}

/// Struct-of-arrays mirror of a job trace — the simulator's hot-path
/// view.
///
/// `Vec<Job>` stays the API type (policies borrow `&Job`s), but each
/// job's `demands` lives in its own heap allocation, which makes the
/// scheduler's inner loops (`fits` checks over the wait queue, end-event
/// scheduling on start) pointer-chase per candidate. The slab stores the
/// hot scalar fields and all demand vectors flattened at a fixed stride,
/// so a million-job trace scans contiguously.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobSlab {
    submit: Vec<SimTime>,
    runtime: Vec<SimTime>,
    estimate: Vec<SimTime>,
    /// All demand vectors back to back; job `i` owns
    /// `demands[i * nres .. (i + 1) * nres]`.
    demands: Vec<u64>,
    nres: usize,
}

impl JobSlab {
    /// Build the slab from a dense-id trace. `nres` is the number of
    /// schedulable resources; every job must demand exactly that many.
    pub fn from_jobs(jobs: &[Job], nres: usize) -> Self {
        let mut slab = Self {
            submit: Vec::with_capacity(jobs.len()),
            runtime: Vec::with_capacity(jobs.len()),
            estimate: Vec::with_capacity(jobs.len()),
            demands: Vec::with_capacity(jobs.len() * nres),
            nres,
        };
        for job in jobs {
            debug_assert_eq!(job.demands.len(), nres, "job {} demand arity", job.id);
            slab.submit.push(job.submit);
            slab.runtime.push(job.runtime);
            slab.estimate.push(job.estimate);
            slab.demands.extend_from_slice(&job.demands);
        }
        slab
    }

    /// Number of jobs in the slab.
    pub fn len(&self) -> usize {
        self.submit.len()
    }

    /// True when the slab holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.submit.is_empty()
    }

    /// Submission time of job `id`.
    #[inline]
    pub fn submit(&self, id: JobId) -> SimTime {
        self.submit[id]
    }

    /// True runtime of job `id`.
    #[inline]
    pub fn runtime(&self, id: JobId) -> SimTime {
        self.runtime[id]
    }

    /// Walltime estimate of job `id`.
    #[inline]
    pub fn estimate(&self, id: JobId) -> SimTime {
        self.estimate[id]
    }

    /// Demand vector of job `id` (stride-`nres` slice into the flat pool).
    #[inline]
    pub fn demands(&self, id: JobId) -> &[u64] {
        &self.demands[id * self.nres..(id + 1) * self.nres]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_clamps_zero_runtime() {
        let j = Job::new(0, 5, 0, 0, vec![1]);
        assert_eq!(j.runtime, 1);
        assert!(j.estimate >= j.runtime);
    }

    #[test]
    fn estimate_never_below_runtime() {
        let j = Job::new(0, 0, 100, 10, vec![1]);
        assert_eq!(j.estimate, 100);
    }

    #[test]
    fn demand_fraction_matches_pij() {
        let j = Job::new(0, 0, 10, 10, vec![25, 0]);
        assert_eq!(j.demand_fraction(0, 100), 0.25);
        assert_eq!(j.demand_fraction(1, 100), 0.0);
        assert_eq!(j.demand_fraction(0, 0), 0.0, "zero capacity is safe");
    }

    #[test]
    fn record_derived_metrics() {
        let r = JobRecord { id: 0, submit: 100, start: 160, end: 220, backfilled: false, outcome: JobOutcome::Finished };
        assert_eq!(r.wait(), 60);
        assert_eq!(r.runtime(), 60);
        assert!((r.slowdown() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_slowdown_floors_tiny_jobs() {
        // 1-second job that waited 99 seconds: raw slowdown 100,
        // bounded (10s) slowdown 10.
        let r = JobRecord { id: 0, submit: 0, start: 99, end: 100, backfilled: true, outcome: JobOutcome::Finished };
        assert!((r.slowdown() - 100.0).abs() < 1e-12);
        assert!((r.bounded_slowdown(10) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_slowdown_never_below_one() {
        let r = JobRecord { id: 0, submit: 0, start: 0, end: 2, backfilled: false, outcome: JobOutcome::Finished };
        assert_eq!(r.bounded_slowdown(10), 1.0);
    }

    #[test]
    fn slab_mirrors_the_trace_fields() {
        let jobs = vec![
            Job::new(0, 5, 10, 20, vec![3, 1]),
            Job::new(1, 7, 1, 1, vec![0, 2]),
            Job::new(2, 9, 4, 6, vec![5, 0]),
        ];
        let slab = JobSlab::from_jobs(&jobs, 2);
        assert_eq!(slab.len(), 3);
        assert!(!slab.is_empty());
        for job in &jobs {
            assert_eq!(slab.submit(job.id), job.submit);
            assert_eq!(slab.runtime(job.id), job.runtime);
            assert_eq!(slab.estimate(job.id), job.estimate);
            assert_eq!(slab.demands(job.id), &job.demands[..]);
        }
    }

    #[test]
    fn empty_slab_is_empty() {
        let slab = JobSlab::from_jobs(&[], 2);
        assert_eq!(slab.len(), 0);
        assert!(slab.is_empty());
    }
}
