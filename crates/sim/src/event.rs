//! The discrete-event queue driving the simulation clock.
//!
//! The seed mirrored CQSim's minimal trigger set ("Typical triggers
//! include the submission of a new job to the queue or a running job
//! leaving the system", §IV): submissions and completions. The engine is
//! now general: an [`EventKind`] may be any of the six variants below and
//! the simulator dispatches each to a dedicated handler in
//! `crate::handlers`.
//!
//! # Adding a new event kind
//!
//! Two places change, and only two:
//!
//! 1. **here** — add the variant, give it a slot in [`EventKind::rank`]
//!    (its priority among events sharing a timestamp) and in
//!    [`EventKind::index`] / [`EventKind::KIND_NAMES`] (its metrics
//!    counter slot);
//! 2. **`crate::handlers`** — write one `on_<kind>` handler and add its
//!    dispatch arm.
//!
//! `Simulator::run` itself never matches on kinds: it pops events and
//! calls `handlers::dispatch`, so its control flow is untouched by new
//! kinds. The `dispatch_covers_every_kind` test in `crate::handlers`
//! keeps the registry honest.
//!
//! At equal timestamps the rank order is: releases first (finish, then
//! walltime-kill) so a job arriving exactly when resources free up sees
//! them available; capacity changes next so drains can absorb
//! just-freed units and returns are visible to same-instant submits;
//! submissions after that; cancellations after submissions (a job
//! submitted and cancelled at the same instant is cancelled, and a job
//! finishing exactly when cancelled counts as finished); ticks last
//! (they only trigger a scheduling instance). Remaining ties break on
//! insertion sequence for full determinism.

use crate::job::JobId;
use crate::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens at an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A running job completes and releases its resources.
    Finish(JobId),
    /// A running job is killed because its true runtime exceeds its
    /// walltime estimate (scheduled at `start + estimate`, as real RJMS
    /// enforce). No-op if the job is not running.
    WalltimeKill(JobId),
    /// A user cancels a job: dequeued if waiting, released if running,
    /// no-op if already terminal.
    Cancel(JobId),
    /// The capacity of one resource pool changes by `delta` units — a
    /// node drain/return, a power-cap ramp, a partition going offline.
    /// Shrinks that exceed the currently free units are absorbed lazily
    /// as running jobs release (a *drain*, not a kill).
    CapacityChange {
        /// Index of the resource pool.
        resource: usize,
        /// Signed change in units (negative = drain, positive = return).
        delta: i64,
    },
    /// A job arrives into the waiting queue.
    Submit(JobId),
    /// A periodic pulse for time-driven policies: triggers a scheduling
    /// instance without any state change of its own.
    Tick,
}

impl EventKind {
    /// Number of distinct event kinds (size of per-kind counter arrays).
    pub const KIND_COUNT: usize = 6;

    /// Human-readable name per counter slot, aligned with
    /// [`EventKind::index`].
    pub const KIND_NAMES: [&'static str; Self::KIND_COUNT] =
        ["finish", "walltime_kill", "capacity_change", "submit", "cancel", "tick"];

    /// Ordering rank at equal time: releases, capacity changes,
    /// submissions, cancellations, ticks. Cancels sort *after* submits
    /// so a job submitted and cancelled at the same instant is cancelled
    /// (not silently kept: the cancel would otherwise fire against a
    /// not-yet-queued job and no-op); finishes sort before cancels so a
    /// job completing exactly when cancelled counts as finished.
    fn rank(self) -> u8 {
        match self {
            EventKind::Finish(_) => 0,
            EventKind::WalltimeKill(_) => 1,
            EventKind::CapacityChange { .. } => 2,
            EventKind::Submit(_) => 3,
            EventKind::Cancel(_) => 4,
            EventKind::Tick => 5,
        }
    }

    /// Dense per-kind counter slot (same order as [`EventKind::KIND_NAMES`]).
    pub fn index(self) -> usize {
        self.rank() as usize
    }

    /// Name of this kind (for reports).
    pub fn name(self) -> &'static str {
        Self::KIND_NAMES[self.index()]
    }
}

/// An externally scheduled event: what disruption traces inject into a
/// simulation before it runs (see `Simulator::inject`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedEvent {
    /// When the event fires.
    pub time: SimTime,
    /// What fires.
    pub kind: EventKind,
}

impl InjectedEvent {
    /// Convenience constructor.
    pub fn new(time: SimTime, kind: EventKind) -> Self {
        Self { time, kind }
    }
}

/// A scheduled event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// What fires.
    pub kind: EventKind,
    seq: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.kind.rank().cmp(&self.kind.rank()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic min-heap of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
    /// Pending [`EventKind::Tick`]s, tracked separately so tick re-arm
    /// logic can ask for *real* (non-tick) pending work — otherwise two
    /// concurrent tick chains would count each other as progress and
    /// sustain themselves forever.
    ticks: usize,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule an event.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        if kind == EventKind::Tick {
            self.ticks += 1;
        }
        self.heap.push(Event { time, kind, seq: self.seq });
        self.seq += 1;
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        let e = self.heap.pop();
        if let Some(ev) = &e {
            if ev.kind == EventKind::Tick {
                self.ticks -= 1;
            }
        }
        e
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Number of pending events that are not ticks — the "can the
    /// simulation still evolve on its own?" signal tick re-arming uses.
    pub fn non_tick_len(&self) -> usize {
        self.heap.len() - self.ticks
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Iterate over all pending events in unspecified order (used to
    /// consult scheduled capacity changes during reservation planning).
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.heap.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, EventKind::Submit(2));
        q.push(10, EventKind::Submit(0));
        q.push(20, EventKind::Submit(1));
        let times: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn finish_before_submit_at_same_time() {
        let mut q = EventQueue::new();
        q.push(10, EventKind::Submit(1));
        q.push(10, EventKind::Finish(0));
        assert_eq!(q.pop().unwrap().kind, EventKind::Finish(0));
        assert_eq!(q.pop().unwrap().kind, EventKind::Submit(1));
    }

    #[test]
    fn same_time_rank_order_is_release_capacity_submit_cancel_tick() {
        let mut q = EventQueue::new();
        q.push(10, EventKind::Tick);
        q.push(10, EventKind::Cancel(2));
        q.push(10, EventKind::Submit(3));
        q.push(10, EventKind::CapacityChange { resource: 0, delta: -4 });
        q.push(10, EventKind::WalltimeKill(1));
        q.push(10, EventKind::Finish(0));
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Finish(0),
                EventKind::WalltimeKill(1),
                EventKind::CapacityChange { resource: 0, delta: -4 },
                EventKind::Submit(3),
                EventKind::Cancel(2),
                EventKind::Tick,
            ]
        );
    }

    #[test]
    fn insertion_order_breaks_remaining_ties() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::Submit(7));
        q.push(5, EventKind::Submit(8));
        assert_eq!(q.pop().unwrap().kind, EventKind::Submit(7));
        assert_eq!(q.pop().unwrap().kind, EventKind::Submit(8));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(42, EventKind::Finish(0));
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn kind_index_and_names_are_aligned() {
        let kinds = [
            EventKind::Finish(0),
            EventKind::WalltimeKill(0),
            EventKind::Cancel(0),
            EventKind::CapacityChange { resource: 0, delta: 1 },
            EventKind::Submit(0),
            EventKind::Tick,
        ];
        assert_eq!(kinds.len(), EventKind::KIND_COUNT);
        let mut seen = [false; EventKind::KIND_COUNT];
        for k in kinds {
            assert!(!seen[k.index()], "duplicate index for {k:?}");
            seen[k.index()] = true;
            assert_eq!(k.name(), EventKind::KIND_NAMES[k.index()]);
        }
        assert!(seen.iter().all(|&s| s), "every kind has a counter slot");
    }
}
