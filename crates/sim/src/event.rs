//! The discrete-event queue driving the simulation clock.
//!
//! Two event kinds exist, mirroring CQSim's triggers ("Typical triggers
//! include the submission of a new job to the queue or a running job
//! leaving the system", §IV): [`EventKind::Submit`] and
//! [`EventKind::Finish`]. At equal timestamps, finishes are processed
//! before submissions so that a job arriving exactly when resources free
//! up sees them available; remaining ties break on insertion sequence for
//! full determinism.

use crate::job::JobId;
use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens at an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A running job completes and releases its resources.
    Finish(JobId),
    /// A job arrives into the waiting queue.
    Submit(JobId),
}

impl EventKind {
    /// Ordering rank at equal time: finishes first.
    fn rank(self) -> u8 {
        match self {
            EventKind::Finish(_) => 0,
            EventKind::Submit(_) => 1,
        }
    }
}

/// A scheduled event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// What fires.
    pub kind: EventKind,
    seq: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.kind.rank().cmp(&self.kind.rank()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic min-heap of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule an event.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        self.heap.push(Event { time, kind, seq: self.seq });
        self.seq += 1;
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, EventKind::Submit(2));
        q.push(10, EventKind::Submit(0));
        q.push(20, EventKind::Submit(1));
        let times: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn finish_before_submit_at_same_time() {
        let mut q = EventQueue::new();
        q.push(10, EventKind::Submit(1));
        q.push(10, EventKind::Finish(0));
        assert_eq!(q.pop().unwrap().kind, EventKind::Finish(0));
        assert_eq!(q.pop().unwrap().kind, EventKind::Submit(1));
    }

    #[test]
    fn insertion_order_breaks_remaining_ties() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::Submit(7));
        q.push(5, EventKind::Submit(8));
        assert_eq!(q.pop().unwrap().kind, EventKind::Submit(7));
        assert_eq!(q.pop().unwrap().kind, EventKind::Submit(8));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(42, EventKind::Finish(0));
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
