//! The discrete-event queue driving the simulation clock.
//!
//! The seed mirrored CQSim's minimal trigger set ("Typical triggers
//! include the submission of a new job to the queue or a running job
//! leaving the system", §IV): submissions and completions. The engine is
//! now general: an [`EventKind`] may be any of the six variants below and
//! the simulator dispatches each to a dedicated handler in
//! `crate::handlers`.
//!
//! # Queue implementations
//!
//! The engine is generic over an [`EventQueue`] implementation. Two are
//! provided, and a property suite (`tests/prop_event_queue.rs`) plus the
//! large-trace determinism tests prove them pop-for-pop equivalent:
//!
//! * [`IndexedEventQueue`] — the default. A calendar queue (R. Brown,
//!   CACM 1988) over a slab of event slots: amortized O(1) push/pop for
//!   the near-uniform event-time distributions a batch-scheduler DES
//!   produces, and O(1) cancel-by-handle instead of tombstoning. Slots
//!   carry a generation counter so stale handles (cancel after the event
//!   already fired) are detected and ignored.
//! * [`BinaryHeapEventQueue`] — the seed's `BinaryHeap<Event>`, kept as
//!   the reference implementation. Cancellation marks the sequence
//!   number dead and the heap skips it lazily on pop, but the *observable*
//!   semantics (live lengths, pop order, cancel return value) are
//!   identical to the indexed queue by construction.
//!
//! # Adding a new event kind
//!
//! Two places change, and only two:
//!
//! 1. **here** — add the variant, give it a slot in [`EventKind::rank`]
//!    (its priority among events sharing a timestamp) and in
//!    [`EventKind::index`] / [`EventKind::KIND_NAMES`] (its metrics
//!    counter slot);
//! 2. **`crate::handlers`** — write one `on_<kind>` handler and add its
//!    dispatch arm.
//!
//! `Simulator::run` itself never matches on kinds: it pops events and
//! calls `handlers::dispatch`, so its control flow is untouched by new
//! kinds. The `dispatch_covers_every_kind` test in `crate::handlers`
//! keeps the registry honest.
//!
//! At equal timestamps the rank order is: releases first (finish, then
//! walltime-kill) so a job arriving exactly when resources free up sees
//! them available; capacity changes next so drains can absorb
//! just-freed units and returns are visible to same-instant submits;
//! submissions after that; cancellations after submissions (a job
//! submitted and cancelled at the same instant is cancelled, and a job
//! finishing exactly when cancelled counts as finished); ticks last
//! (they only trigger a scheduling instance). Remaining ties break on
//! insertion sequence for full determinism.

use crate::job::JobId;
use crate::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// What happens at an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A running job completes and releases its resources.
    Finish(JobId),
    /// A running job is killed because its true runtime exceeds its
    /// walltime estimate (scheduled at `start + estimate`, as real RJMS
    /// enforce). No-op if the job is not running.
    WalltimeKill(JobId),
    /// A user cancels a job: dequeued if waiting, released if running,
    /// no-op if already terminal.
    Cancel(JobId),
    /// The capacity of one resource pool changes by `delta` units — a
    /// node drain/return, a power-cap ramp, a partition going offline.
    /// Shrinks that exceed the currently free units are absorbed lazily
    /// as running jobs release (a *drain*, not a kill).
    CapacityChange {
        /// Index of the resource pool.
        resource: usize,
        /// Signed change in units (negative = drain, positive = return).
        delta: i64,
    },
    /// A job arrives into the waiting queue.
    Submit(JobId),
    /// A periodic pulse for time-driven policies: triggers a scheduling
    /// instance without any state change of its own.
    Tick,
}

impl EventKind {
    /// Number of distinct event kinds (size of per-kind counter arrays).
    pub const KIND_COUNT: usize = 6;

    /// Human-readable name per counter slot, aligned with
    /// [`EventKind::index`].
    pub const KIND_NAMES: [&'static str; Self::KIND_COUNT] =
        ["finish", "walltime_kill", "capacity_change", "submit", "cancel", "tick"];

    /// Ordering rank at equal time: releases, capacity changes,
    /// submissions, cancellations, ticks. Cancels sort *after* submits
    /// so a job submitted and cancelled at the same instant is cancelled
    /// (not silently kept: the cancel would otherwise fire against a
    /// not-yet-queued job and no-op); finishes sort before cancels so a
    /// job completing exactly when cancelled counts as finished.
    fn rank(self) -> u8 {
        match self {
            EventKind::Finish(_) => 0,
            EventKind::WalltimeKill(_) => 1,
            EventKind::CapacityChange { .. } => 2,
            EventKind::Submit(_) => 3,
            EventKind::Cancel(_) => 4,
            EventKind::Tick => 5,
        }
    }

    /// Dense per-kind counter slot (same order as [`EventKind::KIND_NAMES`]).
    pub fn index(self) -> usize {
        self.rank() as usize
    }

    /// Name of this kind (for reports).
    pub fn name(self) -> &'static str {
        Self::KIND_NAMES[self.index()]
    }
}

/// An externally scheduled event: what disruption traces inject into a
/// simulation before it runs (see `Simulator::inject`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedEvent {
    /// When the event fires.
    pub time: SimTime,
    /// What fires.
    pub kind: EventKind,
}

impl InjectedEvent {
    /// Convenience constructor.
    pub fn new(time: SimTime, kind: EventKind) -> Self {
        Self { time, kind }
    }
}

/// A scheduled event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// What fires.
    pub kind: EventKind,
    seq: u64,
}

impl Event {
    /// The full deterministic ordering key: earliest time first, then
    /// kind rank, then insertion sequence.
    fn key(&self) -> (SimTime, u8, u64) {
        (self.time, self.kind.rank(), self.seq)
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other.key().cmp(&self.key())
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Opaque handle to a scheduled event, returned by [`EventQueue::push`]
/// and consumed by [`EventQueue::cancel`]. Handles are *stable-safe*:
/// cancelling an event that has already fired (or been cancelled) is a
/// detectable no-op, never a corruption — implementations tag handles
/// with a generation so slot reuse cannot alias them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventHandle(u64);

impl EventHandle {
    fn pack(slot: u32, gen: u32) -> Self {
        Self(((slot as u64) << 32) | gen as u64)
    }

    fn unpack(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }

    fn from_seq(seq: u64) -> Self {
        Self(seq)
    }

    fn seq(self) -> u64 {
        self.0
    }
}

/// A pending event in implementation-independent form: what
/// [`EventQueue::save_events`] emits and [`EventQueue::restore_events`]
/// consumes. `seq` is the *original* insertion sequence — it carries
/// the tie-break order a rebuild must reproduce, and checkpoints use it
/// as the stable identity of a pending event across a restore (raw
/// [`EventHandle`]s are implementation-specific and never serialized).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SavedEvent {
    /// When the event fires.
    pub time: SimTime,
    /// What fires.
    pub kind: EventKind,
    /// Insertion sequence in the queue the snapshot was taken from.
    pub seq: u64,
}

/// A deterministic future-event set: the contract `Simulator` runs on.
///
/// Pops follow the strict total order `(time, kind rank, insertion
/// sequence)`; two implementations fed the same push/cancel sequence
/// must emit bit-identical pop sequences and report identical live
/// lengths at every step — that equivalence is what lets the engine
/// swap queue implementations without perturbing any simulation result.
pub trait EventQueue: Default + std::fmt::Debug + Send {
    /// Schedule an event; the handle cancels it later.
    fn push(&mut self, time: SimTime, kind: EventKind) -> EventHandle;

    /// Remove a pending event by handle. Returns `false` (and does
    /// nothing) if the event already fired or was already cancelled.
    fn cancel(&mut self, handle: EventHandle) -> bool;

    /// Remove and return the earliest pending event.
    fn pop(&mut self) -> Option<Event>;

    /// Time of the earliest pending event without removing it. Takes
    /// `&mut self` so implementations may compact lazily-cancelled
    /// entries or cache the minimum while looking.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Number of pending (live) events.
    fn len(&self) -> usize;

    /// Number of pending events that are not ticks — the "can the
    /// simulation still evolve on its own?" signal tick re-arming uses.
    fn non_tick_len(&self) -> usize;

    /// True when no live events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit every pending event in unspecified order (diagnostics and
    /// tests; the hot paths never iterate).
    fn for_each_pending(&self, f: &mut dyn FnMut(SimTime, EventKind));

    /// Snapshot every pending (live) event in implementation-independent
    /// form, in unspecified order — the original insertion `seq` on each
    /// entry carries the tie-break order. Checkpoints persist this.
    fn save_events(&self) -> Vec<SavedEvent>;

    /// Insertion sequence of the live event `handle` refers to, or
    /// `None` if it already fired or was cancelled. Checkpoints persist
    /// handles as these sequences (a raw handle is impl-specific) and
    /// remap them through [`EventQueue::restore_events`]'s aligned output.
    fn handle_seq(&self, handle: EventHandle) -> Option<u64>;

    /// Refill an *empty* queue with saved events, returning the new
    /// handle for each input event, aligned by index.
    ///
    /// Events are re-pushed in ascending original-`seq` order, so their
    /// relative tie-breaks are reproduced under fresh sequence numbers
    /// `0..n`, and anything pushed after the rebuild sequences after all
    /// restored events — exactly the new-sorts-after-old order the
    /// original run would have produced. Pop order is therefore
    /// identical whichever implementation the snapshot came from.
    fn restore_events(&mut self, events: &[SavedEvent]) -> Vec<EventHandle> {
        debug_assert!(self.is_empty(), "restore target must be empty");
        let mut order: Vec<usize> = (0..events.len()).collect();
        order.sort_by_key(|&i| events[i].seq);
        let mut handles = vec![EventHandle(0); events.len()];
        for &i in &order {
            handles[i] = self.push(events[i].time, events[i].kind);
        }
        handles
    }
}

/// The seed's binary-heap queue, kept as the reference implementation.
///
/// `cancel` marks the sequence number dead; `pop`/`peek_time` skip dead
/// entries lazily. Live lengths count only undead events so the
/// observable behaviour matches [`IndexedEventQueue`] exactly.
#[derive(Debug, Default)]
pub struct BinaryHeapEventQueue {
    heap: BinaryHeap<Event>,
    /// Kind of every live (pushed, not yet popped/cancelled) event.
    pending: HashMap<u64, EventKind>,
    /// Sequence numbers cancelled but still buried in the heap.
    cancelled: HashSet<u64>,
    seq: u64,
    /// Live [`EventKind::Tick`]s, tracked separately so tick re-arm
    /// logic can ask for *real* (non-tick) pending work — otherwise two
    /// concurrent tick chains would count each other as progress and
    /// sustain themselves forever.
    ticks: usize,
}

impl BinaryHeapEventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventQueue for BinaryHeapEventQueue {
    fn push(&mut self, time: SimTime, kind: EventKind) -> EventHandle {
        if kind == EventKind::Tick {
            self.ticks += 1;
        }
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { time, kind, seq });
        self.pending.insert(seq, kind);
        EventHandle::from_seq(seq)
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        match self.pending.remove(&handle.seq()) {
            Some(kind) => {
                self.cancelled.insert(handle.seq());
                if kind == EventKind::Tick {
                    self.ticks -= 1;
                }
                true
            }
            None => false,
        }
    }

    fn pop(&mut self) -> Option<Event> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.pending.remove(&ev.seq);
            if ev.kind == EventKind::Tick {
                self.ticks -= 1;
            }
            return Some(ev);
        }
        None
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let seq = self.heap.peek()?.seq;
            if self.cancelled.contains(&seq) {
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(self.heap.peek()?.time);
            }
        }
    }

    fn len(&self) -> usize {
        self.pending.len()
    }

    fn non_tick_len(&self) -> usize {
        self.pending.len() - self.ticks
    }

    fn for_each_pending(&self, f: &mut dyn FnMut(SimTime, EventKind)) {
        for ev in self.heap.iter() {
            if !self.cancelled.contains(&ev.seq) {
                f(ev.time, ev.kind);
            }
        }
    }

    fn save_events(&self) -> Vec<SavedEvent> {
        self.heap
            .iter()
            .filter(|ev| !self.cancelled.contains(&ev.seq))
            .map(|ev| SavedEvent { time: ev.time, kind: ev.kind, seq: ev.seq })
            .collect()
    }

    fn handle_seq(&self, handle: EventHandle) -> Option<u64> {
        self.pending.contains_key(&handle.seq()).then(|| handle.seq())
    }
}

/// Lifecycle of one slab slot in [`IndexedEventQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    /// Holds a pending event (has exactly one bucket entry).
    Live,
    /// Cancelled; its bucket entry is pruned lazily on contact.
    Dead,
    /// On the free list, ready for reuse (generation bumps on realloc).
    Free,
}

#[derive(Clone, Debug)]
struct Slot {
    time: SimTime,
    kind: EventKind,
    seq: u64,
    gen: u32,
    state: SlotState,
}

impl Slot {
    fn key(&self) -> (SimTime, u8, u64) {
        (self.time, self.kind.rank(), self.seq)
    }
}

const MIN_BUCKETS: usize = 4;
/// Consecutive full-queue fallback searches tolerated before the bucket
/// width is re-estimated (the event-time distribution shifted under us).
const MAX_DIRECT_SEARCHES: u32 = 8;

/// Calendar queue over a slab of event slots — the default engine queue.
///
/// Events live in an id-indexed `Vec` of slots (no per-event boxing);
/// buckets hold slot indices hashed by `time / width` modulo a
/// power-of-two bucket count. Pop scans the current bucket for the
/// minimum `(time, rank, seq)` key among events inside the bucket's
/// current one-`width` window, giving amortized O(1) operations when
/// event times are spread roughly evenly — which submit/finish streams
/// of a batch trace are. The bucket count doubles/halves with the live
/// population and the width is re-estimated from the live time span at
/// every rebuild, so the structure adapts as a simulation drains.
///
/// `cancel` is O(1): the slot is marked dead and its bucket entry is
/// pruned when next touched. A slot is recycled only after its bucket
/// entry is gone, and handles carry the slot generation, so stale
/// handles (the natural-end event of a job that was cancelled, say) are
/// rejected rather than aliased.
#[derive(Debug)]
pub struct IndexedEventQueue {
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Bucket entries are slot indices; an entry's slot is never reused
    /// while the entry exists, so index equality identifies the event.
    buckets: Vec<Vec<u32>>,
    /// `buckets.len() - 1`; bucket count is a power of two.
    mask: usize,
    /// Bucket time width (>= 1).
    width: SimTime,
    /// Cursor: the bucket the next pop scans first...
    cur_bucket: usize,
    /// ...and the exclusive upper time bound of that bucket's current
    /// window. Invariant: no live event has `time < bucket_top - width`.
    bucket_top: SimTime,
    /// Live event count.
    live: usize,
    /// Live tick count (see [`BinaryHeapEventQueue::ticks`]).
    ticks: usize,
    seq: u64,
    /// Slot index of the known global minimum, when one is cached.
    cached_min: Option<u32>,
    /// Fallback searches since the last rebuild (triggers re-widthing).
    direct_searches: u32,
}

impl Default for IndexedEventQueue {
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            buckets: vec![Vec::new(); MIN_BUCKETS],
            mask: MIN_BUCKETS - 1,
            width: 1,
            cur_bucket: 0,
            bucket_top: 1,
            live: 0,
            ticks: 0,
            seq: 0,
            cached_min: None,
            direct_searches: 0,
        }
    }
}

impl IndexedEventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(&self, time: SimTime) -> usize {
        (time / self.width) as usize & self.mask
    }

    /// Start of the bucket window containing `time`, and its top.
    fn window_of(&self, time: SimTime) -> (usize, SimTime) {
        ((time / self.width) as usize & self.mask, (time / self.width) * self.width + self.width)
    }

    /// Scan one bucket for the minimal live key with `time < top`,
    /// pruning dead entries on the way. Returns the winning slot index.
    fn scan_bucket(&mut self, b: usize, top: SimTime) -> Option<u32> {
        let mut best: Option<u32> = None;
        let mut i = 0;
        while i < self.buckets[b].len() {
            let idx = self.buckets[b][i];
            let slot = &self.slots[idx as usize];
            match slot.state {
                SlotState::Dead => {
                    // Lazy prune: the cancelled event's entry dies here
                    // and its slot becomes reusable.
                    self.buckets[b].swap_remove(i);
                    self.slots[idx as usize].state = SlotState::Free;
                    self.free.push(idx);
                    continue;
                }
                SlotState::Live => {
                    if slot.time < top {
                        let better = match best {
                            None => true,
                            Some(bi) => slot.key() < self.slots[bi as usize].key(),
                        };
                        if better {
                            best = Some(idx);
                        }
                    }
                }
                SlotState::Free => unreachable!("free slot has no bucket entry"),
            }
            i += 1;
        }
        best
    }

    /// Locate the global minimum, advancing the cursor and caching the
    /// result. Amortized O(1): the common case finds the event within a
    /// few buckets of the cursor; a full empty cycle falls back to a
    /// direct scan of every bucket (and re-estimates the width if that
    /// keeps happening).
    fn find_min(&mut self) -> Option<u32> {
        if self.live == 0 {
            return None;
        }
        if let Some(idx) = self.cached_min {
            return Some(idx);
        }
        let nbuckets = self.mask + 1;
        let mut b = self.cur_bucket;
        let mut top = self.bucket_top;
        for _ in 0..nbuckets {
            if let Some(idx) = self.scan_bucket(b, top) {
                self.cur_bucket = b;
                self.bucket_top = top;
                self.cached_min = Some(idx);
                return Some(idx);
            }
            b = (b + 1) & self.mask;
            top += self.width;
        }
        // The next event is over a whole "year" (nbuckets * width) away:
        // scan everything directly and reposition the cursor there.
        self.direct_searches += 1;
        let mut best: Option<u32> = None;
        for bi in 0..nbuckets {
            if let Some(idx) = self.scan_bucket(bi, SimTime::MAX) {
                let better = match best {
                    None => true,
                    Some(cur) => self.slots[idx as usize].key() < self.slots[cur as usize].key(),
                };
                if better {
                    best = Some(idx);
                }
            }
        }
        let idx = best.expect("live > 0 implies a live entry exists");
        let (cb, bt) = self.window_of(self.slots[idx as usize].time);
        self.cur_bucket = cb;
        self.bucket_top = bt;
        self.cached_min = Some(idx);
        if self.direct_searches >= MAX_DIRECT_SEARCHES {
            // The width no longer matches the event-time density; rebuild
            // at the same size to re-estimate it from the live span.
            self.rebuild(nbuckets);
        }
        Some(idx)
    }

    /// Re-bucket every live event into `nbuckets` buckets with a width
    /// re-estimated from the live time span (average inter-event gap).
    /// Dead slots are reclaimed wholesale and the cursor repositions to
    /// the minimum. Slot indices are stable across rebuilds.
    fn rebuild(&mut self, nbuckets: usize) {
        let nbuckets = nbuckets.next_power_of_two().max(MIN_BUCKETS);
        let (mut min_t, mut max_t, mut n) = (SimTime::MAX, 0, 0u64);
        for slot in &self.slots {
            if slot.state == SlotState::Live {
                min_t = min_t.min(slot.time);
                max_t = max_t.max(slot.time);
                n += 1;
            }
        }
        self.width = if n >= 2 && max_t > min_t { ((max_t - min_t) / n).max(1) } else { 1 };
        self.mask = nbuckets - 1;
        self.buckets.clear();
        self.buckets.resize(nbuckets, Vec::new());
        self.free.clear();
        let mut best: Option<u32> = None;
        for i in 0..self.slots.len() {
            let idx = i as u32;
            match self.slots[i].state {
                SlotState::Live => {
                    let b = self.bucket_index(self.slots[i].time);
                    self.buckets[b].push(idx);
                    let better = match best {
                        None => true,
                        Some(cur) => self.slots[i].key() < self.slots[cur as usize].key(),
                    };
                    if better {
                        best = Some(idx);
                    }
                }
                SlotState::Dead => {
                    self.slots[i].state = SlotState::Free;
                    self.free.push(idx);
                }
                SlotState::Free => self.free.push(idx),
            }
        }
        match best {
            Some(idx) => {
                let (cb, bt) = self.window_of(self.slots[idx as usize].time);
                self.cur_bucket = cb;
                self.bucket_top = bt;
                self.cached_min = Some(idx);
            }
            None => {
                self.cur_bucket = 0;
                self.bucket_top = self.width;
                self.cached_min = None;
            }
        }
        self.direct_searches = 0;
    }
}

impl EventQueue for IndexedEventQueue {
    fn push(&mut self, time: SimTime, kind: EventKind) -> EventHandle {
        let seq = self.seq;
        self.seq += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                slot.gen = slot.gen.wrapping_add(1);
                slot.time = time;
                slot.kind = kind;
                slot.seq = seq;
                slot.state = SlotState::Live;
                i
            }
            None => {
                self.slots.push(Slot { time, kind, seq, gen: 0, state: SlotState::Live });
                (self.slots.len() - 1) as u32
            }
        };
        let b = self.bucket_index(time);
        self.buckets[b].push(idx);
        self.live += 1;
        if kind == EventKind::Tick {
            self.ticks += 1;
        }
        // Cursor invariant: no live event before the current window. An
        // earlier-than-cursor push (rare: a same-instant chain after the
        // cursor moved on) rewinds the cursor to its window.
        if time < self.bucket_top.saturating_sub(self.width) {
            let (cb, bt) = self.window_of(time);
            self.cur_bucket = cb;
            self.bucket_top = bt;
        }
        match self.cached_min {
            Some(cur) if self.slots[idx as usize].key() < self.slots[cur as usize].key() => {
                self.cached_min = Some(idx);
            }
            None if self.live == 1 => self.cached_min = Some(idx),
            _ => {}
        }
        let gen = self.slots[idx as usize].gen;
        if self.live > 2 * (self.mask + 1) {
            self.rebuild((self.mask + 1) * 2);
        }
        EventHandle::pack(idx, gen)
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        let (idx, gen) = handle.unpack();
        let Some(slot) = self.slots.get_mut(idx as usize) else {
            return false;
        };
        if slot.gen != gen || slot.state != SlotState::Live {
            return false;
        }
        slot.state = SlotState::Dead;
        self.live -= 1;
        if slot.kind == EventKind::Tick {
            self.ticks -= 1;
        }
        if self.cached_min == Some(idx) {
            self.cached_min = None;
        }
        true
    }

    fn pop(&mut self) -> Option<Event> {
        let idx = self.find_min()?;
        let slot = &self.slots[idx as usize];
        let (time, kind, seq) = (slot.time, slot.kind, slot.seq);
        let b = self.bucket_index(time);
        let pos = self.buckets[b]
            .iter()
            .position(|&e| e == idx)
            .expect("minimum's bucket entry present");
        self.buckets[b].swap_remove(pos);
        self.slots[idx as usize].state = SlotState::Free;
        self.free.push(idx);
        self.live -= 1;
        if kind == EventKind::Tick {
            self.ticks -= 1;
        }
        self.cached_min = None;
        // The next minimum is no earlier than this pop: park the cursor
        // in the popped event's window.
        let (cb, bt) = self.window_of(time);
        self.cur_bucket = cb;
        self.bucket_top = bt;
        if self.live * 4 < self.mask + 1 && self.mask + 1 > MIN_BUCKETS {
            let halved = (self.mask + 1) >> 1;
            self.rebuild(halved);
        }
        Some(Event { time, kind, seq })
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.find_min().map(|idx| self.slots[idx as usize].time)
    }

    fn len(&self) -> usize {
        self.live
    }

    fn non_tick_len(&self) -> usize {
        self.live - self.ticks
    }

    fn for_each_pending(&self, f: &mut dyn FnMut(SimTime, EventKind)) {
        for slot in &self.slots {
            if slot.state == SlotState::Live {
                f(slot.time, slot.kind);
            }
        }
    }

    fn save_events(&self) -> Vec<SavedEvent> {
        self.slots
            .iter()
            .filter(|slot| slot.state == SlotState::Live)
            .map(|slot| SavedEvent { time: slot.time, kind: slot.kind, seq: slot.seq })
            .collect()
    }

    fn handle_seq(&self, handle: EventHandle) -> Option<u64> {
        let (idx, gen) = handle.unpack();
        let slot = self.slots.get(idx as usize)?;
        (slot.gen == gen && slot.state == SlotState::Live).then_some(slot.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every behavioural test runs against both implementations: the
    /// trait contract, not an implementation, is what the engine pins.
    fn both(check: impl Fn(&mut dyn DynQueue)) {
        let mut heap = BinaryHeapEventQueue::new();
        check(&mut heap);
        let mut indexed = IndexedEventQueue::new();
        check(&mut indexed);
    }

    /// Object-safe facade so one closure can exercise both impls.
    trait DynQueue {
        fn push(&mut self, time: SimTime, kind: EventKind) -> EventHandle;
        fn cancel(&mut self, handle: EventHandle) -> bool;
        fn pop(&mut self) -> Option<Event>;
        fn peek_time(&mut self) -> Option<SimTime>;
        fn len(&self) -> usize;
        fn non_tick_len(&self) -> usize;
        fn is_empty(&self) -> bool;
    }

    impl<Q: EventQueue> DynQueue for Q {
        fn push(&mut self, time: SimTime, kind: EventKind) -> EventHandle {
            EventQueue::push(self, time, kind)
        }
        fn cancel(&mut self, handle: EventHandle) -> bool {
            EventQueue::cancel(self, handle)
        }
        fn pop(&mut self) -> Option<Event> {
            EventQueue::pop(self)
        }
        fn peek_time(&mut self) -> Option<SimTime> {
            EventQueue::peek_time(self)
        }
        fn len(&self) -> usize {
            EventQueue::len(self)
        }
        fn non_tick_len(&self) -> usize {
            EventQueue::non_tick_len(self)
        }
        fn is_empty(&self) -> bool {
            EventQueue::is_empty(self)
        }
    }

    #[test]
    fn pops_in_time_order() {
        both(|q| {
            q.push(30, EventKind::Submit(2));
            q.push(10, EventKind::Submit(0));
            q.push(20, EventKind::Submit(1));
            let times: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
            assert_eq!(times, vec![10, 20, 30]);
        });
    }

    #[test]
    fn finish_before_submit_at_same_time() {
        both(|q| {
            q.push(10, EventKind::Submit(1));
            q.push(10, EventKind::Finish(0));
            assert_eq!(q.pop().unwrap().kind, EventKind::Finish(0));
            assert_eq!(q.pop().unwrap().kind, EventKind::Submit(1));
        });
    }

    #[test]
    fn same_time_rank_order_is_release_capacity_submit_cancel_tick() {
        both(|q| {
            q.push(10, EventKind::Tick);
            q.push(10, EventKind::Cancel(2));
            q.push(10, EventKind::Submit(3));
            q.push(10, EventKind::CapacityChange { resource: 0, delta: -4 });
            q.push(10, EventKind::WalltimeKill(1));
            q.push(10, EventKind::Finish(0));
            let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
            assert_eq!(
                kinds,
                vec![
                    EventKind::Finish(0),
                    EventKind::WalltimeKill(1),
                    EventKind::CapacityChange { resource: 0, delta: -4 },
                    EventKind::Submit(3),
                    EventKind::Cancel(2),
                    EventKind::Tick,
                ]
            );
        });
    }

    #[test]
    fn insertion_order_breaks_remaining_ties() {
        both(|q| {
            q.push(5, EventKind::Submit(7));
            q.push(5, EventKind::Submit(8));
            assert_eq!(q.pop().unwrap().kind, EventKind::Submit(7));
            assert_eq!(q.pop().unwrap().kind, EventKind::Submit(8));
        });
    }

    #[test]
    fn peek_does_not_remove() {
        both(|q| {
            q.push(42, EventKind::Finish(0));
            assert_eq!(q.peek_time(), Some(42));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        });
    }

    #[test]
    fn cancel_removes_from_pop_order_and_counts() {
        both(|q| {
            let _a = q.push(10, EventKind::Submit(0));
            let b = q.push(20, EventKind::Finish(1));
            let _c = q.push(30, EventKind::Submit(2));
            assert!(q.cancel(b));
            assert_eq!(q.len(), 2);
            assert_eq!(q.non_tick_len(), 2);
            let times: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
            assert_eq!(times, vec![10, 30], "cancelled event never pops");
        });
    }

    #[test]
    fn cancel_after_pop_is_a_detected_no_op() {
        both(|q| {
            let h = q.push(10, EventKind::Finish(0));
            assert_eq!(q.pop().unwrap().time, 10);
            assert!(!q.cancel(h), "the event already fired");
            assert_eq!(q.len(), 0);
        });
    }

    #[test]
    fn double_cancel_reports_false_the_second_time() {
        both(|q| {
            let h = q.push(10, EventKind::Cancel(3));
            assert!(q.cancel(h));
            assert!(!q.cancel(h));
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn stale_handle_does_not_alias_a_reused_slot() {
        // Pop (or cancel) frees storage; a later push may reuse it. The
        // old handle must not cancel the new tenant.
        both(|q| {
            let old = q.push(10, EventKind::Finish(0));
            q.pop();
            // Push enough that any reuse policy has recycled old's slot.
            let fresh: Vec<EventHandle> =
                (0..4).map(|i| q.push(20 + i, EventKind::Submit(i as usize))).collect();
            assert!(!q.cancel(old), "stale handle must be rejected");
            assert_eq!(q.len(), 4);
            assert!(q.cancel(fresh[0]), "the new tenant's own handle still works");
        });
    }

    #[test]
    fn cancelled_tick_leaves_non_tick_len_consistent() {
        both(|q| {
            q.push(5, EventKind::Submit(0));
            let t = q.push(10, EventKind::Tick);
            assert_eq!(q.len(), 2);
            assert_eq!(q.non_tick_len(), 1);
            assert!(q.cancel(t));
            assert_eq!(q.len(), 1);
            assert_eq!(q.non_tick_len(), 1);
        });
    }

    #[test]
    fn peek_skips_cancelled_minimum() {
        both(|q| {
            let a = q.push(10, EventKind::Submit(0));
            q.push(20, EventKind::Submit(1));
            assert!(q.cancel(a));
            assert_eq!(q.peek_time(), Some(20));
            assert_eq!(q.pop().unwrap().time, 20);
        });
    }

    /// Nested so the `DynQueue` facade is out of scope: this test calls
    /// `EventQueue` methods on the concrete types, which would otherwise
    /// be ambiguous against the blanket facade impl.
    mod cross {
        use crate::event::*;

        #[test]
        fn interleaved_sequences_match_across_implementations() {
            // A deterministic mixed workload (no proptest here — the full
            // property suite lives in tests/prop_event_queue.rs): both impls
            // must agree pop-for-pop, including handles pushed after pops.
            let mut heap = BinaryHeapEventQueue::new();
            let mut idxq = IndexedEventQueue::new();
            let mut handles: Vec<(EventHandle, EventHandle)> = Vec::new();
            let mut state = 0x9e3779b97f4a7c15u64;
            let mut lcg = move || {
                state =
                    state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state >> 33
            };
            for step in 0..600u64 {
                match lcg() % 4 {
                    0 | 1 => {
                        let t = lcg() % 97;
                        let kind = match lcg() % 6 {
                            0 => EventKind::Finish(step as usize),
                            1 => EventKind::WalltimeKill(step as usize),
                            2 => EventKind::Cancel(step as usize),
                            3 => EventKind::CapacityChange { resource: 0, delta: 1 },
                            4 => EventKind::Submit(step as usize),
                            _ => EventKind::Tick,
                        };
                        handles.push((heap.push(t, kind), idxq.push(t, kind)));
                    }
                    2 => {
                        assert_eq!(heap.pop(), idxq.pop(), "pop diverged at step {step}");
                    }
                    _ => {
                        if !handles.is_empty() {
                            let (h, i) = handles[(lcg() as usize) % handles.len()];
                            assert_eq!(
                                heap.cancel(h),
                                idxq.cancel(i),
                                "cancel diverged at {step}"
                            );
                        }
                    }
                }
                assert_eq!(heap.len(), idxq.len());
                assert_eq!(heap.non_tick_len(), idxq.non_tick_len());
                assert_eq!(heap.peek_time(), idxq.peek_time());
            }
            loop {
                let (a, b) = (heap.pop(), idxq.pop());
                assert_eq!(a, b, "drain diverged");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// Concrete-type save/rebuild tests (nested like `cross` so the
    /// `DynQueue` facade does not shadow the trait methods).
    mod save_rebuild {
        use crate::event::*;

        /// Mixed pending state: pushes, cancels, and a few pops so seqs
        /// are non-contiguous and tombstones/dead slots exist.
        fn populate<Q: EventQueue>(q: &mut Q) {
            let mut cancel_me = Vec::new();
            for i in 0..40u64 {
                let t = (i * 7) % 23;
                let kind = match i % 5 {
                    0 => EventKind::Finish(i as usize),
                    1 => EventKind::Submit(i as usize),
                    2 => EventKind::Cancel(i as usize),
                    3 => EventKind::Tick,
                    _ => EventKind::CapacityChange { resource: 0, delta: -1 },
                };
                let h = q.push(t, kind);
                if i % 4 == 1 {
                    cancel_me.push(h);
                }
            }
            for h in cancel_me {
                assert!(q.cancel(h));
            }
            for _ in 0..5 {
                q.pop();
            }
        }

        fn drain<Q: EventQueue>(q: &mut Q) -> Vec<Event> {
            std::iter::from_fn(|| q.pop()).collect()
        }

        #[test]
        fn rebuild_reproduces_pop_order_same_and_cross_implementation() {
            let mut src = IndexedEventQueue::new();
            populate(&mut src);
            let saved = src.save_events();
            assert_eq!(saved.len(), src.len());

            // Restore into both implementations from the same snapshot.
            let mut into_idx = IndexedEventQueue::new();
            into_idx.restore_events(&saved);
            let mut into_heap = BinaryHeapEventQueue::new();
            into_heap.restore_events(&saved);
            assert_eq!(into_idx.len(), src.len());
            assert_eq!(into_idx.non_tick_len(), src.non_tick_len());
            assert_eq!(into_heap.len(), src.len());
            assert_eq!(into_heap.non_tick_len(), src.non_tick_len());

            let reference: Vec<(SimTime, EventKind)> =
                drain(&mut src).into_iter().map(|e| (e.time, e.kind)).collect();
            let via_idx: Vec<(SimTime, EventKind)> =
                drain(&mut into_idx).into_iter().map(|e| (e.time, e.kind)).collect();
            let via_heap: Vec<(SimTime, EventKind)> =
                drain(&mut into_heap).into_iter().map(|e| (e.time, e.kind)).collect();
            assert_eq!(via_idx, reference);
            assert_eq!(via_heap, reference);
        }

        #[test]
        fn heap_snapshot_restores_into_indexed_queue() {
            let mut src = BinaryHeapEventQueue::new();
            populate(&mut src);
            let saved = src.save_events();
            let mut dst = IndexedEventQueue::new();
            dst.restore_events(&saved);
            let reference: Vec<(SimTime, EventKind)> =
                drain(&mut src).into_iter().map(|e| (e.time, e.kind)).collect();
            let restored: Vec<(SimTime, EventKind)> =
                drain(&mut dst).into_iter().map(|e| (e.time, e.kind)).collect();
            assert_eq!(restored, reference);
        }

        #[test]
        fn rebuild_handles_align_with_input_and_cancel_the_right_event() {
            let mut src = IndexedEventQueue::new();
            src.push(10, EventKind::Submit(0));
            src.push(10, EventKind::Finish(1));
            src.push(20, EventKind::Tick);
            let saved = src.save_events();
            let victim = saved
                .iter()
                .position(|s| s.kind == EventKind::Finish(1))
                .expect("finish event saved");

            let mut dst = BinaryHeapEventQueue::new();
            let handles = dst.restore_events(&saved);
            assert_eq!(handles.len(), saved.len());
            assert!(dst.cancel(handles[victim]), "aligned handle cancels its event");
            let left: Vec<EventKind> = drain(&mut dst).into_iter().map(|e| e.kind).collect();
            assert_eq!(left, vec![EventKind::Submit(0), EventKind::Tick]);
        }

        #[test]
        fn pushes_after_rebuild_sort_after_restored_ties() {
            // A post-restore push at the same (time, rank) must lose the
            // tie to every restored event — as it would have in the
            // original run, where it was inserted later.
            let mut src = IndexedEventQueue::new();
            src.push(10, EventKind::Submit(0));
            src.push(10, EventKind::Submit(1));
            let saved = src.save_events();
            let mut dst = IndexedEventQueue::new();
            dst.restore_events(&saved);
            dst.push(10, EventKind::Submit(99));
            let order: Vec<EventKind> = drain(&mut dst).into_iter().map(|e| e.kind).collect();
            assert_eq!(
                order,
                vec![EventKind::Submit(0), EventKind::Submit(1), EventKind::Submit(99)]
            );
        }
    }

    #[test]
    fn sparse_far_future_events_still_pop_in_order() {
        // Times far beyond one bucket "year" force the calendar queue's
        // direct-search fallback; order must survive it.
        both(|q| {
            q.push(1_000_000_000, EventKind::Submit(0));
            q.push(5, EventKind::Submit(1));
            q.push(70_000_000_000, EventKind::Submit(2));
            q.push(1_000_000_000, EventKind::Finish(3));
            let got: Vec<(SimTime, EventKind)> =
                std::iter::from_fn(|| q.pop()).map(|e| (e.time, e.kind)).collect();
            assert_eq!(
                got,
                vec![
                    (5, EventKind::Submit(1)),
                    (1_000_000_000, EventKind::Finish(3)),
                    (1_000_000_000, EventKind::Submit(0)),
                    (70_000_000_000, EventKind::Submit(2)),
                ]
            );
        });
    }

    #[test]
    fn kind_index_and_names_are_aligned() {
        let kinds = [
            EventKind::Finish(0),
            EventKind::WalltimeKill(0),
            EventKind::Cancel(0),
            EventKind::CapacityChange { resource: 0, delta: 1 },
            EventKind::Submit(0),
            EventKind::Tick,
        ];
        assert_eq!(kinds.len(), EventKind::KIND_COUNT);
        let mut seen = [false; EventKind::KIND_COUNT];
        for k in kinds {
            assert!(!seen[k.index()], "duplicate index for {k:?}");
            seen[k.index()] = true;
            assert_eq!(k.name(), EventKind::KIND_NAMES[k.index()]);
        }
        assert!(seen.iter().all(|&s| s), "every kind has a counter slot");
    }
}
