//! Simulator checkpoint/restart on the `mrsch-snapshot` codec.
//!
//! [`Simulator::snapshot`] serializes *every* piece of run state — the
//! job table, per-job lifecycle states, the pending event set (in the
//! implementation-independent [`SavedEvent`] form, so a snapshot taken
//! under one [`EventQueue`] restores into the other), the FCFS waiting
//! queue, pool state including drain debt, the metric integrals with
//! exact f64 bits, per-job records, event counters, the clock, and the
//! replay-cancel / end-event / capacity-return bookkeeping arrays —
//! into one `MRSS` frame (see `mrsch_snapshot::frame` for the layout).
//!
//! The acceptance contract, locked by the tests below and the crash
//! drills in `tests/snapshot_restart.rs`: a run snapshotted at **any
//! event boundary** (between [`Simulator::step`] calls) and restored
//! with [`Simulator::restore`] continues **bit-identically** — the
//! final [`crate::SimReport`] equals the uninterrupted run's, for both
//! queue implementations and any `ShardedSim` worker count.
//!
//! Pending events are the subtle part. Handles are implementation-
//! specific (a heap sequence number vs. a packed slot+generation), so
//! the snapshot stores each started job's pending natural-end event as
//! its original insertion *sequence* and the whole pending set as
//! `(time, kind, seq)` triples. [`EventQueue::restore_events`] re-pushes them
//! in ascending original-seq order, reproducing every tie-break under
//! fresh sequence numbers, and returns handles aligned with the input
//! so the end-event array can be remapped exactly.

use crate::event::{EventHandle, EventKind, EventQueue, SavedEvent};
use crate::job::{Job, JobOutcome, JobRecord, JobSlab, JobState};
use crate::metrics::{EventCounts, MetricsCollector};
use crate::queue::WaitQueue;
use crate::resources::{Allocation, PoolState, ResourceSpec, SystemConfig};
use crate::simulator::{validate_deps, PowerModel, SimParams, Simulator};
use crate::SimTime;
use mrsch_snapshot::{
    decode_framed, frame, CodecError, Decode, Encode, Reader, Writer,
};
use std::collections::HashMap;

/// Frame magic of a simulator checkpoint.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"MRSS";
/// Newest checkpoint format version this build reads and writes.
/// v2 added the workflow-DAG state (`deps`/`arrived`), the per-node
/// [`PowerModel`] in `SimParams`, and the idle-capacity integral.
pub const SNAPSHOT_VERSION: u16 = 2;

/// Why a checkpoint could not be restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream failed codec validation (bad magic/version,
    /// truncation, checksum mismatch, malformed field).
    Codec(CodecError),
    /// The payload decoded cleanly but describes an inconsistent
    /// simulator (dangling job ids, mismatched vector lengths, ...).
    Invalid(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Codec(e) => write!(f, "snapshot codec error: {e}"),
            SnapshotError::Invalid(msg) => write!(f, "invalid snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Codec(e)
    }
}

fn invalid(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Invalid(msg.into())
}

// --- codec impls for the sim types a checkpoint contains -----------------

impl Encode for ResourceSpec {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        w.put_u64(self.capacity);
    }
}

impl Decode for ResourceSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self { name: String::decode(r)?, capacity: r.get_u64()? })
    }
}

impl Encode for PowerModel {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.idle_watts);
        w.put_u64(self.active_watts);
    }
}

impl Decode for PowerModel {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self { idle_watts: r.get_u64()?, active_watts: r.get_u64()? })
    }
}

impl Encode for SimParams {
    fn encode(&self, w: &mut Writer) {
        self.window.encode(w);
        self.backfill.encode(w);
        self.enforce_walltime.encode(w);
        self.tick.encode(w);
        self.power.encode(w);
    }
}

impl Decode for SimParams {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            window: usize::decode(r)?,
            backfill: bool::decode(r)?,
            enforce_walltime: bool::decode(r)?,
            tick: Option::<SimTime>::decode(r)?,
            power: Option::<PowerModel>::decode(r)?,
        })
    }
}

impl Encode for Job {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        w.put_u64(self.submit);
        w.put_u64(self.runtime);
        w.put_u64(self.estimate);
        self.demands.encode(w);
    }
}

impl Decode for Job {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        // Raw struct, not Job::new: the constructor clamps runtime and
        // estimate, but crafted traces (and tests) legitimately carry
        // estimate < runtime — a checkpoint must round-trip them as-is.
        Ok(Self {
            id: usize::decode(r)?,
            submit: r.get_u64()?,
            runtime: r.get_u64()?,
            estimate: r.get_u64()?,
            demands: Vec::decode(r)?,
        })
    }
}

impl Encode for JobState {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Finished => 2,
            JobState::Cancelled => 3,
            JobState::Killed => 4,
        });
    }
}

impl Decode for JobState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(JobState::Queued),
            1 => Ok(JobState::Running),
            2 => Ok(JobState::Finished),
            3 => Ok(JobState::Cancelled),
            4 => Ok(JobState::Killed),
            _ => Err(CodecError::Malformed("unknown JobState tag")),
        }
    }
}

impl Encode for JobOutcome {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            JobOutcome::Finished => 0,
            JobOutcome::Cancelled => 1,
            JobOutcome::Killed => 2,
        });
    }
}

impl Decode for JobOutcome {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(JobOutcome::Finished),
            1 => Ok(JobOutcome::Cancelled),
            2 => Ok(JobOutcome::Killed),
            _ => Err(CodecError::Malformed("unknown JobOutcome tag")),
        }
    }
}

impl Encode for JobRecord {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        w.put_u64(self.submit);
        w.put_u64(self.start);
        w.put_u64(self.end);
        self.backfilled.encode(w);
        self.outcome.encode(w);
    }
}

impl Decode for JobRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            id: usize::decode(r)?,
            submit: r.get_u64()?,
            start: r.get_u64()?,
            end: r.get_u64()?,
            backfilled: bool::decode(r)?,
            outcome: JobOutcome::decode(r)?,
        })
    }
}

impl Encode for Allocation {
    fn encode(&self, w: &mut Writer) {
        self.job.encode(w);
        self.demands.encode(w);
        w.put_u64(self.start);
        w.put_u64(self.est_end);
        w.put_u64(self.actual_end);
    }
}

impl Decode for Allocation {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            job: usize::decode(r)?,
            demands: Vec::decode(r)?,
            start: r.get_u64()?,
            est_end: r.get_u64()?,
            actual_end: r.get_u64()?,
        })
    }
}

impl Encode for PoolState {
    fn encode(&self, w: &mut Writer) {
        self.base_capacities.encode(w);
        self.capacities.encode(w);
        self.free.encode(w);
        self.draining.encode(w);
        self.running.encode(w);
    }
}

impl Decode for PoolState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            base_capacities: Vec::decode(r)?,
            capacities: Vec::decode(r)?,
            free: Vec::decode(r)?,
            draining: Vec::decode(r)?,
            running: Vec::decode(r)?,
        })
    }
}

impl Encode for MetricsCollector {
    fn encode(&self, w: &mut Writer) {
        self.start.encode(w);
        w.put_u64(self.last);
        self.used_unit_secs.encode(w);
        self.cap_unit_secs.encode(w);
        self.lost_unit_secs.encode(w);
        self.idle_unit_secs.encode(w);
    }
}

impl Decode for MetricsCollector {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            start: Option::<SimTime>::decode(r)?,
            last: r.get_u64()?,
            used_unit_secs: Vec::decode(r)?,
            cap_unit_secs: Vec::decode(r)?,
            lost_unit_secs: Vec::decode(r)?,
            idle_unit_secs: Vec::decode(r)?,
        })
    }
}

impl Encode for EventKind {
    fn encode(&self, w: &mut Writer) {
        match *self {
            EventKind::Finish(id) => {
                w.put_u8(0);
                id.encode(w);
            }
            EventKind::WalltimeKill(id) => {
                w.put_u8(1);
                id.encode(w);
            }
            EventKind::Cancel(id) => {
                w.put_u8(2);
                id.encode(w);
            }
            EventKind::CapacityChange { resource, delta } => {
                w.put_u8(3);
                resource.encode(w);
                w.put_i64(delta);
            }
            EventKind::Submit(id) => {
                w.put_u8(4);
                id.encode(w);
            }
            EventKind::Tick => w.put_u8(5),
        }
    }
}

impl Decode for EventKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(EventKind::Finish(usize::decode(r)?)),
            1 => Ok(EventKind::WalltimeKill(usize::decode(r)?)),
            2 => Ok(EventKind::Cancel(usize::decode(r)?)),
            3 => Ok(EventKind::CapacityChange {
                resource: usize::decode(r)?,
                delta: r.get_i64()?,
            }),
            4 => Ok(EventKind::Submit(usize::decode(r)?)),
            5 => Ok(EventKind::Tick),
            _ => Err(CodecError::Malformed("unknown EventKind tag")),
        }
    }
}

impl Encode for SavedEvent {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.time);
        self.kind.encode(w);
        w.put_u64(self.seq);
    }
}

impl Decode for SavedEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self { time: r.get_u64()?, kind: EventKind::decode(r)?, seq: r.get_u64()? })
    }
}

// --- the checkpoint payload ----------------------------------------------

/// Decoded checkpoint payload: every [`Simulator`] field in
/// implementation-independent form, before consistency validation.
struct SimState {
    config: SystemConfig,
    params: SimParams,
    jobs: Vec<Job>,
    states: Vec<JobState>,
    waiting: Vec<usize>,
    pools: PoolState,
    collector: MetricsCollector,
    records: Vec<JobRecord>,
    counts: Vec<u64>,
    now: SimTime,
    decisions: u64,
    instances: u64,
    finished: usize,
    replay_cancels: Vec<Option<SimTime>>,
    cap_returns: Vec<SimTime>,
    cap_cursor: usize,
    events: Vec<SavedEvent>,
    /// Per job: original insertion seq of its pending natural-end event.
    end_event: Vec<Option<u64>>,
    /// Workflow-DAG predecessor lists (empty = independent jobs). The
    /// successor adjacency and outstanding-predecessor counts are
    /// re-derived on restore from `deps` + the terminal states.
    deps: Vec<Vec<usize>>,
    /// Whether each job's Submit event has fired.
    arrived: Vec<bool>,
}

impl Decode for SimState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            config: SystemConfig { resources: Vec::decode(r)? },
            params: SimParams::decode(r)?,
            jobs: Vec::decode(r)?,
            states: Vec::decode(r)?,
            waiting: Vec::decode(r)?,
            pools: PoolState::decode(r)?,
            collector: MetricsCollector::decode(r)?,
            records: Vec::decode(r)?,
            counts: Vec::decode(r)?,
            now: r.get_u64()?,
            decisions: r.get_u64()?,
            instances: r.get_u64()?,
            finished: usize::decode(r)?,
            replay_cancels: Vec::decode(r)?,
            cap_returns: Vec::decode(r)?,
            cap_cursor: usize::decode(r)?,
            events: Vec::decode(r)?,
            end_event: Vec::decode(r)?,
            deps: Vec::decode(r)?,
            arrived: Vec::decode(r)?,
        })
    }
}

impl<Q: EventQueue> Simulator<Q> {
    /// Serialize the complete run state into one checksummed `MRSS`
    /// frame. Valid at any event boundary: freshly built, mid-run
    /// between [`Simulator::step`] calls, or drained.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(256 + self.jobs.len() * 64);
        self.config.resources.encode(&mut w);
        self.params.encode(&mut w);
        self.jobs.encode(&mut w);
        self.states.encode(&mut w);
        self.queue.all().to_vec().encode(&mut w);
        self.pools.encode(&mut w);
        self.collector.encode(&mut w);
        self.records.encode(&mut w);
        self.counts.counts.encode(&mut w);
        w.put_u64(self.now);
        w.put_u64(self.decisions);
        w.put_u64(self.instances);
        self.finished.encode(&mut w);
        self.replay_cancels.encode(&mut w);
        self.cap_returns.encode(&mut w);
        self.cap_cursor.encode(&mut w);
        self.events.save_events().encode(&mut w);
        // Handles are impl-specific: persist each started job's pending
        // natural-end event as its original insertion sequence instead.
        w.put_u64(self.end_event.len() as u64);
        for handle in &self.end_event {
            handle.and_then(|h| self.events.handle_seq(h)).encode(&mut w);
        }
        self.deps.encode(&mut w);
        self.arrived.encode(&mut w);
        frame(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &w.into_bytes())
    }

    /// Rebuild a simulator from [`Simulator::snapshot`] bytes. The
    /// target queue implementation is chosen by `Q` and need not match
    /// the one the snapshot was taken under — the pending-event set is
    /// stored logically. Running it to completion yields a report
    /// bit-identical to the uninterrupted original.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let (_version, state): (u16, SimState) =
            decode_framed(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, bytes)?;
        Self::from_state(state)
    }

    fn from_state(s: SimState) -> Result<Self, SnapshotError> {
        let nres = s.config.resources.len();
        if nres == 0 {
            return Err(invalid("config has no resources"));
        }
        let n = s.jobs.len();
        for (i, job) in s.jobs.iter().enumerate() {
            if job.id != i {
                return Err(invalid(format!("job ids not dense at index {i}")));
            }
            s.config.validate_job(job).map_err(SnapshotError::Invalid)?;
        }
        for (name, len) in [
            ("states", s.states.len()),
            ("replay_cancels", s.replay_cancels.len()),
            ("end_event", s.end_event.len()),
            ("arrived", s.arrived.len()),
        ] {
            if len != n {
                return Err(invalid(format!("{name} length {len} != {n} jobs")));
            }
        }
        let (succs, pending_preds) = if s.deps.is_empty() {
            (Vec::new(), vec![0u32; n])
        } else {
            let succs = validate_deps(n, &s.deps).map_err(invalid)?;
            // Outstanding counts are re-derived, not stored: a predecessor
            // already terminal at snapshot time has already released.
            let pending = s
                .deps
                .iter()
                .map(|preds| {
                    preds.iter().filter(|&&p| !s.states[p].is_terminal()).count() as u32
                })
                .collect();
            (succs, pending)
        };
        for (name, len) in [
            ("base_capacities", s.pools.base_capacities.len()),
            ("capacities", s.pools.capacities.len()),
            ("free", s.pools.free.len()),
            ("draining", s.pools.draining.len()),
            ("used_unit_secs", s.collector.used_unit_secs.len()),
            ("cap_unit_secs", s.collector.cap_unit_secs.len()),
            ("lost_unit_secs", s.collector.lost_unit_secs.len()),
            ("idle_unit_secs", s.collector.idle_unit_secs.len()),
        ] {
            if len != nres {
                return Err(invalid(format!("{name} length {len} != {nres} resources")));
            }
        }
        for alloc in &s.pools.running {
            if alloc.job >= n || alloc.demands.len() != nres {
                return Err(invalid(format!("running allocation of job {} invalid", alloc.job)));
            }
        }
        if !s.pools.check_conservation() {
            return Err(invalid("pool state violates unit conservation"));
        }
        if !s.counts.is_empty() && s.counts.len() != EventKind::KIND_COUNT {
            return Err(invalid(format!("event counts have {} slots", s.counts.len())));
        }
        if s.cap_cursor > s.cap_returns.len() {
            return Err(invalid("cap_cursor beyond cap_returns"));
        }
        for rec in &s.records {
            if rec.id >= n {
                return Err(invalid(format!("record references unknown job {}", rec.id)));
            }
        }
        let event_job_ok = |kind: &EventKind| match *kind {
            EventKind::Finish(id)
            | EventKind::WalltimeKill(id)
            | EventKind::Cancel(id)
            | EventKind::Submit(id) => id < n,
            EventKind::CapacityChange { resource, .. } => resource < nres,
            EventKind::Tick => true,
        };
        if let Some(bad) = s.events.iter().find(|e| !event_job_ok(&e.kind)) {
            return Err(invalid(format!("pending event references out-of-range id: {bad:?}")));
        }

        let mut queue = WaitQueue::new();
        for &id in &s.waiting {
            if id >= n {
                return Err(invalid(format!("waiting job {id} out of range")));
            }
            if queue.contains(id) {
                return Err(invalid(format!("waiting job {id} duplicated")));
            }
            queue.enqueue(id);
        }

        let mut events = Q::default();
        let handles = events.restore_events(&s.events);
        let seq_to_handle: HashMap<u64, EventHandle> =
            s.events.iter().zip(&handles).map(|(se, &h)| (se.seq, h)).collect();
        let mut end_event = Vec::with_capacity(n);
        for (id, saved) in s.end_event.iter().enumerate() {
            end_event.push(match saved {
                None => None,
                Some(seq) => Some(*seq_to_handle.get(seq).ok_or_else(|| {
                    invalid(format!("job {id} end event seq {seq} not in pending set"))
                })?),
            });
        }

        let counts = if s.counts.is_empty() {
            EventCounts::new()
        } else {
            EventCounts { counts: s.counts }
        };
        Ok(Self {
            slab: JobSlab::from_jobs(&s.jobs, nres),
            config: s.config,
            params: s.params,
            jobs: s.jobs,
            states: s.states,
            events,
            queue,
            pools: s.pools,
            collector: s.collector,
            records: s.records,
            counts,
            now: s.now,
            decisions: s.decisions,
            instances: s.instances,
            finished: s.finished,
            replay_cancels: s.replay_cancels,
            end_event,
            cap_returns: s.cap_returns,
            cap_cursor: s.cap_cursor,
            deps: s.deps,
            succs,
            pending_preds,
            arrived: s.arrived,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BinaryHeapEventQueue, IndexedEventQueue, InjectedEvent};
    use crate::policy::HeadOfQueue;
    use crate::SimReport;

    fn disrupted_sim<Q: EventQueue>() -> Simulator<Q> {
        // A trace exercising every piece of checkpointed state: walltime
        // enforcement (kills + a crafted under-estimate), ticks, injected
        // cancels, a drain below free units (drain debt), a capacity
        // return (cap_returns/cap_cursor), and replay cancels.
        let mut jobs: Vec<Job> = (0..30)
            .map(|i| {
                Job::new(
                    i,
                    (i as SimTime) * 13 % 200,
                    20 + (i as SimTime) * 7 % 90,
                    40 + (i as SimTime) * 5 % 70,
                    vec![1 + (i as u64) % 3, (i as u64) % 2],
                )
            })
            .collect();
        jobs[4] = Job { id: 4, submit: 52, runtime: 80, estimate: 30, demands: vec![2, 1] };
        let config = SystemConfig::two_resource(6, 4);
        let params = SimParams {
            window: 5,
            backfill: true,
            enforce_walltime: true,
            tick: Some(17),
            power: Some(PowerModel::new(60, 215)),
        };
        let mut sim = Simulator::<Q>::with_queue(config, jobs, params).unwrap();
        // A small workflow inside the disruption soup: a chain through the
        // kill-prone early jobs plus a fan-in, so boundary sweeps exercise
        // held jobs, releases-by-kill, and snapshotting mid-hold.
        let mut deps = vec![Vec::new(); 30];
        deps[6] = vec![2, 4];
        deps[9] = vec![6];
        deps[15] = vec![9, 11];
        sim.set_dependencies(deps).unwrap();
        sim.inject_all(&[
            InjectedEvent::new(40, EventKind::Cancel(7)),
            InjectedEvent::new(60, EventKind::CapacityChange { resource: 0, delta: -5 }),
            InjectedEvent::new(150, EventKind::CapacityChange { resource: 0, delta: 5 }),
            InjectedEvent::new(90, EventKind::Cancel(11)),
        ])
        .unwrap();
        sim.schedule_cancel_after_start(9, 15).unwrap();
        sim.schedule_cancel_after_start(20, 3).unwrap();
        sim
    }

    fn reference_report<Q: EventQueue>() -> SimReport {
        disrupted_sim::<Q>().run(&mut HeadOfQueue)
    }

    /// Snapshot after `k` steps, restore into `R`, finish both, compare.
    fn continue_from<Q: EventQueue, R: EventQueue>(k: usize) -> (SimReport, SimReport) {
        let reference = reference_report::<Q>();
        let mut sim = disrupted_sim::<Q>();
        for _ in 0..k {
            assert!(sim.step(&mut HeadOfQueue), "trace has more than {k} batches");
        }
        let bytes = sim.snapshot();
        let mut restored = Simulator::<R>::restore(&bytes).unwrap();
        while restored.step(&mut HeadOfQueue) {}
        (reference, restored.final_report())
    }

    #[test]
    fn restore_continues_bit_identically_at_every_boundary() {
        // Exhaustive sweep: snapshot between every pair of consecutive
        // steps of the whole disrupted run.
        let reference = reference_report::<IndexedEventQueue>();
        let total_steps = {
            let mut sim = disrupted_sim::<IndexedEventQueue>();
            let mut n = 0;
            while sim.step(&mut HeadOfQueue) {
                n += 1;
            }
            n
        };
        assert!(total_steps > 20, "trace is non-trivial: {total_steps} batches");
        for k in 0..=total_steps {
            let (expected, got) = continue_from::<IndexedEventQueue, IndexedEventQueue>(k);
            assert_eq!(expected, reference);
            assert_eq!(got, reference, "restored run diverged after snapshot at step {k}");
        }
    }

    #[test]
    fn restore_crosses_queue_implementations_both_ways() {
        for k in [0, 3, 11, 25] {
            let (reference, via_heap) = continue_from::<IndexedEventQueue, BinaryHeapEventQueue>(k);
            assert_eq!(via_heap, reference, "indexed -> heap at step {k}");
            let (heap_ref, via_idx) = continue_from::<BinaryHeapEventQueue, IndexedEventQueue>(k);
            assert_eq!(via_idx, heap_ref, "heap -> indexed at step {k}");
            assert_eq!(heap_ref, reference, "queue impls agree on the reference");
        }
    }

    #[test]
    fn snapshot_of_drained_sim_restores_to_same_report() {
        let mut sim = disrupted_sim::<IndexedEventQueue>();
        let report = sim.run(&mut HeadOfQueue);
        let restored = Simulator::<IndexedEventQueue>::restore(&sim.snapshot()).unwrap();
        assert_eq!(restored.final_report(), report);
    }

    #[test]
    fn fresh_snapshot_equals_fresh_run() {
        let sim = disrupted_sim::<IndexedEventQueue>();
        let bytes = sim.snapshot();
        let mut restored = Simulator::<IndexedEventQueue>::restore(&bytes).unwrap();
        assert_eq!(restored.run(&mut HeadOfQueue), reference_report::<IndexedEventQueue>());
    }

    #[test]
    fn corrupted_snapshots_return_typed_errors() {
        let mut sim = disrupted_sim::<IndexedEventQueue>();
        for _ in 0..5 {
            sim.step(&mut HeadOfQueue);
        }
        let bytes = sim.snapshot();
        // Truncations at every prefix length fail without panicking.
        for cut in [0, 3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    Simulator::<IndexedEventQueue>::restore(&bytes[..cut]),
                    Err(SnapshotError::Codec(_))
                ),
                "cut at {cut}"
            );
        }
        // A flipped payload byte is caught by the checksum.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(matches!(
            Simulator::<IndexedEventQueue>::restore(&corrupt),
            Err(SnapshotError::Codec(CodecError::ChecksumMismatch { .. }))
        ));
        // Wrong magic is identified as such.
        let mut wrong = bytes;
        wrong[0] = b'X';
        assert!(matches!(
            Simulator::<IndexedEventQueue>::restore(&wrong),
            Err(SnapshotError::Codec(CodecError::BadMagic { .. }))
        ));
    }

    #[test]
    fn semantically_invalid_payload_is_rejected() {
        // Re-frame a valid payload with an inconsistent field: claim a
        // waiting job beyond the job table.
        let sim = Simulator::<IndexedEventQueue>::new(
            SystemConfig::two_resource(4, 4),
            vec![Job::new(0, 0, 10, 10, vec![1, 0])],
            SimParams::default(),
        )
        .unwrap();
        let bytes = sim.snapshot();
        let (version, payload) =
            mrsch_snapshot::unframe(SNAPSHOT_MAGIC, &bytes).unwrap();
        let mut r = Reader::new(payload);
        let mut state = SimState::decode(&mut r).unwrap();
        r.expect_end().unwrap();
        state.waiting = vec![99];
        let mut w = Writer::new();
        state.config.resources.encode(&mut w);
        state.params.encode(&mut w);
        state.jobs.encode(&mut w);
        state.states.encode(&mut w);
        state.waiting.encode(&mut w);
        state.pools.encode(&mut w);
        state.collector.encode(&mut w);
        state.records.encode(&mut w);
        state.counts.encode(&mut w);
        w.put_u64(state.now);
        w.put_u64(state.decisions);
        w.put_u64(state.instances);
        state.finished.encode(&mut w);
        state.replay_cancels.encode(&mut w);
        state.cap_returns.encode(&mut w);
        state.cap_cursor.encode(&mut w);
        state.events.encode(&mut w);
        state.end_event.encode(&mut w);
        state.deps.encode(&mut w);
        state.arrived.encode(&mut w);
        let reframed = frame(SNAPSHOT_MAGIC, version, &w.into_bytes());
        assert!(matches!(
            Simulator::<IndexedEventQueue>::restore(&reframed),
            Err(SnapshotError::Invalid(_))
        ));
    }

    #[test]
    fn snapshot_restore_preserves_public_accessors() {
        let mut sim = disrupted_sim::<IndexedEventQueue>();
        for _ in 0..8 {
            sim.step(&mut HeadOfQueue);
        }
        let restored = Simulator::<IndexedEventQueue>::restore(&sim.snapshot()).unwrap();
        assert_eq!(restored.now(), sim.now());
        assert_eq!(restored.config(), sim.config());
        assert_eq!(restored.pools().free(0), sim.pools().free(0));
        assert_eq!(restored.pools().draining(0), sim.pools().draining(0));
        assert_eq!(restored.pools().num_running(), sim.pools().num_running());
    }
}
