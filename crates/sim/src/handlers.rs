//! Per-kind event handlers — the pluggable half of the event engine.
//!
//! `Simulator::run` is a pure dispatch loop: it pops events and calls
//! [`dispatch`], which routes each [`EventKind`] to exactly one handler
//! below. Adding a new event kind therefore touches `crate::event` (the
//! variant) and this module (one handler + one dispatch arm) — nothing
//! else. See the module docs of [`crate::event`] for the recipe and
//! `dispatch_covers_every_kind` below for the enforcement test.
//!
//! Handlers mutate simulator state but never trigger scheduling
//! themselves: the run loop batches all events sharing a timestamp and
//! runs a single scheduling instance afterwards, so same-instant
//! releases, capacity changes and arrivals are all visible to one
//! coherent policy decision.

use crate::event::{EventKind, EventQueue};
use crate::job::{JobId, JobOutcome, JobState};
use crate::simulator::Simulator;

/// Is a popped event still meaningful? Cancels and kills leave stale
/// events behind (a cancelled job's `Finish`, a finished job's late
/// `Cancel`); the run loop drops those *without advancing the clock*, so
/// a schedule's end time reflects real activity, not tombstones. New
/// kinds are live by default — add an arm only if they can go stale.
///
/// Takes the kind by reference, like [`dispatch`]: the run loop probes
/// and routes popped events without copying them, so growing a future
/// variant (payload-carrying events) never adds a per-event copy to the
/// hot loop.
pub(crate) fn is_live<Q: EventQueue>(sim: &Simulator<Q>, kind: &EventKind) -> bool {
    match *kind {
        EventKind::Finish(id) | EventKind::WalltimeKill(id) => sim.pools.is_running(id),
        EventKind::Cancel(id) => !sim.states[id].is_terminal(),
        // A tick is only meaningful while the system can still evolve;
        // skipping a dead tick also stops the re-arm chain. Other
        // pending ticks do NOT count as "can evolve" — two tick chains
        // must not keep each other alive.
        EventKind::Tick => {
            sim.events.non_tick_len() > 0
                || sim.pools.num_running() > 0
                || !sim.queue.is_empty()
        }
        _ => true,
    }
}

/// Route one event to its handler. The only kind-dispatch in the engine.
pub(crate) fn dispatch<Q: EventQueue>(sim: &mut Simulator<Q>, kind: &EventKind) {
    sim.counts.bump(*kind);
    match *kind {
        EventKind::Submit(id) => on_submit(sim, id),
        EventKind::Finish(id) => on_finish(sim, id),
        EventKind::Cancel(id) => on_cancel(sim, id),
        EventKind::WalltimeKill(id) => on_walltime_kill(sim, id),
        EventKind::CapacityChange { resource, delta } => {
            on_capacity_change(sim, resource, delta)
        }
        EventKind::Tick => on_tick(sim),
    }
}

/// A job arrives into the waiting queue. Duplicate or late submissions
/// (possible in injected disruption traces) are ignored. A job with
/// outstanding DAG predecessors is marked arrived but *held* — it joins
/// the queue only when `Simulator::release_successors` clears its last
/// predecessor, so policies only ever see the ready frontier.
fn on_submit<Q: EventQueue>(sim: &mut Simulator<Q>, id: JobId) {
    if sim.states[id] != JobState::Queued || sim.queue.contains(id) {
        return;
    }
    sim.arrived[id] = true;
    if sim.pending_preds[id] > 0 {
        return;
    }
    sim.queue.enqueue(id);
}

/// A running job completes and releases its resources.
fn on_finish<Q: EventQueue>(sim: &mut Simulator<Q>, id: JobId) {
    // A Finish may race a Cancel/WalltimeKill that already released the
    // job at an earlier instant; terminal states make it a no-op.
    if sim.states[id].is_terminal() || !sim.pools.is_running(id) {
        return;
    }
    sim.pools.release(id);
    sim.settle(id, JobState::Finished, JobOutcome::Finished);
}

/// A user cancels a job: dequeue if waiting, release if running.
fn on_cancel<Q: EventQueue>(sim: &mut Simulator<Q>, id: JobId) {
    if sim.states[id].is_terminal() {
        return;
    }
    if sim.pools.is_running(id) {
        sim.pools.release(id);
        sim.settle(id, JobState::Cancelled, JobOutcome::Cancelled);
    } else if sim.queue.try_remove(id) {
        sim.cancel_nonstarted(id);
    } else if sim.arrived[id] {
        // Arrived, not running, not in the queue, not terminal: the job
        // is dependency-held. Settle it and release its successors so a
        // cancelled workflow stage cannot deadlock its downstream tasks.
        sim.cancel_nonstarted(id);
    }
    // Cancel before the job's own Submit event (or after Finish): no-op.
}

/// The walltime enforcer kills a job that exceeded its estimate.
fn on_walltime_kill<Q: EventQueue>(sim: &mut Simulator<Q>, id: JobId) {
    if sim.states[id].is_terminal() || !sim.pools.is_running(id) {
        return;
    }
    sim.pools.release(id);
    sim.settle(id, JobState::Killed, JobOutcome::Killed);
}

/// Capacity of one pool changes (node drain/return, power-cap ramp).
fn on_capacity_change<Q: EventQueue>(sim: &mut Simulator<Q>, resource: usize, delta: i64) {
    sim.pools.adjust_capacity(resource, delta);
    if delta > 0 {
        // This return has fired: the capacity-return index moves on so
        // `earliest_capacity_return` only ever reports *pending* ones.
        debug_assert_eq!(sim.cap_returns.get(sim.cap_cursor), Some(&sim.now));
        sim.cap_cursor += 1;
    }
}

/// Periodic pulse: no state change — the run loop's post-batch
/// scheduling instance is the whole effect. Re-arms itself while the
/// simulation can still make progress.
fn on_tick<Q: EventQueue>(sim: &mut Simulator<Q>) {
    if let Some(period) = sim.params.tick {
        // Stop ticking once nothing can ever happen again (no pending
        // *non-tick* events, nothing running): otherwise the run would
        // never terminate — in particular, a second injected tick chain
        // must not count as pending work, or two chains would sustain
        // each other forever.
        if sim.events.non_tick_len() > 0 || sim.pools.num_running() > 0 {
            let next = sim.now + period.max(1);
            sim.events.push(next, EventKind::Tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::policy::HeadOfQueue;
    use crate::resources::SystemConfig;
    use crate::simulator::{SimParams, Simulator};

    /// The registry covers every kind: dispatching any variant must not
    /// panic and must bump exactly its own counter. A new variant that
    /// misses a dispatch arm fails compilation (exhaustive match); this
    /// test additionally pins the counter wiring.
    #[test]
    fn dispatch_covers_every_kind() {
        let kinds = [
            EventKind::Finish(0),
            EventKind::WalltimeKill(0),
            EventKind::Cancel(0),
            EventKind::CapacityChange { resource: 0, delta: 0 },
            EventKind::Submit(0),
            EventKind::Tick,
        ];
        assert_eq!(kinds.len(), EventKind::KIND_COUNT);
        for kind in kinds {
            let mut sim = Simulator::new(
                SystemConfig::two_resource(4, 4),
                vec![Job::new(0, 0, 10, 10, vec![1, 0])],
                SimParams::default(),
            )
            .unwrap();
            // Drain the pre-scheduled Submit so handlers see a quiet system.
            sim.run(&mut HeadOfQueue);
            let before = sim.counts.count(kind);
            dispatch(&mut sim, &kind);
            assert_eq!(sim.counts.count(kind), before + 1, "{kind:?} counter");
        }
    }
}
