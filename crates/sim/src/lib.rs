//! `mrsim` — a trace-driven, event-driven HPC job-scheduling simulator.
//!
//! This crate is the reproduction's stand-in for **CQSim**, the simulator
//! the MRSch paper evaluates against (§IV). Like CQSim it:
//!
//! * imports jobs from a trace (submit time, walltime estimate, actual
//!   runtime, per-resource demands),
//! * advances a simulation clock by discrete events — job submission,
//!   completion, user cancellation, walltime kill, capacity change
//!   (node drains and power-cap ramps), and a periodic tick — each
//!   batch of which triggers a *scheduling instance*; kinds dispatch to
//!   pluggable handlers ([`handlers`]) so new event kinds are additive
//!   (see the [`event`] module docs),
//! * at each instance asks a pluggable [`policy::Policy`] to select jobs
//!   from a fixed-size **window** at the front of the waiting queue,
//! * enforces the HPC-specific starvation protections of §III-C:
//!   **reservation** for the first non-fitting selected job and **EASY
//!   backfilling** behind that reservation,
//! * accumulates system-level (per-resource utilization) and user-level
//!   (wait, slowdown) metrics (§IV-B).
//!
//! Multi-resource support is first-class: a [`resources::SystemConfig`]
//! declares any number of unit-based schedulable resources (compute nodes,
//! burst-buffer capacity units, kilowatts of a power budget, ...) and jobs
//! carry one integer demand per resource.
//!
//! The simulator is deterministic: identical inputs and policy behavior
//! produce identical schedules, event orders, and metrics.
//!
//! # Quick example
//!
//! ```
//! use mrsim::job::Job;
//! use mrsim::policy::HeadOfQueue;
//! use mrsim::resources::SystemConfig;
//! use mrsim::simulator::{SimParams, Simulator};
//!
//! // 4-node machine with a 4-unit burst buffer.
//! let config = SystemConfig::two_resource(4, 4);
//! let jobs = vec![
//!     Job::new(0, 0, 100, 120, vec![2, 1]),
//!     Job::new(1, 10, 50, 60, vec![2, 3]),
//! ];
//! let mut sim = Simulator::new(config, jobs, SimParams::default()).unwrap();
//! let report = sim.run(&mut HeadOfQueue);
//! assert_eq!(report.jobs_completed, 2);
//! assert!(report.resource_utilization[0] > 0.0);
//! ```

pub mod backfill;
pub mod event;
pub mod handlers;
pub mod job;
pub mod metrics;
pub mod policy;
pub mod queue;
pub mod resources;
pub mod shard;
pub mod simulator;
pub mod snapshot;
pub mod timeline;

pub use event::{
    BinaryHeapEventQueue, Event, EventHandle, EventKind, EventQueue, IndexedEventQueue,
    InjectedEvent, SavedEvent,
};
pub use snapshot::SnapshotError;
pub use job::{Job, JobId, JobOutcome, JobRecord, JobSlab};
pub use metrics::{EventCounts, SimReport};
pub use policy::{Policy, SchedulerView};
pub use resources::{ResourceSpec, SystemConfig};
pub use shard::{
    partition_round_robin, shard_snapshot_name, write_shard_snapshot, ShardSpec, ShardTotals,
    ShardedSim, SnapshotConfig,
};
pub use simulator::{SimParams, Simulator};
pub use timeline::Timeline;

/// Simulation time, in whole seconds since the start of the trace.
pub type SimTime = u64;
