//! Metric accumulation and the end-of-run report (§IV-B of the paper).
//!
//! System-level metrics integrate used-unit-seconds over the simulated
//! timeline; user-level metrics aggregate per-job wait and slowdown.

use crate::job::JobRecord;
use crate::resources::PoolState;
use crate::SimTime;
use serde::{Deserialize, Serialize};

/// Streaming accumulator of per-resource used·time integrals.
#[derive(Clone, Debug)]
pub struct MetricsCollector {
    start: Option<SimTime>,
    last: SimTime,
    used_unit_secs: Vec<f64>,
}

impl MetricsCollector {
    /// Collector for a system with `nres` resources.
    pub fn new(nres: usize) -> Self {
        Self { start: None, last: 0, used_unit_secs: vec![0.0; nres] }
    }

    /// Advance the clock to `now`, crediting the interval since the last
    /// advance at the current pool occupancy. Must be called *before*
    /// occupancy changes at `now`.
    pub fn advance(&mut self, pools: &PoolState, now: SimTime) {
        if self.start.is_none() {
            self.start = Some(now);
            self.last = now;
            return;
        }
        let dt = now.saturating_sub(self.last) as f64;
        if dt > 0.0 {
            for (acc, r) in self.used_unit_secs.iter_mut().zip(0..pools.num_resources()) {
                *acc += pools.used(r) as f64 * dt;
            }
            self.last = now;
        }
    }

    /// Timeline start (first advance), if any.
    pub fn start_time(&self) -> Option<SimTime> {
        self.start
    }

    /// Finalize utilizations over `[start, end]` for the given capacities.
    pub fn utilizations(&self, capacities: &[u64], end: SimTime) -> Vec<f64> {
        let start = self.start.unwrap_or(0);
        let elapsed = end.saturating_sub(start) as f64;
        capacities
            .iter()
            .zip(&self.used_unit_secs)
            .map(|(&cap, &used)| {
                if elapsed <= 0.0 || cap == 0 {
                    0.0
                } else {
                    used / (cap as f64 * elapsed)
                }
            })
            .collect()
    }
}

/// Immutable end-of-run report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimReport {
    /// Names of the schedulable resources, aligned with the metric vectors.
    pub resource_names: Vec<String>,
    /// Number of jobs that completed.
    pub jobs_completed: usize,
    /// First event time (trace start).
    pub start_time: SimTime,
    /// Last completion time.
    pub end_time: SimTime,
    /// `end_time - start_time`.
    pub makespan: SimTime,
    /// Time-averaged utilization per resource over the makespan
    /// (§IV-B metrics 1 and 2 generalized to R resources).
    pub resource_utilization: Vec<f64>,
    /// Average job wait time in seconds (§IV-B metric 3).
    pub avg_wait: f64,
    /// Maximum job wait time in seconds (starvation indicator).
    pub max_wait: SimTime,
    /// Average job slowdown (§IV-B metric 4).
    pub avg_slowdown: f64,
    /// Average bounded slowdown (10 s runtime floor).
    pub avg_bounded_slowdown: f64,
    /// Jobs started via backfilling.
    pub backfilled_jobs: usize,
    /// Total policy decisions taken.
    pub decisions: u64,
    /// Total scheduling instances.
    pub instances: u64,
    /// Per-job records, ordered by job id.
    pub records: Vec<JobRecord>,
}

impl SimReport {
    /// Assemble a report from records and the utilization integral.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        resource_names: Vec<String>,
        mut records: Vec<JobRecord>,
        collector: &MetricsCollector,
        capacities: &[u64],
        end_time: SimTime,
        decisions: u64,
        instances: u64,
    ) -> Self {
        records.sort_by_key(|r| r.id);
        let n = records.len().max(1) as f64;
        let avg_wait = records.iter().map(|r| r.wait() as f64).sum::<f64>() / n;
        let max_wait = records.iter().map(|r| r.wait()).max().unwrap_or(0);
        let avg_slowdown = records.iter().map(|r| r.slowdown()).sum::<f64>() / n;
        let avg_bounded_slowdown =
            records.iter().map(|r| r.bounded_slowdown(10)).sum::<f64>() / n;
        let backfilled_jobs = records.iter().filter(|r| r.backfilled).count();
        let start_time = collector.start_time().unwrap_or(0);
        SimReport {
            resource_names,
            jobs_completed: records.len(),
            start_time,
            end_time,
            makespan: end_time.saturating_sub(start_time),
            resource_utilization: collector.utilizations(capacities, end_time),
            avg_wait,
            max_wait,
            avg_slowdown,
            avg_bounded_slowdown,
            backfilled_jobs,
            decisions,
            instances,
            records,
        }
    }

    /// Average wait in hours (the unit of the paper's Fig. 6a).
    pub fn avg_wait_hours(&self) -> f64 {
        self.avg_wait / 3600.0
    }

    /// Utilization of the named resource, if present.
    pub fn utilization_of(&self, name: &str) -> Option<f64> {
        self.resource_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.resource_utilization[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::resources::SystemConfig;

    #[test]
    fn collector_integrates_occupancy() {
        let cfg = SystemConfig::two_resource(10, 10);
        let mut pools = PoolState::new(&cfg);
        let mut mc = MetricsCollector::new(2);
        mc.advance(&pools, 0); // establishes start
        pools.allocate(&Job::new(0, 0, 100, 100, vec![5, 2]), 0);
        mc.advance(&pools, 100); // 100 s at 5/10 and 2/10
        pools.release(0);
        mc.advance(&pools, 200); // 100 s idle
        let u = mc.utilizations(&[10, 10], 200);
        assert!((u[0] - 0.25).abs() < 1e-12, "5 nodes * 100s / (10 * 200s)");
        assert!((u[1] - 0.10).abs() < 1e-12);
    }

    #[test]
    fn collector_zero_elapsed_is_safe() {
        let cfg = SystemConfig::two_resource(4, 4);
        let pools = PoolState::new(&cfg);
        let mut mc = MetricsCollector::new(2);
        mc.advance(&pools, 50);
        assert_eq!(mc.utilizations(&[4, 4], 50), vec![0.0, 0.0]);
    }

    #[test]
    fn report_aggregates_user_metrics() {
        let cfg = SystemConfig::two_resource(4, 4);
        let pools = PoolState::new(&cfg);
        let mut mc = MetricsCollector::new(2);
        mc.advance(&pools, 0);
        let records = vec![
            JobRecord { id: 0, submit: 0, start: 0, end: 100, backfilled: false },
            JobRecord { id: 1, submit: 0, start: 100, end: 200, backfilled: true },
        ];
        let r = SimReport::assemble(
            vec!["nodes".into(), "bb".into()],
            records,
            &mc,
            &[4, 4],
            200,
            5,
            3,
        );
        assert_eq!(r.jobs_completed, 2);
        assert_eq!(r.makespan, 200);
        assert!((r.avg_wait - 50.0).abs() < 1e-12);
        assert_eq!(r.max_wait, 100);
        assert!((r.avg_slowdown - 1.5).abs() < 1e-12);
        assert_eq!(r.backfilled_jobs, 1);
        assert_eq!(r.utilization_of("nodes"), Some(0.0));
        assert_eq!(r.utilization_of("missing"), None);
    }

    #[test]
    fn empty_records_are_safe() {
        let mc = MetricsCollector::new(1);
        let r = SimReport::assemble(vec!["nodes".into()], vec![], &mc, &[4], 0, 0, 0);
        assert_eq!(r.jobs_completed, 0);
        assert_eq!(r.avg_wait, 0.0);
        assert_eq!(r.max_wait, 0);
    }

    #[test]
    fn wait_hours_conversion() {
        let mc = MetricsCollector::new(1);
        let records = vec![JobRecord { id: 0, submit: 0, start: 7200, end: 7300, backfilled: false }];
        let r = SimReport::assemble(vec!["nodes".into()], records, &mc, &[4], 7300, 1, 1);
        assert!((r.avg_wait_hours() - 2.0).abs() < 1e-9);
    }
}
