//! Metric accumulation and the end-of-run report (§IV-B of the paper).
//!
//! System-level metrics integrate used-unit-seconds over the simulated
//! timeline; user-level metrics aggregate per-job wait and slowdown.
//! With time-varying capacity the collector additionally integrates the
//! *online-capacity* and *capacity-lost* unit-seconds so utilization can
//! be normalized by the capacity that actually existed, not the static
//! configuration.

use crate::event::EventKind;
use crate::job::{JobOutcome, JobRecord};
use crate::resources::PoolState;
use crate::simulator::PowerModel;
use crate::SimTime;
use serde::{Deserialize, Serialize};

/// Streaming accumulator of per-resource used·time integrals.
#[derive(Clone, Debug)]
pub struct MetricsCollector {
    /// Fields are `pub(crate)` for `crate::snapshot`, which persists the
    /// partial integrals with exact f64 bits so a restored run's final
    /// report is bit-identical.
    pub(crate) start: Option<SimTime>,
    pub(crate) last: SimTime,
    pub(crate) used_unit_secs: Vec<f64>,
    /// Integral of the *online* capacity (current, post-disruption).
    pub(crate) cap_unit_secs: Vec<f64>,
    /// Integral of `base_capacity - online_capacity` (clamped at 0):
    /// node-seconds lost to drains, kW-seconds lost to power caps, ...
    pub(crate) lost_unit_secs: Vec<f64>,
    /// Integral of `online_capacity - used` (clamped at 0): unit-seconds
    /// spent online but idle. Tracked per interval rather than derived
    /// as `cap - used` at the end because drain debt lets `used` exceed
    /// the online capacity transiently — the per-interval clamp keeps
    /// idle-energy accounting exact under disruptions.
    pub(crate) idle_unit_secs: Vec<f64>,
}

impl MetricsCollector {
    /// Collector for a system with `nres` resources.
    pub fn new(nres: usize) -> Self {
        Self {
            start: None,
            last: 0,
            used_unit_secs: vec![0.0; nres],
            cap_unit_secs: vec![0.0; nres],
            lost_unit_secs: vec![0.0; nres],
            idle_unit_secs: vec![0.0; nres],
        }
    }

    /// Advance the clock to `now`, crediting the interval since the last
    /// advance at the current pool occupancy and capacity. Must be called
    /// *before* occupancy or capacity changes at `now`.
    pub fn advance(&mut self, pools: &PoolState, now: SimTime) {
        if self.start.is_none() {
            self.start = Some(now);
            self.last = now;
            return;
        }
        let dt = now.saturating_sub(self.last) as f64;
        if dt > 0.0 {
            for r in 0..pools.num_resources() {
                self.used_unit_secs[r] += pools.used(r) as f64 * dt;
                self.cap_unit_secs[r] += pools.capacity(r) as f64 * dt;
                self.lost_unit_secs[r] +=
                    pools.base_capacity(r).saturating_sub(pools.capacity(r)) as f64 * dt;
                self.idle_unit_secs[r] +=
                    pools.capacity(r).saturating_sub(pools.used(r)) as f64 * dt;
            }
            self.last = now;
        }
    }

    /// Timeline start (first advance), if any.
    pub fn start_time(&self) -> Option<SimTime> {
        self.start
    }

    /// Finalize utilizations over `[start, end]` for *static* capacities
    /// (the pre-disruption behavior; kept for post-hoc re-aggregation).
    pub fn utilizations(&self, capacities: &[u64], end: SimTime) -> Vec<f64> {
        let start = self.start.unwrap_or(0);
        let elapsed = end.saturating_sub(start) as f64;
        capacities
            .iter()
            .zip(&self.used_unit_secs)
            .map(|(&cap, &used)| {
                if elapsed <= 0.0 || cap == 0 {
                    0.0
                } else {
                    used / (cap as f64 * elapsed)
                }
            })
            .collect()
    }

    /// Utilizations normalized by the *integrated online capacity* —
    /// honest under drains and returns. Falls back to the static formula
    /// when no capacity-seconds were accumulated. Identical to
    /// [`MetricsCollector::utilizations`] when capacity never changed.
    pub fn utilizations_dynamic(&self, capacities: &[u64], end: SimTime) -> Vec<f64> {
        let any_cap: f64 = self.cap_unit_secs.iter().sum();
        if any_cap <= 0.0 {
            return self.utilizations(capacities, end);
        }
        self.used_unit_secs
            .iter()
            .zip(&self.cap_unit_secs)
            .map(|(&used, &cap)| if cap <= 0.0 { 0.0 } else { used / cap })
            .collect()
    }

    /// Per-resource unit-seconds of capacity lost to disruptions so far.
    pub fn capacity_lost(&self) -> Vec<f64> {
        self.lost_unit_secs.clone()
    }

    /// `(active, idle)` energy in joules under a per-node power model:
    /// allocated node-seconds at `active_watts` plus online-but-idle
    /// node-seconds at `idle_watts` (drained nodes draw nothing).
    pub fn energy_joules(&self, power: PowerModel) -> (f64, f64) {
        let used = self.used_unit_secs.first().copied().unwrap_or(0.0);
        let idle = self.idle_unit_secs.first().copied().unwrap_or(0.0);
        (power.active_watts as f64 * used, power.idle_watts as f64 * idle)
    }
}

/// Per-kind event counters, indexed by [`EventKind::index`]. Extending
/// [`EventKind`] automatically grows this breakdown — no changes needed
/// here.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EventCounts {
    pub(crate) counts: Vec<u64>,
}

impl EventCounts {
    /// Zeroed counters for every known kind.
    pub fn new() -> Self {
        Self { counts: vec![0; EventKind::KIND_COUNT] }
    }

    /// Record one occurrence of `kind`.
    pub fn bump(&mut self, kind: EventKind) {
        if self.counts.is_empty() {
            self.counts = vec![0; EventKind::KIND_COUNT];
        }
        self.counts[kind.index()] += 1;
    }

    /// Count of events of `kind` processed.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts.get(kind.index()).copied().unwrap_or(0)
    }

    /// `(name, count)` rows for every kind, in rank order.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        EventKind::KIND_NAMES
            .iter()
            .enumerate()
            .map(|(i, &name)| (name, self.counts.get(i).copied().unwrap_or(0)))
            .collect()
    }

    /// Total events processed.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Immutable end-of-run report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Names of the schedulable resources, aligned with the metric vectors.
    pub resource_names: Vec<String>,
    /// Number of jobs that ran to completion.
    pub jobs_completed: usize,
    /// Number of jobs cancelled by their users (queued or running).
    pub jobs_cancelled: usize,
    /// Number of jobs killed at their walltime limit.
    pub jobs_killed: usize,
    /// Jobs that never reached a terminal state (stuck in queue when the
    /// event stream drained — 0 in any well-formed scenario).
    pub jobs_unfinished: usize,
    /// First event time (trace start).
    pub start_time: SimTime,
    /// Last completion time.
    pub end_time: SimTime,
    /// `end_time - start_time`.
    pub makespan: SimTime,
    /// Time-averaged utilization per resource over the makespan,
    /// normalized by the capacity actually online at each instant
    /// (§IV-B metrics 1 and 2 generalized to R resources + disruptions).
    pub resource_utilization: Vec<f64>,
    /// Per-resource unit-seconds of capacity lost to drains/power caps.
    pub capacity_lost_unit_seconds: Vec<f64>,
    /// Joules drawn by allocated nodes (`active_watts` per node-second).
    /// Zero unless the run carried a [`PowerModel`] in its `SimParams`.
    pub energy_active_joules: f64,
    /// Joules drawn by online-but-idle nodes (`idle_watts` each) — the
    /// waste an energy-aware scheduler can recover by packing or
    /// draining idle capacity.
    pub energy_idle_joules: f64,
    /// Per-kind counts of every event the engine processed.
    pub event_counts: EventCounts,
    /// Average job wait time in seconds over completed jobs (§IV-B
    /// metric 3).
    pub avg_wait: f64,
    /// Maximum completed-job wait time in seconds (starvation indicator).
    pub max_wait: SimTime,
    /// Average job slowdown over completed jobs (§IV-B metric 4).
    pub avg_slowdown: f64,
    /// Average bounded slowdown (10 s runtime floor).
    pub avg_bounded_slowdown: f64,
    /// Jobs started via backfilling.
    pub backfilled_jobs: usize,
    /// Total policy decisions taken.
    pub decisions: u64,
    /// Total scheduling instances.
    pub instances: u64,
    /// Per-job records, ordered by job id. Includes cancelled and killed
    /// jobs; user-level averages above cover [`JobOutcome::Finished`]
    /// records only.
    pub records: Vec<JobRecord>,
}

impl SimReport {
    /// Assemble a report from records and the utilization integral.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        resource_names: Vec<String>,
        mut records: Vec<JobRecord>,
        collector: &MetricsCollector,
        capacities: &[u64],
        end_time: SimTime,
        decisions: u64,
        instances: u64,
        event_counts: EventCounts,
        jobs_unfinished: usize,
        power: Option<PowerModel>,
    ) -> Self {
        let (energy_active_joules, energy_idle_joules) =
            power.map(|p| collector.energy_joules(p)).unwrap_or((0.0, 0.0));
        records.sort_by_key(|r| r.id);
        let finished: Vec<&JobRecord> =
            records.iter().filter(|r| r.outcome == JobOutcome::Finished).collect();
        let n = finished.len().max(1) as f64;
        let avg_wait = finished.iter().map(|r| r.wait() as f64).sum::<f64>() / n;
        let max_wait = finished.iter().map(|r| r.wait()).max().unwrap_or(0);
        let avg_slowdown = finished.iter().map(|r| r.slowdown()).sum::<f64>() / n;
        let avg_bounded_slowdown =
            finished.iter().map(|r| r.bounded_slowdown(10)).sum::<f64>() / n;
        let backfilled_jobs = records.iter().filter(|r| r.backfilled).count();
        let jobs_completed = finished.len();
        let jobs_cancelled =
            records.iter().filter(|r| r.outcome == JobOutcome::Cancelled).count();
        let jobs_killed =
            records.iter().filter(|r| r.outcome == JobOutcome::Killed).count();
        let start_time = collector.start_time().unwrap_or(0);
        SimReport {
            resource_names,
            jobs_completed,
            jobs_cancelled,
            jobs_killed,
            jobs_unfinished,
            start_time,
            end_time,
            makespan: end_time.saturating_sub(start_time),
            resource_utilization: collector.utilizations_dynamic(capacities, end_time),
            capacity_lost_unit_seconds: collector.capacity_lost(),
            energy_active_joules,
            energy_idle_joules,
            event_counts,
            avg_wait,
            max_wait,
            avg_slowdown,
            avg_bounded_slowdown,
            backfilled_jobs,
            decisions,
            instances,
            records,
        }
    }

    /// Average wait in hours (the unit of the paper's Fig. 6a).
    pub fn avg_wait_hours(&self) -> f64 {
        self.avg_wait / 3600.0
    }

    /// Total energy drawn in joules (active + idle).
    pub fn energy_total_joules(&self) -> f64 {
        self.energy_active_joules + self.energy_idle_joules
    }

    /// Total energy in kilowatt-hours — the unit of the grid CSV's
    /// energy column.
    pub fn energy_kwh(&self) -> f64 {
        self.energy_total_joules() / 3.6e6
    }

    /// Utilization of the named resource, if present.
    pub fn utilization_of(&self, name: &str) -> Option<f64> {
        self.resource_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.resource_utilization[i])
    }

    /// Every job in the trace reached a terminal state (finished,
    /// cancelled, or killed) — the disruption-scenario sanity invariant.
    pub fn all_jobs_accounted(&self, trace_len: usize) -> bool {
        self.jobs_unfinished == 0
            && self.jobs_completed + self.jobs_cancelled + self.jobs_killed == trace_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::resources::SystemConfig;

    fn rec(id: usize, submit: SimTime, start: SimTime, end: SimTime, bf: bool) -> JobRecord {
        JobRecord { id, submit, start, end, backfilled: bf, outcome: JobOutcome::Finished }
    }

    #[test]
    fn collector_integrates_occupancy() {
        let cfg = SystemConfig::two_resource(10, 10);
        let mut pools = PoolState::new(&cfg);
        let mut mc = MetricsCollector::new(2);
        mc.advance(&pools, 0); // establishes start
        pools.allocate(&Job::new(0, 0, 100, 100, vec![5, 2]), 0);
        mc.advance(&pools, 100); // 100 s at 5/10 and 2/10
        pools.release(0);
        mc.advance(&pools, 200); // 100 s idle
        let u = mc.utilizations(&[10, 10], 200);
        assert!((u[0] - 0.25).abs() < 1e-12, "5 nodes * 100s / (10 * 200s)");
        assert!((u[1] - 0.10).abs() < 1e-12);
        // Constant capacity: the dynamic normalization agrees exactly.
        let ud = mc.utilizations_dynamic(&[10, 10], 200);
        assert!((ud[0] - u[0]).abs() < 1e-15);
        assert_eq!(mc.capacity_lost(), vec![0.0, 0.0]);
    }

    #[test]
    fn collector_tracks_capacity_loss() {
        let cfg = SystemConfig::two_resource(10, 10);
        let mut pools = PoolState::new(&cfg);
        let mut mc = MetricsCollector::new(2);
        mc.advance(&pools, 0);
        pools.allocate(&Job::new(0, 0, 200, 200, vec![5, 0]), 0);
        mc.advance(&pools, 100);
        pools.adjust_capacity(0, -4); // 10 -> 6 online for the second half
        mc.advance(&pools, 200);
        // Lost: 4 units * 100 s.
        assert!((mc.capacity_lost()[0] - 400.0).abs() < 1e-9);
        // Dynamic utilization: 5*200 used over 10*100 + 6*100 capacity.
        let u = mc.utilizations_dynamic(&[10, 10], 200);
        assert!((u[0] - 1000.0 / 1600.0).abs() < 1e-12);
        // Static normalization underestimates: 1000 / 2000.
        assert!((mc.utilizations(&[10, 10], 200)[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn collector_energy_split_is_exact() {
        let cfg = SystemConfig::two_resource(10, 10);
        let mut pools = PoolState::new(&cfg);
        let mut mc = MetricsCollector::new(2);
        mc.advance(&pools, 0);
        pools.allocate(&Job::new(0, 0, 100, 100, vec![4, 0]), 0);
        mc.advance(&pools, 100); // 4 nodes active, 6 idle for 100 s
        pools.release(0);
        mc.advance(&pools, 150); // 10 nodes idle for 50 s
        let (active, idle) = mc.energy_joules(PowerModel::new(60, 215));
        assert!((active - 215.0 * 400.0).abs() < 1e-9, "{active}");
        assert!((idle - 60.0 * (600.0 + 500.0)).abs() < 1e-9, "{idle}");
    }

    #[test]
    fn collector_zero_elapsed_is_safe() {
        let cfg = SystemConfig::two_resource(4, 4);
        let pools = PoolState::new(&cfg);
        let mut mc = MetricsCollector::new(2);
        mc.advance(&pools, 50);
        assert_eq!(mc.utilizations(&[4, 4], 50), vec![0.0, 0.0]);
        assert_eq!(mc.utilizations_dynamic(&[4, 4], 50), vec![0.0, 0.0]);
    }

    #[test]
    fn event_counts_bump_and_report() {
        let mut ec = EventCounts::new();
        ec.bump(EventKind::Submit(0));
        ec.bump(EventKind::Submit(1));
        ec.bump(EventKind::Finish(0));
        ec.bump(EventKind::Cancel(1));
        ec.bump(EventKind::Tick);
        assert_eq!(ec.count(EventKind::Submit(9)), 2, "counts are per kind, not per job");
        assert_eq!(ec.count(EventKind::Finish(0)), 1);
        assert_eq!(ec.count(EventKind::WalltimeKill(0)), 0);
        assert_eq!(ec.total(), 5);
        let rows = ec.rows();
        assert_eq!(rows.len(), EventKind::KIND_COUNT);
        assert!(rows.contains(&("cancel", 1)));
        assert!(rows.contains(&("tick", 1)));
    }

    #[test]
    fn report_aggregates_user_metrics() {
        let cfg = SystemConfig::two_resource(4, 4);
        let pools = PoolState::new(&cfg);
        let mut mc = MetricsCollector::new(2);
        mc.advance(&pools, 0);
        let records = vec![rec(0, 0, 0, 100, false), rec(1, 0, 100, 200, true)];
        let r = SimReport::assemble(
            vec!["nodes".into(), "bb".into()],
            records,
            &mc,
            &[4, 4],
            200,
            5,
            3,
            EventCounts::new(),
            0,
            None,
        );
        assert_eq!(r.jobs_completed, 2);
        assert_eq!(r.makespan, 200);
        assert!((r.avg_wait - 50.0).abs() < 1e-12);
        assert_eq!(r.max_wait, 100);
        assert!((r.avg_slowdown - 1.5).abs() < 1e-12);
        assert_eq!(r.backfilled_jobs, 1);
        assert_eq!(r.utilization_of("nodes"), Some(0.0));
        assert_eq!(r.utilization_of("missing"), None);
        assert!(r.all_jobs_accounted(2));
    }

    #[test]
    fn report_separates_outcomes() {
        let mc = MetricsCollector::new(1);
        let records = vec![
            rec(0, 0, 10, 110, false),
            JobRecord {
                id: 1,
                submit: 0,
                start: 50,
                end: 50,
                backfilled: false,
                outcome: JobOutcome::Cancelled,
            },
            JobRecord {
                id: 2,
                submit: 0,
                start: 0,
                end: 60,
                backfilled: false,
                outcome: JobOutcome::Killed,
            },
        ];
        let r = SimReport::assemble(
            vec!["nodes".into()],
            records,
            &mc,
            &[4],
            110,
            3,
            3,
            EventCounts::new(),
            0,
            None,
        );
        assert_eq!(r.jobs_completed, 1);
        assert_eq!(r.jobs_cancelled, 1);
        assert_eq!(r.jobs_killed, 1);
        assert!(r.all_jobs_accounted(3));
        assert!(!r.all_jobs_accounted(4), "a fourth job would be unaccounted");
        // User metrics cover the finished job only: wait 10, not 50.
        assert!((r.avg_wait - 10.0).abs() < 1e-12);
        assert_eq!(r.max_wait, 10);
    }

    #[test]
    fn empty_records_are_safe() {
        let mc = MetricsCollector::new(1);
        let r = SimReport::assemble(
            vec!["nodes".into()],
            vec![],
            &mc,
            &[4],
            0,
            0,
            0,
            EventCounts::new(),
            0,
            None,
        );
        assert_eq!(r.jobs_completed, 0);
        assert_eq!(r.avg_wait, 0.0);
        assert_eq!(r.max_wait, 0);
    }

    #[test]
    fn wait_hours_conversion() {
        let mc = MetricsCollector::new(1);
        let records = vec![rec(0, 0, 7200, 7300, false)];
        let r = SimReport::assemble(
            vec!["nodes".into()],
            records,
            &mc,
            &[4],
            7300,
            1,
            1,
            EventCounts::new(),
            0,
            None,
        );
        assert!((r.avg_wait_hours() - 2.0).abs() < 1e-9);
    }
}
