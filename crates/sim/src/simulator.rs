//! The discrete-event simulation engine (the CQSim replacement).

use crate::backfill::{can_backfill, compute_reservation};
use crate::event::{EventKind, EventQueue};
use crate::job::{Job, JobId, JobRecord, JobState};
use crate::metrics::{MetricsCollector, SimReport};
use crate::policy::{JobView, Policy, SchedulerView, StepFeedback};
use crate::queue::WaitQueue;
use crate::resources::{PoolState, SystemConfig};
use crate::SimTime;
use serde::{Deserialize, Serialize};

/// Tunable simulator parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimParams {
    /// Scheduling-window size `W` (the paper uses 10).
    pub window: usize,
    /// Enable the reservation + EASY-backfilling starvation protection.
    /// Disabling it reproduces the "directly applying DFP ... results in
    /// severe job starvation" ablation of §III-C.
    pub backfill: bool,
}

impl Default for SimParams {
    fn default() -> Self {
        Self { window: 10, backfill: true }
    }
}

/// Errors raised when constructing a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A job is inconsistent with the system configuration.
    InvalidJob(String),
    /// Job ids must equal their index in the trace vector.
    NonDenseIds(JobId),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidJob(msg) => write!(f, "invalid job: {msg}"),
            SimError::NonDenseIds(id) => {
                write!(f, "job ids must be dense; found out-of-place id {id}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The trace-driven simulator.
///
/// Owns the job table, event queue, waiting queue, pool state and metric
/// accumulators; [`Simulator::run`] drives a [`Policy`] over the whole
/// trace and returns the [`SimReport`].
#[derive(Debug)]
pub struct Simulator {
    config: SystemConfig,
    params: SimParams,
    jobs: Vec<Job>,
    states: Vec<JobState>,
    events: EventQueue,
    queue: WaitQueue,
    pools: PoolState,
    collector: MetricsCollector,
    records: Vec<JobRecord>,
    now: SimTime,
    decisions: u64,
    instances: u64,
    finished: usize,
}

impl Simulator {
    /// Build a simulator over a trace.
    ///
    /// Job ids must be dense (`jobs[i].id == i`) and every job must be
    /// feasible on the system (`demands <= capacity` per resource).
    pub fn new(
        config: SystemConfig,
        jobs: Vec<Job>,
        params: SimParams,
    ) -> Result<Self, SimError> {
        for (i, job) in jobs.iter().enumerate() {
            if job.id != i {
                return Err(SimError::NonDenseIds(job.id));
            }
            config
                .validate_job(job)
                .map_err(SimError::InvalidJob)?;
        }
        let mut events = EventQueue::new();
        for job in &jobs {
            events.push(job.submit, EventKind::Submit(job.id));
        }
        let pools = PoolState::new(&config);
        let nres = config.num_resources();
        let states = vec![JobState::Queued; jobs.len()];
        Ok(Self {
            config,
            params,
            jobs,
            states,
            events,
            queue: WaitQueue::new(),
            pools,
            collector: MetricsCollector::new(nres),
            records: Vec::new(),
            now: 0,
            decisions: 0,
            instances: 0,
            finished: 0,
        })
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Run the whole trace under `policy`, returning the report.
    pub fn run(&mut self, policy: &mut dyn Policy) -> SimReport {
        while let Some(event) = self.events.pop() {
            // Advance the utilization integral to the event time *before*
            // applying occupancy changes.
            self.collector.advance(&self.pools, event.time);
            self.now = event.time;
            self.apply(event.kind);
            // Batch: apply every event with the same timestamp, then run a
            // single scheduling instance.
            while self.events.peek_time() == Some(self.now) {
                let e = self.events.pop().expect("peeked");
                self.apply(e.kind);
            }
            self.schedule(policy);
        }
        let report = self.report();
        policy.episode_end(&report);
        report
    }

    fn apply(&mut self, kind: EventKind) {
        match kind {
            EventKind::Submit(id) => {
                debug_assert_eq!(self.states[id], JobState::Queued);
                self.queue.enqueue(id);
            }
            EventKind::Finish(id) => {
                let alloc = self.pools.release(id);
                self.states[id] = JobState::Finished;
                self.finished += 1;
                let backfilled = self
                    .records
                    .iter()
                    .rev()
                    .find(|r| r.id == id)
                    .map(|r| r.backfilled)
                    .unwrap_or(false);
                // Replace the provisional record written at start time.
                if let Some(rec) = self.records.iter_mut().rev().find(|r| r.id == id) {
                    rec.end = self.now;
                } else {
                    self.records.push(JobRecord {
                        id,
                        submit: self.jobs[id].submit,
                        start: alloc.start,
                        end: self.now,
                        backfilled,
                    });
                }
            }
        }
    }

    fn start_job(&mut self, id: JobId, backfilled: bool) {
        let job = &self.jobs[id];
        self.pools.allocate(job, self.now);
        self.states[id] = JobState::Running;
        self.queue.remove(id);
        self.events.push(self.now + job.runtime, EventKind::Finish(id));
        self.records.push(JobRecord {
            id,
            submit: job.submit,
            start: self.now,
            end: self.now + job.runtime, // provisional; confirmed at Finish
            backfilled,
        });
        debug_assert!(self.pools.check_conservation());
    }

    /// One scheduling instance: selection loop, then reservation +
    /// backfilling.
    fn schedule(&mut self, policy: &mut dyn Policy) {
        if self.queue.is_empty() {
            return;
        }
        self.instances += 1;
        let mut reserved: Option<JobId> = None;
        loop {
            if self.queue.is_empty() {
                break;
            }
            let selection = {
                let view = self.view();
                policy.select(&view)
            };
            self.decisions += 1;
            let window = self.queue.window(self.params.window);
            let idx = match selection {
                Some(i) if i < window.len() => i,
                _ => break,
            };
            let jid = window[idx];
            let fits = self.pools.fits(&self.jobs[jid].demands);
            if fits {
                self.start_job(jid, false);
                let fb = StepFeedback {
                    decision: self.decisions - 1,
                    action: idx,
                    job: jid,
                    started: true,
                    measurement: self.pools.measurement(),
                    now: self.now,
                };
                policy.feedback(&fb);
            } else {
                let fb = StepFeedback {
                    decision: self.decisions - 1,
                    action: idx,
                    job: jid,
                    started: false,
                    measurement: self.pools.measurement(),
                    now: self.now,
                };
                policy.feedback(&fb);
                reserved = Some(jid);
                break;
            }
        }
        if self.params.backfill {
            if let Some(res_id) = reserved {
                self.backfill_pass(res_id);
            }
        }
    }

    /// EASY backfilling behind the reservation for `res_id`.
    fn backfill_pass(&mut self, res_id: JobId) {
        loop {
            let plan = compute_reservation(&self.pools, &self.jobs[res_id], self.now);
            let candidate = self
                .queue
                .all()
                .iter()
                .copied()
                .filter(|&j| j != res_id)
                .find(|&j| can_backfill(&plan, &self.pools, &self.jobs[j], self.now));
            match candidate {
                Some(j) => self.start_job(j, true),
                None => break,
            }
        }
    }

    fn view(&self) -> SchedulerView<'_> {
        let window = self
            .queue
            .window(self.params.window)
            .iter()
            .map(|&id| JobView {
                job: &self.jobs[id],
                queued: self.now.saturating_sub(self.jobs[id].submit),
            })
            .collect();
        SchedulerView {
            now: self.now,
            instance: self.instances,
            decision: self.decisions,
            window,
            pools: &self.pools,
            config: &self.config,
            queued: self.queue.all(),
            jobs: &self.jobs,
        }
    }

    fn report(&self) -> SimReport {
        SimReport::assemble(
            self.config.resources.iter().map(|r| r.name.clone()).collect(),
            self.records
                .iter()
                .filter(|r| self.states[r.id] == JobState::Finished)
                .copied()
                .collect(),
            &self.collector,
            &self.config.capacities(),
            self.now,
            self.decisions,
            self.instances,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::HeadOfQueue;

    fn sys(nodes: u64, bb: u64) -> SystemConfig {
        SystemConfig::two_resource(nodes, bb)
    }

    fn run_fcfs(config: SystemConfig, jobs: Vec<Job>) -> SimReport {
        let mut sim = Simulator::new(config, jobs, SimParams::default()).unwrap();
        sim.run(&mut HeadOfQueue)
    }

    #[test]
    fn single_job_executes_exactly() {
        let report = run_fcfs(sys(4, 4), vec![Job::new(0, 10, 100, 120, vec![2, 1])]);
        assert_eq!(report.jobs_completed, 1);
        let rec = &report.records[0];
        assert_eq!(rec.start, 10);
        assert_eq!(rec.end, 110, "runs for actual runtime, not estimate");
        assert_eq!(report.makespan, 100);
    }

    #[test]
    fn serial_execution_when_jobs_conflict() {
        // Both jobs need all nodes: second starts when first finishes.
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![4, 0]),
            Job::new(1, 0, 50, 50, vec![4, 0]),
        ];
        let report = run_fcfs(sys(4, 4), jobs);
        assert_eq!(report.records[0].start, 0);
        assert_eq!(report.records[1].start, 100);
        assert_eq!(report.end_time, 150);
    }

    #[test]
    fn parallel_execution_when_resources_allow() {
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 0, 100, 100, vec![2, 0]),
        ];
        let report = run_fcfs(sys(4, 4), jobs);
        assert_eq!(report.records[0].start, 0);
        assert_eq!(report.records[1].start, 0);
        assert_eq!(report.makespan, 100);
    }

    #[test]
    fn burst_buffer_contention_serializes() {
        // Plenty of nodes, but both jobs want the whole burst buffer.
        let jobs = vec![
            Job::new(0, 0, 60, 60, vec![1, 4]),
            Job::new(1, 0, 60, 60, vec![1, 4]),
        ];
        let report = run_fcfs(sys(16, 4), jobs);
        assert_eq!(report.records[1].start, 60, "BB is the bottleneck");
    }

    #[test]
    fn easy_backfill_lets_short_job_skip() {
        // t=0: J0 takes all 4 nodes for 100 s.
        // J1 (4 nodes) must wait -> reserved at shadow=100.
        // J2 (1 node, 50 s) fits now and ends before the shadow: backfills.
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![4, 0]),
            Job::new(1, 1, 100, 100, vec![4, 0]),
            Job::new(2, 2, 50, 50, vec![1, 0]),
        ];
        // 5 nodes: J0 leaves 1 free.
        let report = run_fcfs(sys(5, 4), jobs);
        let rec2 = report.records.iter().find(|r| r.id == 2).unwrap();
        assert_eq!(rec2.start, 2, "short job backfills immediately on arrival");
        assert!(rec2.backfilled);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.start, 100, "reservation honored, not delayed");
        assert_eq!(report.backfilled_jobs, 1);
    }

    #[test]
    fn backfill_never_delays_reservation() {
        // J2 would delay J1 if allowed to backfill (runs 500 s on the one
        // free node while J1 needs all 5 at t=100).
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![4, 0]),
            Job::new(1, 1, 100, 100, vec![5, 0]),
            Job::new(2, 2, 500, 500, vec![1, 0]),
        ];
        let report = run_fcfs(sys(5, 4), jobs);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.start, 100, "reservation must not be delayed");
        let rec2 = report.records.iter().find(|r| r.id == 2).unwrap();
        assert!(rec2.start >= 100, "long job waits behind the reservation");
    }

    #[test]
    fn backfill_disabled_blocks_short_jobs() {
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![4, 0]),
            Job::new(1, 1, 100, 100, vec![4, 0]),
            Job::new(2, 2, 50, 50, vec![1, 0]),
        ];
        let mut sim = Simulator::new(
            sys(5, 4),
            jobs,
            SimParams { window: 10, backfill: false },
        )
        .unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let rec2 = report.records.iter().find(|r| r.id == 2).unwrap();
        assert!(rec2.start >= 100, "without backfill the short job waits");
        assert_eq!(report.backfilled_jobs, 0);
    }

    #[test]
    fn all_jobs_complete_and_ids_preserved() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| Job::new(i, (i as SimTime) * 10, 30 + i as SimTime, 60, vec![1 + (i as u64 % 3), i as u64 % 2]))
            .collect();
        let report = run_fcfs(sys(6, 6), jobs);
        assert_eq!(report.jobs_completed, 20);
        for (i, rec) in report.records.iter().enumerate() {
            assert_eq!(rec.id, i);
            assert!(rec.start >= rec.submit);
            assert!(rec.end > rec.start);
        }
    }

    #[test]
    fn utilization_exact_for_simple_case() {
        // One job occupying half the nodes for the whole makespan.
        let report = run_fcfs(sys(4, 4), vec![Job::new(0, 0, 100, 100, vec![2, 0])]);
        assert!((report.resource_utilization[0] - 0.5).abs() < 1e-9);
        assert_eq!(report.resource_utilization[1], 0.0);
    }

    #[test]
    fn rejects_infeasible_job() {
        let err = Simulator::new(
            sys(4, 4),
            vec![Job::new(0, 0, 10, 10, vec![5, 0])],
            SimParams::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidJob(_)));
    }

    #[test]
    fn rejects_non_dense_ids() {
        let err = Simulator::new(
            sys(4, 4),
            vec![Job::new(3, 0, 10, 10, vec![1, 0])],
            SimParams::default(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::NonDenseIds(3));
    }

    #[test]
    fn window_limits_policy_choice() {
        // Policy that always selects the LAST window entry; with window=1
        // it behaves exactly like FCFS.
        struct LastInWindow;
        impl Policy for LastInWindow {
            fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
                if view.window.is_empty() {
                    None
                } else {
                    Some(view.window.len() - 1)
                }
            }
        }
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 0, 100, 100, vec![2, 0]),
        ];
        let mut sim = Simulator::new(
            sys(2, 2),
            jobs.clone(),
            SimParams { window: 1, backfill: true },
        )
        .unwrap();
        let report = sim.run(&mut LastInWindow);
        assert_eq!(report.records[0].start, 0, "window=1 forces FCFS order");
        assert_eq!(report.records[1].start, 100);
    }

    #[test]
    fn policy_receives_feedback_for_each_decision() {
        #[derive(Default)]
        struct Counting {
            feedbacks: usize,
            starts: usize,
            reserves: usize,
            episode_ends: usize,
        }
        impl Policy for Counting {
            fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
                (!view.window.is_empty()).then_some(0)
            }
            fn feedback(&mut self, fb: &StepFeedback) {
                self.feedbacks += 1;
                if fb.started {
                    self.starts += 1;
                } else {
                    self.reserves += 1;
                }
            }
            fn episode_end(&mut self, _r: &SimReport) {
                self.episode_ends += 1;
            }
        }
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 0, 100, 100, vec![2, 0]), // forces a reservation
        ];
        let mut p = Counting::default();
        let mut sim = Simulator::new(sys(2, 2), jobs, SimParams::default()).unwrap();
        sim.run(&mut p);
        assert_eq!(p.starts, 2);
        assert!(p.reserves >= 1, "the conflicting job must be reserved");
        assert_eq!(p.episode_ends, 1);
        assert_eq!(p.feedbacks, p.starts + p.reserves);
    }

    #[test]
    fn simultaneous_finish_and_submit_processed_in_order() {
        // J1 arrives exactly when J0 finishes: must start immediately.
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 100, 10, 10, vec![2, 0]),
        ];
        let report = run_fcfs(sys(2, 2), jobs);
        assert_eq!(report.records[1].start, 100);
    }

    #[test]
    fn overstayed_estimate_handled() {
        // Job 0's estimate is shorter than runtime (user under-estimate;
        // Job::new clamps estimate >= runtime, so craft via raw struct).
        let j0 = Job { id: 0, submit: 0, runtime: 100, estimate: 50, demands: vec![2, 0] };
        let j1 = Job::new(1, 10, 10, 10, vec![2, 0]);
        let report = run_fcfs(sys(2, 2), vec![j0, j1]);
        // J1 reserved with shadow=50 (estimate), but J0 actually runs to 100.
        // At t=100 the finish event retriggers scheduling; J1 starts then.
        assert_eq!(report.records[1].start, 100);
        assert_eq!(report.jobs_completed, 2);
    }

    #[test]
    fn three_resource_power_budget_enforced() {
        // 3 jobs, each drawing 4 kW of a 10 kW budget: only two co-run
        // even though nodes and BB are plentiful.
        let config = SystemConfig::three_resource(100, 100, 10);
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![10, 5, 4]),
            Job::new(1, 0, 100, 100, vec![10, 5, 4]),
            Job::new(2, 0, 100, 100, vec![10, 5, 4]),
        ];
        let mut sim = Simulator::new(config, jobs, SimParams::default()).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let starts: Vec<SimTime> =
            report.records.iter().map(|r| r.start).collect();
        assert_eq!(starts[0], 0);
        assert_eq!(starts[1], 0);
        assert_eq!(starts[2], 100, "third job must wait for the power budget");
        // Power utilization: 8/10 for first 100 s, 4/10 for next 100 s.
        assert!((report.resource_utilization[2] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn backfill_respects_power_dimension() {
        // Reservation on power: the backfill candidate fits nodes/BB but
        // would consume power needed by the reserved job.
        let config = SystemConfig::three_resource(100, 100, 10);
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![10, 0, 8]), // running, 8 kW
            Job::new(1, 1, 50, 50, vec![10, 0, 6]),   // reserved (needs 6)
            Job::new(2, 2, 500, 500, vec![1, 0, 2]),  // long candidate, 2 kW
        ];
        let mut sim = Simulator::new(config, jobs, SimParams::default()).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.start, 100, "reservation honored on the power axis");
        let rec2 = report.records.iter().find(|r| r.id == 2).unwrap();
        // extra_power = projected_free(100)=10 minus reserved 6 = 4 >= 2:
        // the long candidate may backfill without delaying the reservation.
        assert_eq!(rec2.start, 2);
        assert!(rec2.backfilled);
    }

    #[test]
    fn decisions_and_instances_counted() {
        let jobs = vec![Job::new(0, 0, 10, 10, vec![1, 0])];
        let report = run_fcfs(sys(2, 2), jobs);
        assert!(report.decisions >= 1);
        assert!(report.instances >= 1);
    }
}
