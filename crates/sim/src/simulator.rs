//! The discrete-event simulation engine (the CQSim replacement).
//!
//! [`Simulator::run`] is a pure dispatch loop: it pops events, routes
//! each to its handler in [`crate::handlers`], and runs one scheduling
//! instance per distinct timestamp. Event kinds — including the
//! disruption kinds (cancel, walltime kill, capacity change) and the
//! periodic tick — are therefore additive: see the module docs of
//! [`crate::event`].

use crate::backfill::{can_backfill, compute_reservation, ReservationPlan};
use crate::event::{EventHandle, EventKind, EventQueue, IndexedEventQueue, InjectedEvent};
use crate::handlers;
use crate::job::{Job, JobId, JobOutcome, JobRecord, JobSlab, JobState};
use crate::metrics::{EventCounts, MetricsCollector, SimReport};
use crate::policy::{JobView, Policy, SchedulerView, StepFeedback};
use crate::queue::WaitQueue;
use crate::resources::{PoolState, SystemConfig};
use crate::SimTime;
use serde::{Deserialize, Serialize};

/// Per-unit power draw of the primary (node) resource, in integer watts
/// so [`SimParams`] stays `Copy + Eq` and snapshots stay bit-exact.
///
/// Energy accounting splits the node pool into *allocated* units (drawing
/// `active_watts` each) and *online-but-idle* units (drawing `idle_watts`
/// each); drained units draw nothing. The integrals live in
/// [`crate::metrics::MetricsCollector`] and surface as the energy fields
/// of [`crate::SimReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Watts drawn by one online node with no job on it.
    pub idle_watts: u64,
    /// Watts drawn by one node allocated to a running job.
    pub active_watts: u64,
}

impl PowerModel {
    /// A power model from idle and active per-node watts.
    pub fn new(idle_watts: u64, active_watts: u64) -> Self {
        Self { idle_watts, active_watts }
    }

    /// Representative HPC node numbers (idle 60 W, full-load 215 W) —
    /// the same figures as `mrsch_workload`'s power-aware suite.
    pub fn hpc_default() -> Self {
        Self { idle_watts: 60, active_watts: 215 }
    }
}

/// Tunable simulator parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimParams {
    /// Scheduling-window size `W` (the paper uses 10).
    pub window: usize,
    /// Enable the reservation + EASY-backfilling starvation protection.
    /// Disabling it reproduces the "directly applying DFP ... results in
    /// severe job starvation" ablation of §III-C.
    pub backfill: bool,
    /// Kill jobs whose true runtime exceeds their walltime estimate at
    /// `start + estimate`, as real RJMS do. Off by default: trace replays
    /// without disruptions let over-runners finish (the seed behavior).
    pub enforce_walltime: bool,
    /// Period of the [`EventKind::Tick`] pulse for time-driven policies.
    /// `None` (default) disables ticking.
    pub tick: Option<SimTime>,
    /// Per-node power model for energy accounting. `None` (default)
    /// reports zero energy — the pre-energy behavior.
    pub power: Option<PowerModel>,
}

impl SimParams {
    /// Parameters with a given window and backfill toggle, disruptions
    /// off — the common construction throughout tests and experiments.
    pub fn new(window: usize, backfill: bool) -> Self {
        Self { window, backfill, enforce_walltime: false, tick: None, power: None }
    }
}

impl Default for SimParams {
    fn default() -> Self {
        Self::new(10, true)
    }
}

/// Errors raised when constructing a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A job is inconsistent with the system configuration.
    InvalidJob(String),
    /// Job ids must equal their index in the trace vector.
    NonDenseIds(JobId),
    /// An injected event references a job or resource that does not exist.
    InvalidEvent(String),
    /// A periodic checkpoint could not be written or restored.
    Snapshot(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidJob(msg) => write!(f, "invalid job: {msg}"),
            SimError::NonDenseIds(id) => {
                write!(f, "job ids must be dense; found out-of-place id {id}")
            }
            SimError::InvalidEvent(msg) => write!(f, "invalid injected event: {msg}"),
            SimError::Snapshot(msg) => write!(f, "snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The trace-driven simulator.
///
/// Owns the job table, event queue, waiting queue, pool state and metric
/// accumulators; [`Simulator::run`] drives a [`Policy`] over the whole
/// trace and returns the [`SimReport`]. Fields are crate-visible so the
/// per-kind handlers in [`crate::handlers`] can mutate them directly.
///
/// The engine is generic over its [`EventQueue`]; the default
/// [`IndexedEventQueue`] is what every production caller gets, while the
/// equivalence test suites instantiate [`Simulator::with_queue`] with the
/// reference [`crate::BinaryHeapEventQueue`] to prove the two produce
/// bit-identical [`SimReport`]s.
#[derive(Debug)]
pub struct Simulator<Q: EventQueue = IndexedEventQueue> {
    pub(crate) config: SystemConfig,
    pub(crate) params: SimParams,
    pub(crate) jobs: Vec<Job>,
    /// Struct-of-arrays mirror of `jobs` for the scheduling hot paths.
    pub(crate) slab: JobSlab,
    pub(crate) states: Vec<JobState>,
    pub(crate) events: Q,
    pub(crate) queue: WaitQueue,
    pub(crate) pools: PoolState,
    pub(crate) collector: MetricsCollector,
    pub(crate) records: Vec<JobRecord>,
    pub(crate) counts: EventCounts,
    pub(crate) now: SimTime,
    pub(crate) decisions: u64,
    pub(crate) instances: u64,
    /// Jobs in a terminal state (finished + cancelled + killed).
    pub(crate) finished: usize,
    /// Wait-time-aware cancel replay: `Some(delay)` schedules a
    /// `Cancel` at `start + delay` of the *simulated* run when the job
    /// starts (see [`Simulator::schedule_cancel_after_start`]).
    pub(crate) replay_cancels: Vec<Option<SimTime>>,
    /// Handle of each started job's pending natural-end event (finish,
    /// walltime kill, or armed replay cancel). `settle` cancels it
    /// eagerly instead of leaving a tombstone for the queue to skip.
    pub(crate) end_event: Vec<Option<EventHandle>>,
    /// Times of injected capacity-*increase* events, sorted; with
    /// `cap_cursor` this answers `earliest_capacity_return` in O(1)
    /// instead of scanning the whole pending-event set.
    pub(crate) cap_returns: Vec<SimTime>,
    pub(crate) cap_cursor: usize,
    /// Predecessor lists of the workflow dependency DAG, set via
    /// [`Simulator::set_dependencies`]. Empty (the default) means the
    /// trace is independent jobs. A job with outstanding predecessors is
    /// *held*: its submission marks it arrived but it does not enter the
    /// wait queue (and is thus invisible to policies) until every
    /// predecessor reaches a terminal state.
    pub(crate) deps: Vec<Vec<JobId>>,
    /// Successor adjacency derived from `deps` (empty iff `deps` is).
    pub(crate) succs: Vec<Vec<JobId>>,
    /// Outstanding (non-terminal) predecessor count per job.
    pub(crate) pending_preds: Vec<u32>,
    /// Whether each job's `Submit` event has fired — distinguishes a
    /// dependency-held job from one that has not arrived yet.
    pub(crate) arrived: Vec<bool>,
}

/// Validate a predecessor table against a trace of `n` dense-id jobs and
/// derive the successor adjacency. Rejects out-of-range ids, self-loops
/// and cycles (Kahn's algorithm). Shared by [`Simulator::set_dependencies`]
/// and snapshot restore.
pub(crate) fn validate_deps(
    n: usize,
    deps: &[Vec<JobId>],
) -> Result<Vec<Vec<JobId>>, String> {
    if deps.len() != n {
        return Err(format!("dependency table covers {} jobs, trace has {n}", deps.len()));
    }
    let mut succs: Vec<Vec<JobId>> = vec![Vec::new(); n];
    for (j, preds) in deps.iter().enumerate() {
        for &p in preds {
            if p >= n {
                return Err(format!("job {j} depends on out-of-range job {p}"));
            }
            if p == j {
                return Err(format!("job {j} depends on itself"));
            }
            succs[p].push(j);
        }
    }
    // Kahn's algorithm: every job must be reachable from the zero-indegree
    // frontier, otherwise the graph has a cycle and would deadlock.
    let mut indeg: Vec<usize> = deps.iter().map(|p| p.len()).collect();
    let mut ready: Vec<JobId> = (0..n).filter(|&j| indeg[j] == 0).collect();
    let mut seen = 0usize;
    while let Some(j) = ready.pop() {
        seen += 1;
        for &s in &succs[j] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    if seen != n {
        return Err("dependency graph contains a cycle".into());
    }
    Ok(succs)
}

impl Simulator<IndexedEventQueue> {
    /// Build a simulator over a trace (with the default indexed queue —
    /// see [`Simulator::with_queue`] to pick the implementation).
    ///
    /// Job ids must be dense (`jobs[i].id == i`) and every job must be
    /// feasible on the system (`demands <= capacity` per resource).
    pub fn new(
        config: SystemConfig,
        jobs: Vec<Job>,
        params: SimParams,
    ) -> Result<Self, SimError> {
        Self::with_queue(config, jobs, params)
    }
}

impl<Q: EventQueue> Simulator<Q> {
    /// [`Simulator::new`] generic over the event-queue implementation.
    pub fn with_queue(
        config: SystemConfig,
        jobs: Vec<Job>,
        params: SimParams,
    ) -> Result<Self, SimError> {
        Self::validate_trace(&config, &jobs)?;
        let nres = config.num_resources();
        let n = jobs.len();
        let mut sim = Self {
            pools: PoolState::new(&config),
            slab: JobSlab::from_jobs(&jobs, nres),
            config,
            params,
            jobs,
            states: vec![JobState::Queued; n],
            events: Q::default(),
            queue: WaitQueue::new(),
            collector: MetricsCollector::new(nres),
            records: Vec::new(),
            counts: EventCounts::new(),
            now: 0,
            decisions: 0,
            instances: 0,
            finished: 0,
            replay_cancels: vec![None; n],
            end_event: vec![None; n],
            cap_returns: Vec::new(),
            cap_cursor: 0,
            deps: Vec::new(),
            succs: Vec::new(),
            pending_preds: vec![0; n],
            arrived: vec![false; n],
        };
        sim.seed_events();
        Ok(sim)
    }

    /// Install a workflow dependency DAG over the loaded trace: `deps[j]`
    /// lists the jobs that must reach a terminal state before job `j`
    /// becomes schedulable. Call on a fresh (or freshly reset/loaded)
    /// simulator, before the first [`Simulator::step`].
    ///
    /// While held, a job is invisible to policies — the wait queue (and
    /// therefore [`crate::SchedulerView`]) carries only the **ready
    /// frontier**. A predecessor's *any* terminal state (finished,
    /// cancelled, or killed) releases its successors: a workflow whose
    /// upstream task dies still gets its downstream tasks scheduled
    /// rather than deadlocking the episode; policies observe the failure
    /// through the report instead.
    ///
    /// Dependencies survive [`Simulator::reset`] (the same episode can be
    /// re-run bit-identically) and are cleared by
    /// [`Simulator::load_trace`]/[`Simulator::load`] (a new trace means a
    /// new DAG).
    pub fn set_dependencies(&mut self, deps: Vec<Vec<JobId>>) -> Result<(), SimError> {
        let succs = validate_deps(self.jobs.len(), &deps).map_err(SimError::InvalidJob)?;
        self.pending_preds = deps.iter().map(|p| p.len() as u32).collect();
        self.succs = succs;
        self.deps = deps;
        Ok(())
    }

    /// Number of arrived jobs currently held back by unfinished
    /// predecessors (0 in a dependency-free trace).
    pub fn held_jobs(&self) -> usize {
        (0..self.jobs.len())
            .filter(|&j| {
                self.arrived[j]
                    && self.pending_preds[j] > 0
                    && self.states[j] == JobState::Queued
            })
            .count()
    }

    /// A job `p` reached a terminal state: decrement every successor's
    /// outstanding-predecessor count and enqueue the ones that become
    /// ready (arrived, still queued, all predecessors settled).
    pub(crate) fn release_successors(&mut self, p: JobId) {
        if self.succs.is_empty() {
            return;
        }
        let succs = std::mem::take(&mut self.succs[p]);
        for &s in &succs {
            debug_assert!(self.pending_preds[s] > 0);
            self.pending_preds[s] -= 1;
            if self.pending_preds[s] == 0
                && self.arrived[s]
                && self.states[s] == JobState::Queued
                && !self.queue.contains(s)
            {
                self.queue.enqueue(s);
            }
        }
        self.succs[p] = succs;
    }

    fn validate_trace(config: &SystemConfig, jobs: &[Job]) -> Result<(), SimError> {
        for (i, job) in jobs.iter().enumerate() {
            if job.id != i {
                return Err(SimError::NonDenseIds(job.id));
            }
            config.validate_job(job).map_err(SimError::InvalidJob)?;
        }
        Ok(())
    }

    /// Schedule the trace's submissions and the anchored tick chain into
    /// an empty event queue (shared by construction and reset).
    fn seed_events(&mut self) {
        for id in 0..self.slab.len() {
            self.events.push(self.slab.submit(id), EventKind::Submit(id));
        }
        if let Some(period) = self.params.tick {
            // Anchor the tick chain to the trace start so ticking never
            // drags start_time (and the capacity integral) earlier than
            // the first real event.
            let t0 = (0..self.slab.len()).map(|id| self.slab.submit(id)).min().unwrap_or(0);
            self.events.push(t0 + period.max(1), EventKind::Tick);
        }
    }

    /// Return this simulator to its freshly constructed state so the
    /// same trace can be run again without rebuilding — rollout workers
    /// reuse one simulator across training episodes. Injected events
    /// and relative cancels are cleared; re-inject before re-running.
    pub fn reset(&mut self) {
        let n = self.jobs.len();
        self.states.clear();
        self.states.resize(n, JobState::Queued);
        self.events = Q::default();
        self.queue = WaitQueue::new();
        self.pools = PoolState::new(&self.config);
        self.collector = MetricsCollector::new(self.config.num_resources());
        self.records.clear();
        self.counts = EventCounts::new();
        self.now = 0;
        self.decisions = 0;
        self.instances = 0;
        self.finished = 0;
        self.replay_cancels.clear();
        self.replay_cancels.resize(n, None);
        self.end_event.clear();
        self.end_event.resize(n, None);
        self.cap_returns.clear();
        self.cap_cursor = 0;
        // The DAG itself survives a reset (same trace, same episode);
        // only its runtime progress is rewound.
        self.pending_preds = if self.deps.is_empty() {
            vec![0; n]
        } else {
            self.deps.iter().map(|p| p.len() as u32).collect()
        };
        self.arrived.clear();
        self.arrived.resize(n, false);
        self.seed_events();
    }

    /// Swap in a new trace and [`Simulator::reset`] — the cheap
    /// alternative to constructing a fresh simulator per episode. The
    /// incoming jobs face the same validation as [`Simulator::new`];
    /// on error the simulator keeps its previous trace untouched.
    pub fn load_trace(&mut self, jobs: Vec<Job>) -> Result<(), SimError> {
        Self::validate_trace(&self.config, &jobs)?;
        self.slab = JobSlab::from_jobs(&jobs, self.config.num_resources());
        self.jobs = jobs;
        self.deps = Vec::new();
        self.succs = Vec::new();
        self.reset();
        Ok(())
    }

    /// [`Simulator::load_trace`] plus a parameter swap, for reuse across
    /// episodes whose scenarios differ in `SimParams` (walltime
    /// enforcement, ticking). A loaded simulator behaves bit-identically
    /// to a freshly constructed one.
    pub fn load(&mut self, jobs: Vec<Job>, params: SimParams) -> Result<(), SimError> {
        Self::validate_trace(&self.config, &jobs)?;
        self.params = params;
        self.slab = JobSlab::from_jobs(&jobs, self.config.num_resources());
        self.jobs = jobs;
        self.deps = Vec::new();
        self.succs = Vec::new();
        self.reset();
        Ok(())
    }

    /// Schedule an external event (disruption traces: cancels, walltime
    /// kills, capacity changes, extra ticks) before running.
    pub fn inject(&mut self, event: InjectedEvent) -> Result<(), SimError> {
        match event.kind {
            EventKind::Cancel(id)
            | EventKind::WalltimeKill(id)
            | EventKind::Finish(id)
            | EventKind::Submit(id) => {
                if id >= self.jobs.len() {
                    return Err(SimError::InvalidEvent(format!(
                        "job {id} out of range ({} jobs)",
                        self.jobs.len()
                    )));
                }
            }
            EventKind::CapacityChange { resource, .. } => {
                if resource >= self.config.num_resources() {
                    return Err(SimError::InvalidEvent(format!(
                        "resource {resource} out of range ({} pools)",
                        self.config.num_resources()
                    )));
                }
            }
            EventKind::Tick => {}
        }
        if let EventKind::CapacityChange { delta, .. } = event.kind {
            // Index capacity *returns* so reservation planning can ask
            // for the earliest one without scanning the event set.
            if delta > 0 {
                let at = self.cap_returns.partition_point(|&t| t <= event.time);
                self.cap_returns.insert(at, event.time);
            }
        }
        self.events.push(event.time, event.kind);
        Ok(())
    }

    /// Inject a whole disruption trace (see [`Simulator::inject`]).
    pub fn inject_all(&mut self, events: &[InjectedEvent]) -> Result<(), SimError> {
        for e in events {
            self.inject(*e)?;
        }
        Ok(())
    }

    /// Schedule a cancellation relative to the job's (yet unknown)
    /// start: when the job starts in *this* simulated schedule, a
    /// `Cancel` fires at `start + delay`.
    ///
    /// This is the wait-time-aware SWF cancel replay: the archive
    /// records a cancelled job's observed lifetime in its runtime
    /// column, so replaying the cancel `runtime` seconds after the
    /// *simulated* start reproduces the user's behavior even when the
    /// simulated schedule diverges from the original (the older
    /// `submit + recorded_runtime` proxy is only faithful when the two
    /// track). A job that never starts keeps waiting and is reported as
    /// unfinished — exactly what the original user saw up to the log's
    /// horizon.
    pub fn schedule_cancel_after_start(
        &mut self,
        id: JobId,
        delay: SimTime,
    ) -> Result<(), SimError> {
        if id >= self.jobs.len() {
            return Err(SimError::InvalidEvent(format!(
                "job {id} out of range ({} jobs)",
                self.jobs.len()
            )));
        }
        self.replay_cancels[id] = Some(delay);
        Ok(())
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The live pool state (current capacity, free units, allocations).
    pub fn pools(&self) -> &PoolState {
        &self.pools
    }

    /// Run the whole trace under `policy`, returning the report.
    ///
    /// This loop is kind-agnostic: every event is routed through
    /// [`handlers::dispatch`]; all events sharing a timestamp are applied
    /// as one batch, then a single scheduling instance runs.
    pub fn run(&mut self, policy: &mut dyn Policy) -> SimReport {
        while self.step(policy) {}
        let report = self.report();
        policy.episode_end(&report);
        report
    }

    /// Process the next live timestamp batch: advance the clock to the
    /// next live event, apply every live event sharing its timestamp,
    /// then run one scheduling instance. Returns `false` once the event
    /// set is drained ([`Simulator::run`] is `while self.step(..) {}`
    /// plus the report).
    ///
    /// Between `step` calls the simulator sits at an *event boundary* —
    /// the states [`Simulator::snapshot`] may checkpoint and
    /// [`Simulator::restore`] continues from bit-identically. Periodic
    /// snapshotting (`ShardedSim`) and the crash drills drive this
    /// directly instead of `run`.
    pub fn step(&mut self, policy: &mut dyn Policy) -> bool {
        while let Some(event) = self.events.pop() {
            // Tombstoned events (see `handlers::is_live`) are dropped
            // without advancing the clock or triggering scheduling.
            if !handlers::is_live(self, &event.kind) {
                continue;
            }
            // Advance the utilization integral to the event time *before*
            // applying occupancy or capacity changes.
            self.collector.advance(&self.pools, event.time);
            self.now = event.time;
            handlers::dispatch(self, &event.kind);
            while self.events.peek_time() == Some(self.now) {
                let e = self.events.pop().expect("peeked");
                if handlers::is_live(self, &e.kind) {
                    handlers::dispatch(self, &e.kind);
                }
            }
            debug_assert!(self.pools.check_conservation());
            self.schedule(policy);
            return true;
        }
        false
    }

    /// Assemble the end-of-run report for the state so far — what `run`
    /// returns after the last step. Public so a restored-and-finished
    /// stepped run can produce the same report `run` would have.
    pub fn final_report(&self) -> SimReport {
        self.report()
    }

    /// Terminal-state bookkeeping shared by the finish/cancel/kill
    /// handlers of a *started* job: update its provisional record in
    /// place and count it.
    pub(crate) fn settle(&mut self, id: JobId, state: JobState, outcome: JobOutcome) {
        self.states[id] = state;
        self.finished += 1;
        // Cancel the job's pending natural-end event by handle: when the
        // settle was *triggered by* that event the handle is stale and
        // the cancel is a detected no-op; when something else ended the
        // job first (a cancel, an injected finish) the event is removed
        // outright instead of lingering as a tombstone.
        if let Some(handle) = self.end_event[id].take() {
            self.events.cancel(handle);
        }
        let now = self.now;
        let rec = self
            .records
            .iter_mut()
            .rev()
            .find(|r| r.id == id)
            .expect("settle: started jobs always have a provisional record");
        rec.end = now;
        rec.outcome = outcome;
        self.release_successors(id);
    }

    /// Terminal bookkeeping for a job that never started (cancelled while
    /// waiting in the queue or while dependency-held): record the pure
    /// queue wait and release its successors.
    pub(crate) fn cancel_nonstarted(&mut self, id: JobId) {
        self.states[id] = JobState::Cancelled;
        self.finished += 1;
        let now = self.now;
        self.records.push(JobRecord {
            id,
            submit: self.slab.submit(id),
            start: now,
            end: now,
            backfilled: false,
            outcome: JobOutcome::Cancelled,
        });
        self.release_successors(id);
    }

    fn start_job(&mut self, id: JobId, backfilled: bool) {
        debug_assert_eq!(self.pending_preds[id], 0, "held job {id} must not start");
        let (runtime, estimate) = (self.slab.runtime(id), self.slab.estimate(id));
        self.pools.allocate_parts(id, self.slab.demands(id), self.now, estimate, runtime);
        self.states[id] = JobState::Running;
        self.queue.remove(id);
        // The job's natural end: a walltime kill at the estimate for
        // enforced overrunners, a finish at the runtime otherwise.
        let (end_kind, end_after) = if self.params.enforce_walltime && runtime > estimate {
            (EventKind::WalltimeKill(id), estimate)
        } else {
            (EventKind::Finish(id), runtime)
        };
        let handle = match self.replay_cancels[id] {
            // Wait-aware cancel replay: the start time is now known, so
            // the deferred cancel becomes a concrete event. A recorded
            // lifetime at or before the natural end *is* the job's fate
            // (in an SWF replay the two coincide exactly — the runtime
            // column records the observed lifetime), so the cancel
            // replaces the natural-end event rather than racing it.
            Some(delay) if delay <= end_after => {
                self.events.push(self.now + delay, EventKind::Cancel(id))
            }
            _ => self.events.push(self.now + end_after, end_kind),
        };
        self.end_event[id] = Some(handle);
        self.records.push(JobRecord {
            id,
            submit: self.slab.submit(id),
            start: self.now,
            end: self.now + runtime, // provisional; confirmed at settle
            backfilled,
            outcome: JobOutcome::Finished, // provisional
        });
        debug_assert!(self.pools.check_conservation());
    }

    /// One scheduling instance: selection loop, then reservation +
    /// backfilling.
    fn schedule(&mut self, policy: &mut dyn Policy) {
        if self.queue.is_empty() {
            return;
        }
        self.instances += 1;
        let mut reserved: Option<JobId> = None;
        loop {
            if self.queue.is_empty() {
                break;
            }
            let selection = {
                let view = self.view();
                policy.select(&view)
            };
            self.decisions += 1;
            let window = self.queue.window(self.params.window);
            let idx = match selection {
                Some(i) if i < window.len() => i,
                _ => break,
            };
            let jid = window[idx];
            let fits = self.pools.fits(self.slab.demands(jid));
            if fits {
                self.start_job(jid, false);
                let fb = StepFeedback {
                    decision: self.decisions - 1,
                    action: idx,
                    job: jid,
                    started: true,
                    measurement: self.pools.measurement(),
                    now: self.now,
                };
                policy.feedback(&fb);
            } else {
                let fb = StepFeedback {
                    decision: self.decisions - 1,
                    action: idx,
                    job: jid,
                    started: false,
                    measurement: self.pools.measurement(),
                    now: self.now,
                };
                policy.feedback(&fb);
                reserved = Some(jid);
                break;
            }
        }
        if self.params.backfill {
            if let Some(res_id) = reserved {
                self.backfill_pass(res_id);
            }
        }
    }

    /// EASY backfilling behind the reservation for `res_id`.
    ///
    /// When capacity is drained below the reserved job's demand no shadow
    /// time exists ([`compute_reservation`] returns `None`). The
    /// reservation then waits for a capacity-return event; if one is
    /// already scheduled, its time acts as a conservative shadow
    /// (candidates must be estimated to finish before it, so the return
    /// finds the machine as free as it is now). Under a *permanent*
    /// shrink no future could unblock the reserved job, so any fitting
    /// candidate may start — stalling the whole queue behind an
    /// infeasible job would be worse.
    fn backfill_pass(&mut self, res_id: JobId) {
        loop {
            let plan =
                compute_reservation(&self.pools, self.slab.demands(res_id), self.now);
            let gate = match &plan {
                Some(_) => None,
                None => self.earliest_capacity_return(),
            };
            let candidate = self
                .queue
                .all()
                .iter()
                .copied()
                .filter(|&j| j != res_id)
                .find(|&j| match (&plan, gate) {
                    (Some(p), _) => can_backfill(
                        p,
                        &self.pools,
                        self.slab.demands(j),
                        self.slab.estimate(j),
                        self.now,
                    ),
                    (None, Some(t_return)) => {
                        self.pools.fits(self.slab.demands(j))
                            && self.now + self.slab.estimate(j) <= t_return
                    }
                    (None, None) => self.pools.fits(self.slab.demands(j)),
                });
            match candidate {
                Some(j) => self.start_job(j, true),
                None => break,
            }
        }
    }

    /// Earliest pending capacity-*increase* event, if any — the time a
    /// drained machine is next expected to grow. O(1): injected returns
    /// are indexed in `cap_returns` and consumed in fire order.
    fn earliest_capacity_return(&self) -> Option<SimTime> {
        self.cap_returns.get(self.cap_cursor).copied()
    }

    /// The reservation plan the current instance would compute for a job
    /// (diagnostics; `None` while capacity is drained below its demand).
    pub fn reservation_for(&self, id: JobId) -> Option<ReservationPlan> {
        compute_reservation(&self.pools, self.slab.demands(id), self.now)
    }

    fn view(&self) -> SchedulerView<'_> {
        let window = self
            .queue
            .window(self.params.window)
            .iter()
            .map(|&id| JobView {
                job: &self.jobs[id],
                queued: self.now.saturating_sub(self.jobs[id].submit),
            })
            .collect();
        SchedulerView {
            now: self.now,
            instance: self.instances,
            decision: self.decisions,
            window,
            pools: &self.pools,
            config: &self.config,
            queued: self.queue.all(),
            jobs: &self.jobs,
        }
    }

    fn report(&self) -> SimReport {
        SimReport::assemble(
            self.config.resources.iter().map(|r| r.name.clone()).collect(),
            self.records
                .iter()
                .filter(|r| self.states[r.id].is_terminal())
                .copied()
                .collect(),
            &self.collector,
            &self.config.capacities(),
            self.now,
            self.decisions,
            self.instances,
            self.counts.clone(),
            self.jobs.len() - self.finished,
            self.params.power,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::HeadOfQueue;

    fn sys(nodes: u64, bb: u64) -> SystemConfig {
        SystemConfig::two_resource(nodes, bb)
    }

    fn run_fcfs(config: SystemConfig, jobs: Vec<Job>) -> SimReport {
        let mut sim = Simulator::new(config, jobs, SimParams::default()).unwrap();
        sim.run(&mut HeadOfQueue)
    }

    #[test]
    fn single_job_executes_exactly() {
        let report = run_fcfs(sys(4, 4), vec![Job::new(0, 10, 100, 120, vec![2, 1])]);
        assert_eq!(report.jobs_completed, 1);
        let rec = &report.records[0];
        assert_eq!(rec.start, 10);
        assert_eq!(rec.end, 110, "runs for actual runtime, not estimate");
        assert_eq!(report.makespan, 100);
        assert_eq!(rec.outcome, JobOutcome::Finished);
        assert!(report.all_jobs_accounted(1));
    }

    #[test]
    fn serial_execution_when_jobs_conflict() {
        // Both jobs need all nodes: second starts when first finishes.
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![4, 0]),
            Job::new(1, 0, 50, 50, vec![4, 0]),
        ];
        let report = run_fcfs(sys(4, 4), jobs);
        assert_eq!(report.records[0].start, 0);
        assert_eq!(report.records[1].start, 100);
        assert_eq!(report.end_time, 150);
    }

    #[test]
    fn parallel_execution_when_resources_allow() {
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 0, 100, 100, vec![2, 0]),
        ];
        let report = run_fcfs(sys(4, 4), jobs);
        assert_eq!(report.records[0].start, 0);
        assert_eq!(report.records[1].start, 0);
        assert_eq!(report.makespan, 100);
    }

    #[test]
    fn burst_buffer_contention_serializes() {
        // Plenty of nodes, but both jobs want the whole burst buffer.
        let jobs = vec![
            Job::new(0, 0, 60, 60, vec![1, 4]),
            Job::new(1, 0, 60, 60, vec![1, 4]),
        ];
        let report = run_fcfs(sys(16, 4), jobs);
        assert_eq!(report.records[1].start, 60, "BB is the bottleneck");
    }

    #[test]
    fn easy_backfill_lets_short_job_skip() {
        // t=0: J0 takes all 4 nodes for 100 s.
        // J1 (4 nodes) must wait -> reserved at shadow=100.
        // J2 (1 node, 50 s) fits now and ends before the shadow: backfills.
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![4, 0]),
            Job::new(1, 1, 100, 100, vec![4, 0]),
            Job::new(2, 2, 50, 50, vec![1, 0]),
        ];
        // 5 nodes: J0 leaves 1 free.
        let report = run_fcfs(sys(5, 4), jobs);
        let rec2 = report.records.iter().find(|r| r.id == 2).unwrap();
        assert_eq!(rec2.start, 2, "short job backfills immediately on arrival");
        assert!(rec2.backfilled);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.start, 100, "reservation honored, not delayed");
        assert_eq!(report.backfilled_jobs, 1);
    }

    #[test]
    fn backfill_never_delays_reservation() {
        // J2 would delay J1 if allowed to backfill (runs 500 s on the one
        // free node while J1 needs all 5 at t=100).
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![4, 0]),
            Job::new(1, 1, 100, 100, vec![5, 0]),
            Job::new(2, 2, 500, 500, vec![1, 0]),
        ];
        let report = run_fcfs(sys(5, 4), jobs);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.start, 100, "reservation must not be delayed");
        let rec2 = report.records.iter().find(|r| r.id == 2).unwrap();
        assert!(rec2.start >= 100, "long job waits behind the reservation");
    }

    #[test]
    fn backfill_disabled_blocks_short_jobs() {
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![4, 0]),
            Job::new(1, 1, 100, 100, vec![4, 0]),
            Job::new(2, 2, 50, 50, vec![1, 0]),
        ];
        let mut sim = Simulator::new(sys(5, 4), jobs, SimParams::new(10, false)).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let rec2 = report.records.iter().find(|r| r.id == 2).unwrap();
        assert!(rec2.start >= 100, "without backfill the short job waits");
        assert_eq!(report.backfilled_jobs, 0);
    }

    #[test]
    fn all_jobs_complete_and_ids_preserved() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| Job::new(i, (i as SimTime) * 10, 30 + i as SimTime, 60, vec![1 + (i as u64 % 3), i as u64 % 2]))
            .collect();
        let report = run_fcfs(sys(6, 6), jobs);
        assert_eq!(report.jobs_completed, 20);
        for (i, rec) in report.records.iter().enumerate() {
            assert_eq!(rec.id, i);
            assert!(rec.start >= rec.submit);
            assert!(rec.end > rec.start);
        }
    }

    #[test]
    fn utilization_exact_for_simple_case() {
        // One job occupying half the nodes for the whole makespan.
        let report = run_fcfs(sys(4, 4), vec![Job::new(0, 0, 100, 100, vec![2, 0])]);
        assert!((report.resource_utilization[0] - 0.5).abs() < 1e-9);
        assert_eq!(report.resource_utilization[1], 0.0);
    }

    #[test]
    fn rejects_infeasible_job() {
        let err = Simulator::new(
            sys(4, 4),
            vec![Job::new(0, 0, 10, 10, vec![5, 0])],
            SimParams::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidJob(_)));
    }

    #[test]
    fn rejects_non_dense_ids() {
        let err = Simulator::new(
            sys(4, 4),
            vec![Job::new(3, 0, 10, 10, vec![1, 0])],
            SimParams::default(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::NonDenseIds(3));
    }

    #[test]
    fn rejects_invalid_injected_events() {
        let mut sim = Simulator::new(
            sys(4, 4),
            vec![Job::new(0, 0, 10, 10, vec![1, 0])],
            SimParams::default(),
        )
        .unwrap();
        assert!(matches!(
            sim.inject(InjectedEvent::new(5, EventKind::Cancel(7))),
            Err(SimError::InvalidEvent(_))
        ));
        assert!(matches!(
            sim.inject(InjectedEvent::new(5, EventKind::CapacityChange { resource: 9, delta: -1 })),
            Err(SimError::InvalidEvent(_))
        ));
        sim.inject(InjectedEvent::new(5, EventKind::Cancel(0))).unwrap();
    }

    #[test]
    fn window_limits_policy_choice() {
        // Policy that always selects the LAST window entry; with window=1
        // it behaves exactly like FCFS.
        struct LastInWindow;
        impl Policy for LastInWindow {
            fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
                if view.window.is_empty() {
                    None
                } else {
                    Some(view.window.len() - 1)
                }
            }
        }
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 0, 100, 100, vec![2, 0]),
        ];
        let mut sim = Simulator::new(sys(2, 2), jobs.clone(), SimParams::new(1, true)).unwrap();
        let report = sim.run(&mut LastInWindow);
        assert_eq!(report.records[0].start, 0, "window=1 forces FCFS order");
        assert_eq!(report.records[1].start, 100);
    }

    #[test]
    fn policy_receives_feedback_for_each_decision() {
        #[derive(Default)]
        struct Counting {
            feedbacks: usize,
            starts: usize,
            reserves: usize,
            episode_ends: usize,
        }
        impl Policy for Counting {
            fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
                (!view.window.is_empty()).then_some(0)
            }
            fn feedback(&mut self, fb: &StepFeedback) {
                self.feedbacks += 1;
                if fb.started {
                    self.starts += 1;
                } else {
                    self.reserves += 1;
                }
            }
            fn episode_end(&mut self, _r: &SimReport) {
                self.episode_ends += 1;
            }
        }
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 0, 100, 100, vec![2, 0]), // forces a reservation
        ];
        let mut p = Counting::default();
        let mut sim = Simulator::new(sys(2, 2), jobs, SimParams::default()).unwrap();
        sim.run(&mut p);
        assert_eq!(p.starts, 2);
        assert!(p.reserves >= 1, "the conflicting job must be reserved");
        assert_eq!(p.episode_ends, 1);
        assert_eq!(p.feedbacks, p.starts + p.reserves);
    }

    #[test]
    fn simultaneous_finish_and_submit_processed_in_order() {
        // J1 arrives exactly when J0 finishes: must start immediately.
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 100, 10, 10, vec![2, 0]),
        ];
        let report = run_fcfs(sys(2, 2), jobs);
        assert_eq!(report.records[1].start, 100);
    }

    #[test]
    fn overstayed_estimate_handled() {
        // Job 0's estimate is shorter than runtime (user under-estimate;
        // Job::new clamps estimate >= runtime, so craft via raw struct).
        let j0 = Job { id: 0, submit: 0, runtime: 100, estimate: 50, demands: vec![2, 0] };
        let j1 = Job::new(1, 10, 10, 10, vec![2, 0]);
        let report = run_fcfs(sys(2, 2), vec![j0, j1]);
        // J1 reserved with shadow=50 (estimate), but J0 actually runs to 100.
        // At t=100 the finish event retriggers scheduling; J1 starts then.
        assert_eq!(report.records[1].start, 100);
        assert_eq!(report.jobs_completed, 2);
    }

    #[test]
    fn walltime_enforcement_kills_overrunners() {
        // Same trace as `overstayed_estimate_handled`, but with the
        // enforcer on: J0 dies at its estimate (t=50) and J1 starts then.
        let j0 = Job { id: 0, submit: 0, runtime: 100, estimate: 50, demands: vec![2, 0] };
        let j1 = Job::new(1, 10, 10, 10, vec![2, 0]);
        let mut sim = Simulator::new(
            sys(2, 2),
            vec![j0, j1],
            SimParams { enforce_walltime: true, ..SimParams::default() },
        )
        .unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let rec0 = report.records.iter().find(|r| r.id == 0).unwrap();
        assert_eq!(rec0.outcome, JobOutcome::Killed);
        assert_eq!(rec0.end, 50, "killed exactly at start + estimate");
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.start, 50, "killed job's resources free immediately");
        assert_eq!(report.jobs_killed, 1);
        assert_eq!(report.jobs_completed, 1);
        assert!(report.all_jobs_accounted(2));
    }

    #[test]
    fn cancel_dequeues_waiting_job() {
        // J1 can never start while J0 runs; cancelling it at t=30 frees
        // the queue and the run ends at J0's finish.
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 10, 50, 50, vec![2, 0]),
        ];
        let mut sim = Simulator::new(sys(2, 2), jobs, SimParams::default()).unwrap();
        sim.inject(InjectedEvent::new(30, EventKind::Cancel(1))).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.outcome, JobOutcome::Cancelled);
        assert_eq!(rec1.start, 30, "queued cancel records the cancel time");
        assert_eq!(rec1.end, 30);
        assert_eq!(report.end_time, 100);
        assert_eq!(report.jobs_cancelled, 1);
        assert!(report.all_jobs_accounted(2));
    }

    #[test]
    fn cancel_releases_running_job() {
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 10, 50, 50, vec![2, 0]),
        ];
        let mut sim = Simulator::new(sys(2, 2), jobs, SimParams::default()).unwrap();
        sim.inject(InjectedEvent::new(40, EventKind::Cancel(0))).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let rec0 = report.records.iter().find(|r| r.id == 0).unwrap();
        assert_eq!(rec0.outcome, JobOutcome::Cancelled);
        assert_eq!(rec0.end, 40);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.start, 40, "freed resources start the next job at once");
        assert_eq!(rec1.outcome, JobOutcome::Finished);
        assert!(report.all_jobs_accounted(2));
    }

    #[test]
    fn cancel_after_finish_is_noop() {
        let jobs = vec![Job::new(0, 0, 10, 10, vec![1, 0])];
        let mut sim = Simulator::new(sys(2, 2), jobs, SimParams::default()).unwrap();
        sim.inject(InjectedEvent::new(50, EventKind::Cancel(0))).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        assert_eq!(report.jobs_completed, 1);
        assert_eq!(report.jobs_cancelled, 0);
        assert_eq!(report.records[0].outcome, JobOutcome::Finished);
    }

    #[test]
    fn capacity_drain_and_return_roundtrip() {
        // One job holds 2 of 4 nodes. Drain 2 at t=10 (both free), return
        // them at t=50. The second job (4 nodes) can only start after the
        // return AND the first job's finish.
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 5, 10, 10, vec![4, 0]),
        ];
        let mut sim = Simulator::new(sys(4, 4), jobs, SimParams::default()).unwrap();
        sim.inject_all(&[
            InjectedEvent::new(10, EventKind::CapacityChange { resource: 0, delta: -2 }),
            InjectedEvent::new(50, EventKind::CapacityChange { resource: 0, delta: 2 }),
        ])
        .unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.start, 100, "starts when J0 frees the last 2 nodes");
        assert!(report.all_jobs_accounted(2));
        // 2 units offline for 40 s.
        assert!((report.capacity_lost_unit_seconds[0] - 80.0).abs() < 1e-9);
        assert_eq!(
            report.event_counts.count(EventKind::CapacityChange { resource: 0, delta: 0 }),
            2
        );
    }

    #[test]
    fn drain_never_interrupts_running_jobs() {
        // Drain the whole machine while a job runs: the job completes,
        // capacity hits zero only as it releases, and returns revive it.
        let jobs = vec![
            Job::new(0, 0, 50, 50, vec![4, 0]),
            Job::new(1, 10, 10, 10, vec![1, 0]),
        ];
        let mut sim = Simulator::new(sys(4, 4), jobs, SimParams::default()).unwrap();
        sim.inject_all(&[
            InjectedEvent::new(20, EventKind::CapacityChange { resource: 0, delta: -4 }),
            InjectedEvent::new(80, EventKind::CapacityChange { resource: 0, delta: 4 }),
        ])
        .unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let rec0 = report.records.iter().find(|r| r.id == 0).unwrap();
        assert_eq!(rec0.outcome, JobOutcome::Finished);
        assert_eq!(rec0.end, 50, "drain waited for the release");
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.start, 80, "queued job waits out the total drain");
        assert!(report.all_jobs_accounted(2));
    }

    #[test]
    fn tick_triggers_scheduling_and_terminates() {
        let jobs = vec![Job::new(0, 0, 100, 100, vec![1, 0])];
        let mut sim = Simulator::new(
            sys(2, 2),
            jobs,
            SimParams { tick: Some(10), ..SimParams::default() },
        )
        .unwrap();
        let report = sim.run(&mut HeadOfQueue);
        assert_eq!(report.jobs_completed, 1);
        let ticks = report.event_counts.count(EventKind::Tick);
        assert!(ticks >= 9, "ticks cover the 100 s run: {ticks}");
        assert!(ticks <= 12, "ticking stops once the system drains: {ticks}");
    }

    #[test]
    fn unplanned_backfill_cannot_outlive_a_scheduled_capacity_return() {
        // Drain leaves the reserved job (28 nodes) unplannable; the
        // return at t=200 would let it start. A long candidate that fits
        // now must NOT backfill past the return; a short one may.
        let jobs = vec![
            Job::new(0, 150, 1000, 1000, vec![28, 0]), // reserved, unplannable
            Job::new(1, 151, 500_000, 500_000, vec![20, 0]), // would starve J0
            Job::new(2, 152, 30, 30, vec![20, 0]),     // finishes before the return
        ];
        let mut sim = Simulator::new(sys(32, 8), jobs, SimParams::default()).unwrap();
        sim.inject_all(&[
            InjectedEvent::new(100, EventKind::CapacityChange { resource: 0, delta: -5 }),
            InjectedEvent::new(200, EventKind::CapacityChange { resource: 0, delta: 5 }),
        ])
        .unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let rec0 = report.records.iter().find(|r| r.id == 0).unwrap();
        assert_eq!(rec0.start, 200, "reserved job starts at the capacity return");
        let rec2 = report.records.iter().find(|r| r.id == 2).unwrap();
        assert_eq!(rec2.start, 152, "short candidate backfills during the drain");
        assert!(rec2.backfilled);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert!(rec1.start >= 200, "long candidate must wait out the drain window");
        assert!(report.all_jobs_accounted(3));
    }

    #[test]
    fn injected_extra_tick_chain_still_terminates() {
        // Regression: two tick chains (the params one + an injected one)
        // must not count each other as pending work and re-arm forever.
        let jobs = vec![Job::new(0, 0, 100, 100, vec![1, 0])];
        let mut sim = Simulator::new(
            sys(2, 2),
            jobs,
            SimParams { tick: Some(10), ..SimParams::default() },
        )
        .unwrap();
        sim.inject(InjectedEvent::new(5, EventKind::Tick)).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        assert_eq!(report.jobs_completed, 1);
        let ticks = report.event_counts.count(EventKind::Tick);
        assert!(ticks <= 25, "both chains stop at drain time: {ticks}");
    }

    #[test]
    fn ticks_anchor_to_the_first_submit() {
        // A trace starting late must not have its start_time (and thus
        // makespan and utilization) dragged earlier by the tick chain.
        let jobs = vec![Job::new(0, 80_000, 100, 100, vec![1, 0])];
        let mut sim = Simulator::new(
            sys(2, 2),
            jobs,
            SimParams { tick: Some(600), ..SimParams::default() },
        )
        .unwrap();
        let report = sim.run(&mut HeadOfQueue);
        assert_eq!(report.start_time, 80_000, "no pre-trace ticks");
        assert_eq!(report.makespan, 100);
        assert!(report.event_counts.count(EventKind::Tick) <= 2);
    }

    #[test]
    fn cancel_at_submit_instant_cancels_the_job() {
        // Submit and cancel at the same timestamp: the submit enqueues
        // first (rank order), then the cancel removes the job.
        let jobs = vec![
            Job::new(0, 50, 100, 100, vec![2, 0]),
            Job::new(1, 50, 10, 10, vec![1, 0]),
        ];
        let mut sim = Simulator::new(sys(2, 2), jobs, SimParams::default()).unwrap();
        sim.inject(InjectedEvent::new(50, EventKind::Cancel(0))).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        assert_eq!(report.jobs_cancelled, 1);
        let rec0 = report.records.iter().find(|r| r.id == 0).unwrap();
        assert_eq!(rec0.outcome, JobOutcome::Cancelled);
        assert_eq!((rec0.start, rec0.end), (50, 50));
        assert!(report.all_jobs_accounted(2));
    }

    #[test]
    fn three_resource_power_budget_enforced() {
        // 3 jobs, each drawing 4 kW of a 10 kW budget: only two co-run
        // even though nodes and BB are plentiful.
        let config = SystemConfig::three_resource(100, 100, 10);
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![10, 5, 4]),
            Job::new(1, 0, 100, 100, vec![10, 5, 4]),
            Job::new(2, 0, 100, 100, vec![10, 5, 4]),
        ];
        let mut sim = Simulator::new(config, jobs, SimParams::default()).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let starts: Vec<SimTime> =
            report.records.iter().map(|r| r.start).collect();
        assert_eq!(starts[0], 0);
        assert_eq!(starts[1], 0);
        assert_eq!(starts[2], 100, "third job must wait for the power budget");
        // Power utilization: 8/10 for first 100 s, 4/10 for next 100 s.
        assert!((report.resource_utilization[2] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn backfill_respects_power_dimension() {
        // Reservation on power: the backfill candidate fits nodes/BB but
        // would consume power needed by the reserved job.
        let config = SystemConfig::three_resource(100, 100, 10);
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![10, 0, 8]), // running, 8 kW
            Job::new(1, 1, 50, 50, vec![10, 0, 6]),   // reserved (needs 6)
            Job::new(2, 2, 500, 500, vec![1, 0, 2]),  // long candidate, 2 kW
        ];
        let mut sim = Simulator::new(config, jobs, SimParams::default()).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.start, 100, "reservation honored on the power axis");
        let rec2 = report.records.iter().find(|r| r.id == 2).unwrap();
        // extra_power = projected_free(100)=10 minus reserved 6 = 4 >= 2:
        // the long candidate may backfill without delaying the reservation.
        assert_eq!(rec2.start, 2);
        assert!(rec2.backfilled);
    }

    #[test]
    fn power_cap_ramp_throttles_admission() {
        // A power-cap drain on the third resource: with the budget halved
        // the second 4 kW job has to wait for the ramp back up.
        let config = SystemConfig::three_resource(100, 100, 10);
        let jobs = vec![
            Job::new(0, 0, 200, 200, vec![10, 0, 4]),
            Job::new(1, 20, 100, 100, vec![10, 0, 4]),
        ];
        let mut sim = Simulator::new(config, jobs, SimParams::default()).unwrap();
        sim.inject_all(&[
            InjectedEvent::new(10, EventKind::CapacityChange { resource: 2, delta: -5 }),
            InjectedEvent::new(90, EventKind::CapacityChange { resource: 2, delta: 5 }),
        ])
        .unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.start, 90, "admission waits for the power budget to return");
        assert!(report.all_jobs_accounted(2));
    }

    #[test]
    fn reset_reproduces_identical_run() {
        let jobs: Vec<Job> = (0..12)
            .map(|i| Job::new(i, (i as SimTime) * 20, 40 + i as SimTime, 90, vec![1 + (i as u64 % 3), 0]))
            .collect();
        let mut sim = Simulator::new(sys(4, 4), jobs, SimParams::default()).unwrap();
        let first = sim.run(&mut HeadOfQueue);
        sim.reset();
        let second = sim.run(&mut HeadOfQueue);
        assert_eq!(first, second, "a reset simulator replays bit-identically");
    }

    #[test]
    fn reset_clears_injected_events_and_relative_cancels() {
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 10, 50, 50, vec![2, 0]),
        ];
        let mut sim = Simulator::new(sys(2, 2), jobs, SimParams::default()).unwrap();
        sim.inject(InjectedEvent::new(30, EventKind::Cancel(1))).unwrap();
        sim.schedule_cancel_after_start(0, 40).unwrap();
        let disrupted = sim.run(&mut HeadOfQueue);
        assert_eq!(disrupted.jobs_cancelled, 2);
        sim.reset();
        let clean = sim.run(&mut HeadOfQueue);
        assert_eq!(clean.jobs_cancelled, 0, "reset drops disruption state");
        assert_eq!(clean.jobs_completed, 2);
    }

    #[test]
    fn load_trace_swaps_jobs_and_validates() {
        let mut sim = Simulator::new(
            sys(4, 4),
            vec![Job::new(0, 0, 10, 10, vec![1, 0])],
            SimParams::default(),
        )
        .unwrap();
        assert_eq!(sim.run(&mut HeadOfQueue).jobs_completed, 1);
        // Infeasible replacement is rejected and the old trace survives.
        assert!(matches!(
            sim.load_trace(vec![Job::new(0, 0, 10, 10, vec![9, 0])]),
            Err(SimError::InvalidJob(_))
        ));
        let replacement = vec![
            Job::new(0, 0, 30, 30, vec![2, 0]),
            Job::new(1, 5, 30, 30, vec![2, 1]),
        ];
        sim.load_trace(replacement.clone()).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        assert_eq!(report.jobs_completed, 2);
        // Equivalent to building fresh.
        let mut fresh = Simulator::new(sys(4, 4), replacement, SimParams::default()).unwrap();
        assert_eq!(report, fresh.run(&mut HeadOfQueue));
    }

    #[test]
    fn relative_cancel_fires_at_simulated_start_plus_delay() {
        // J1 waits behind J0 (starts at t=100, not its submit t=10); the
        // recorded 30 s lifetime must count from the *simulated* start.
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 10, 50, 50, vec![2, 0]),
        ];
        let mut sim = Simulator::new(sys(2, 2), jobs, SimParams::default()).unwrap();
        sim.schedule_cancel_after_start(1, 30).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.outcome, JobOutcome::Cancelled);
        assert_eq!(rec1.start, 100);
        assert_eq!(rec1.end, 130, "cancel at simulated start + recorded lifetime");
        assert!(report.all_jobs_accounted(2));
    }

    #[test]
    fn relative_cancel_after_natural_finish_is_noop() {
        // Recorded lifetime (50) exceeds the simulated runtime (10): the
        // job finishes first and the late cancel tombstones away.
        let jobs = vec![Job::new(0, 0, 10, 10, vec![1, 0])];
        let mut sim = Simulator::new(sys(2, 2), jobs, SimParams::default()).unwrap();
        sim.schedule_cancel_after_start(0, 50).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        assert_eq!(report.jobs_completed, 1);
        assert_eq!(report.jobs_cancelled, 0);
        assert_eq!(report.records[0].outcome, JobOutcome::Finished);
    }

    #[test]
    fn relative_cancel_for_never_started_job_reports_unfinished() {
        // J1 demands all four nodes but a permanent drain removes two
        // before it could ever start: it waits past the horizon, so its
        // deferred cancel never becomes a concrete event.
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![1, 0]),
            Job::new(1, 10, 50, 50, vec![4, 0]),
        ];
        let mut sim = Simulator::new(sys(4, 4), jobs, SimParams::default()).unwrap();
        sim.inject(InjectedEvent::new(5, EventKind::CapacityChange { resource: 0, delta: -2 }))
            .unwrap();
        sim.schedule_cancel_after_start(1, 20).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        assert_eq!(report.jobs_completed, 1);
        assert_eq!(report.jobs_cancelled, 0, "deferred cancel never armed");
        assert_eq!(report.jobs_unfinished, 1, "never-started job stays waiting");
    }

    #[test]
    fn relative_cancel_rejects_unknown_job() {
        let mut sim = Simulator::new(
            sys(2, 2),
            vec![Job::new(0, 0, 10, 10, vec![1, 0])],
            SimParams::default(),
        )
        .unwrap();
        assert!(matches!(
            sim.schedule_cancel_after_start(3, 10),
            Err(SimError::InvalidEvent(_))
        ));
    }

    #[test]
    fn decisions_and_instances_counted() {
        let jobs = vec![Job::new(0, 0, 10, 10, vec![1, 0])];
        let report = run_fcfs(sys(2, 2), jobs);
        assert!(report.decisions >= 1);
        assert!(report.instances >= 1);
        assert_eq!(report.event_counts.count(EventKind::Submit(0)), 1);
        assert_eq!(report.event_counts.count(EventKind::Finish(0)), 1);
    }

    #[test]
    fn dag_chain_forces_serial_order_despite_free_resources() {
        // All three fit simultaneously, but the chain 0 -> 1 -> 2 gates
        // each start on its predecessor's completion.
        let jobs = vec![
            Job::new(0, 0, 10, 10, vec![1, 0]),
            Job::new(1, 0, 20, 20, vec![1, 0]),
            Job::new(2, 0, 30, 30, vec![1, 0]),
        ];
        let mut sim = Simulator::new(sys(4, 4), jobs, SimParams::default()).unwrap();
        sim.set_dependencies(vec![vec![], vec![0], vec![1]]).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        assert_eq!(report.records[0].start, 0);
        assert_eq!(report.records[1].start, 10, "released by pred finish");
        assert_eq!(report.records[2].start, 30);
        assert_eq!(report.end_time, 60);
        assert!(report.all_jobs_accounted(3));
    }

    #[test]
    fn dag_fanout_runs_parallel_and_join_waits_for_all() {
        // 0 -> {1, 2} -> 3: the fan-out pair runs concurrently once the
        // root finishes, and the join waits for the *last* predecessor.
        let jobs = vec![
            Job::new(0, 0, 10, 10, vec![4, 0]),
            Job::new(1, 0, 20, 20, vec![2, 0]),
            Job::new(2, 0, 20, 20, vec![2, 0]),
            Job::new(3, 0, 5, 5, vec![4, 0]),
        ];
        let mut sim = Simulator::new(sys(4, 4), jobs, SimParams::default()).unwrap();
        sim.set_dependencies(vec![vec![], vec![0], vec![0], vec![1, 2]]).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        assert_eq!(report.records[1].start, 10);
        assert_eq!(report.records[2].start, 10, "siblings start together");
        assert_eq!(report.records[3].start, 30, "join gated on slowest pred");
        assert_eq!(report.end_time, 35);
    }

    #[test]
    fn dag_no_task_starts_before_predecessors_terminal() {
        // Conservation check over a wider graph: every record's start is
        // >= every predecessor's end.
        let jobs: Vec<Job> = (0..8)
            .map(|i| Job::new(i, 0, 7 + (i as u64) * 3, 40, vec![1 + (i as u64) % 2, 0]))
            .collect();
        let deps = vec![
            vec![],
            vec![0],
            vec![0],
            vec![1],
            vec![1, 2],
            vec![2],
            vec![3, 4],
            vec![4, 5],
        ];
        let mut sim = Simulator::new(sys(4, 4), jobs, SimParams::default()).unwrap();
        sim.set_dependencies(deps.clone()).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        assert!(report.all_jobs_accounted(8));
        let end_of = |id: usize| report.records.iter().find(|r| r.id == id).unwrap().end;
        for rec in &report.records {
            for &p in &deps[rec.id] {
                assert!(
                    rec.start >= end_of(p),
                    "job {} started at {} before pred {} ended at {}",
                    rec.id,
                    rec.start,
                    p,
                    end_of(p)
                );
            }
        }
    }

    #[test]
    fn dag_cancelled_predecessor_releases_successor() {
        // Any terminal predecessor state releases: a cancelled stage must
        // not deadlock its downstream tasks.
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 0, 10, 10, vec![2, 0]),
        ];
        let mut sim = Simulator::new(sys(2, 2), jobs, SimParams::default()).unwrap();
        sim.set_dependencies(vec![vec![], vec![0]]).unwrap();
        sim.inject(InjectedEvent::new(30, EventKind::Cancel(0))).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        assert_eq!(report.jobs_cancelled, 1);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.start, 30, "released the instant the pred cancels");
        assert_eq!(rec1.outcome, JobOutcome::Finished);
    }

    #[test]
    fn dag_cancel_of_held_job_settles_it() {
        // Job 1 is dependency-held (arrived, never queued) when its
        // cancel lands: it must settle as cancelled, not linger forever.
        let jobs = vec![
            Job::new(0, 0, 100, 100, vec![2, 0]),
            Job::new(1, 0, 10, 10, vec![2, 0]),
        ];
        let mut sim = Simulator::new(sys(2, 2), jobs, SimParams::default()).unwrap();
        sim.set_dependencies(vec![vec![], vec![0]]).unwrap();
        sim.inject(InjectedEvent::new(50, EventKind::Cancel(1))).unwrap();
        let report = sim.run(&mut HeadOfQueue);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.outcome, JobOutcome::Cancelled);
        assert_eq!(rec1.start, 50);
        assert_eq!(rec1.end, 50, "held job settles with zero runtime");
        assert!(report.all_jobs_accounted(2));
    }

    #[test]
    fn dag_rejects_malformed_graphs() {
        let mk = || {
            Simulator::new(
                sys(2, 2),
                vec![
                    Job::new(0, 0, 10, 10, vec![1, 0]),
                    Job::new(1, 0, 10, 10, vec![1, 0]),
                ],
                SimParams::default(),
            )
            .unwrap()
        };
        // Wrong length.
        assert!(matches!(mk().set_dependencies(vec![vec![]]), Err(SimError::InvalidJob(_))));
        // Out-of-range predecessor.
        assert!(matches!(
            mk().set_dependencies(vec![vec![], vec![7]]),
            Err(SimError::InvalidJob(_))
        ));
        // Self-loop.
        assert!(matches!(
            mk().set_dependencies(vec![vec![0], vec![]]),
            Err(SimError::InvalidJob(_))
        ));
        // Two-cycle.
        assert!(matches!(
            mk().set_dependencies(vec![vec![1], vec![0]]),
            Err(SimError::InvalidJob(_))
        ));
    }

    #[test]
    fn dag_survives_reset_bit_identically() {
        let jobs = vec![
            Job::new(0, 0, 10, 10, vec![2, 0]),
            Job::new(1, 0, 20, 20, vec![2, 0]),
            Job::new(2, 0, 5, 5, vec![2, 0]),
        ];
        let mut sim = Simulator::new(sys(2, 2), jobs, SimParams::default()).unwrap();
        sim.set_dependencies(vec![vec![], vec![0], vec![0, 1]]).unwrap();
        let first = sim.run(&mut HeadOfQueue);
        sim.reset();
        let second = sim.run(&mut HeadOfQueue);
        assert_eq!(first, second, "reset must re-arm dependency holds");
        assert_eq!(first.records[2].start, 30);
    }

    #[test]
    fn energy_split_matches_hand_computation() {
        // 2 of 4 nodes busy for 100 s: active = 215 W x 200 unit-s,
        // idle = 60 W x 200 unit-s. Only resource 0 carries energy.
        let params = SimParams { power: Some(PowerModel::new(60, 215)), ..SimParams::default() };
        let mut sim = Simulator::new(
            sys(4, 4),
            vec![Job::new(0, 0, 100, 100, vec![2, 1])],
            params,
        )
        .unwrap();
        let report = sim.run(&mut HeadOfQueue);
        assert_eq!(report.energy_active_joules, 215.0 * 200.0);
        assert_eq!(report.energy_idle_joules, 60.0 * 200.0);
        assert_eq!(report.energy_total_joules(), 215.0 * 200.0 + 60.0 * 200.0);
        assert!((report.energy_kwh() - report.energy_total_joules() / 3.6e6).abs() < 1e-12);
    }

    #[test]
    fn no_power_model_reports_zero_energy() {
        let report = run_fcfs(sys(4, 4), vec![Job::new(0, 0, 100, 100, vec![2, 1])]);
        assert_eq!(report.energy_active_joules, 0.0);
        assert_eq!(report.energy_idle_joules, 0.0);
        assert_eq!(report.energy_total_joules(), 0.0);
    }
}
