//! Property tests pinning the event-queue equivalence contract.
//!
//! The engine's correctness rests on one claim: [`BinaryHeapEventQueue`]
//! and [`IndexedEventQueue`] are *observationally identical* — fed the
//! same interleaving of pushes, cancels, and pops, they emit bit-identical
//! pop sequences (time **and** tie-break order), agree on every cancel's
//! return value, and report the same live lengths and peek times after
//! every single operation. On top of the cross-check, both are compared
//! against a tiny sorted-scan reference model, so agreement can't hide a
//! shared bug: the model independently encodes the documented total order
//! `(time, kind rank, insertion sequence)`.
//!
//! Edge cases the strategies force: many same-timestamp ties (times are
//! drawn from a tiny range), cancel-after-pop (cancel targets are drawn
//! from *all* handles ever issued, including already-popped ones), double
//! cancels, pops from empty queues, and far-future outliers that push the
//! calendar queue through its direct-search fallback.

use mrsim::{BinaryHeapEventQueue, EventHandle, EventKind, EventQueue, IndexedEventQueue};
use proptest::prelude::*;

/// One scripted operation against a queue.
#[derive(Clone, Copy, Debug)]
enum Op {
    Push { time: u64, kind: EventKind },
    /// Cancel the `i % issued`-th handle ever returned (possibly popped).
    Cancel { i: usize },
    Pop,
}

/// Everything observable about one operation; two queues are equivalent
/// iff their observation logs are equal element-for-element.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Obs {
    Pushed,
    Cancelled(bool),
    Popped(Option<(u64, EventKind)>),
}

/// Post-operation queue vitals, checked in lockstep with each `Obs`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Vitals {
    len: usize,
    non_tick_len: usize,
    peek: Option<u64>,
}

/// Run the op script against a real queue implementation.
fn run_ops<Q: EventQueue>(q: &mut Q, ops: &[Op]) -> Vec<(Obs, Vitals)> {
    let mut handles: Vec<EventHandle> = Vec::new();
    let mut log = Vec::with_capacity(ops.len());
    for &op in ops {
        let obs = match op {
            Op::Push { time, kind } => {
                handles.push(q.push(time, kind));
                Obs::Pushed
            }
            Op::Cancel { i } => {
                if handles.is_empty() {
                    Obs::Cancelled(false)
                } else {
                    Obs::Cancelled(q.cancel(handles[i % handles.len()]))
                }
            }
            Op::Pop => Obs::Popped(q.pop().map(|e| (e.time, e.kind))),
        };
        let vitals =
            Vitals { len: q.len(), non_tick_len: q.non_tick_len(), peek: q.peek_time() };
        log.push((obs, vitals));
    }
    // Drain: the remaining pop order must match too.
    loop {
        let popped = q.pop().map(|e| (e.time, e.kind));
        let done = popped.is_none();
        log.push((
            Obs::Popped(popped),
            Vitals { len: q.len(), non_tick_len: q.non_tick_len(), peek: q.peek_time() },
        ));
        if done {
            break;
        }
    }
    log
}

/// Sorted-scan reference model of the documented contract: a flat list
/// of live events, popped by scanning for the minimum
/// `(time, rank, insertion seq)`. O(n) per op and obviously correct.
#[derive(Default)]
struct ModelQueue {
    /// `(seq, time, kind)`; `None` once popped or cancelled.
    slots: Vec<Option<(u64, u64, EventKind)>>,
}

impl ModelQueue {
    fn run_ops(&mut self, ops: &[Op]) -> Vec<(Obs, Vitals)> {
        let mut log = Vec::with_capacity(ops.len());
        for &op in ops {
            let obs = match op {
                Op::Push { time, kind } => {
                    let seq = self.slots.len() as u64;
                    self.slots.push(Some((seq, time, kind)));
                    Obs::Pushed
                }
                Op::Cancel { i } => {
                    if self.slots.is_empty() {
                        Obs::Cancelled(false)
                    } else {
                        let at = i % self.slots.len();
                        Obs::Cancelled(self.slots[at].take().is_some())
                    }
                }
                Op::Pop => Obs::Popped(self.pop()),
            };
            log.push((obs, self.vitals()));
        }
        loop {
            let popped = self.pop();
            let done = popped.is_none();
            log.push((Obs::Popped(popped), self.vitals()));
            if done {
                break;
            }
        }
        log
    }

    fn pop(&mut self) -> Option<(u64, EventKind)> {
        let best = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(at, slot)| slot.map(|(seq, time, kind)| (time, kind.index(), seq, at)))
            .min()?;
        let (_, time, kind) = self.slots[best.3].take().unwrap();
        Some((time, kind))
    }

    fn vitals(&self) -> Vitals {
        let live = self.slots.iter().flatten();
        Vitals {
            len: live.clone().count(),
            non_tick_len: live.clone().filter(|(_, _, k)| *k != EventKind::Tick).count(),
            peek: live.map(|&(seq, time, kind)| (time, kind.index(), seq)).min().map(|m| m.0),
        }
    }
}

/// Strategy for one operation. `time_hi` tunes tie density; `far` mixes
/// in rare far-future outliers (calendar-queue fallback fodder).
fn arb_op(time_hi: u64, far: bool) -> impl Strategy<Value = Op> {
    (0u8..8, 0u64..time_hi, 0u8..7, 0usize..4096).prop_map(move |(sel, t, kind_sel, i)| {
        match sel {
            // Push-heavy mix keeps queues non-trivially full.
            0..=3 => {
                let time = if far && kind_sel == 6 { t.saturating_mul(500_000_000) } else { t };
                let kind = match kind_sel % 6 {
                    0 => EventKind::Finish(i),
                    1 => EventKind::WalltimeKill(i),
                    2 => EventKind::Cancel(i),
                    3 => EventKind::CapacityChange { resource: i % 3, delta: (t as i64) - 8 },
                    4 => EventKind::Submit(i),
                    _ => EventKind::Tick,
                };
                Op::Push { time, kind }
            }
            4..=5 => Op::Pop,
            _ => Op::Cancel { i },
        }
    })
}

/// All three queues (two real, one model) agree on every observation.
fn assert_equivalent(ops: &[Op]) -> Result<(), TestCaseError> {
    let heap_log = run_ops(&mut BinaryHeapEventQueue::new(), ops);
    let indexed_log = run_ops(&mut IndexedEventQueue::new(), ops);
    let model_log = ModelQueue::default().run_ops(ops);
    prop_assert_eq!(&heap_log, &indexed_log, "heap vs indexed diverged");
    prop_assert_eq!(&heap_log, &model_log, "real queues diverged from the reference model");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dense-tie workload: times in 0..12 with ~100 ops guarantees many
    /// same-timestamp, same-kind collisions, so insertion-sequence
    /// tie-breaking is exercised constantly.
    #[test]
    fn dense_tie_interleavings_are_equivalent(
        ops in prop::collection::vec(arb_op(12, false), 1..120)
    ) {
        assert_equivalent(&ops)?;
    }

    /// Spread-out workload: wider time range, rare far-future outliers
    /// that force the calendar queue through bucket growth, cursor
    /// rewinds, and the direct-search fallback.
    #[test]
    fn sparse_outlier_interleavings_are_equivalent(
        ops in prop::collection::vec(arb_op(10_000, true), 1..80)
    ) {
        assert_equivalent(&ops)?;
    }

    /// Cancel-heavy workload: every handle is cancelled roughly once on
    /// average, so cancel-after-pop and double-cancel edges dominate.
    #[test]
    fn cancel_heavy_interleavings_are_equivalent(
        pushes in prop::collection::vec((0u64..20, 0usize..64), 1..40),
        cancels in prop::collection::vec(0usize..64, 0..60),
    ) {
        let mut ops: Vec<Op> = Vec::new();
        for (at, &(t, id)) in pushes.iter().enumerate() {
            ops.push(Op::Push {
                time: t,
                kind: if id % 5 == 0 { EventKind::Tick } else { EventKind::Finish(id) },
            });
            // Interleave pops so some cancels target already-fired events.
            if at % 3 == 2 {
                ops.push(Op::Pop);
            }
        }
        for &i in &cancels {
            ops.push(Op::Cancel { i });
            ops.push(Op::Cancel { i }); // immediate double-cancel
        }
        assert_equivalent(&ops)?;
    }
}
