//! Checkpointing: serialize network weights to a compact self-describing
//! byte format.
//!
//! Current checkpoints are `mrsch_snapshot` frames (magic `MRS2`,
//! version, length framing, trailing FNV checksum) carrying a
//! parameter-shape fingerprint and a flat little-endian `f32` dump.
//! Architectures are *not* stored — a checkpoint can only be loaded into
//! a network with the identical layer structure, which the fingerprint
//! verifies. Loading sniffs the magic and still accepts the original
//! unframed `MRS1` blobs (same fingerprint + dump, no checksum), so
//! checkpoints written before the shared codec existed keep working.

use crate::net::Sequential;
use bytes::Bytes;
use mrsch_snapshot::{frame, sniff_magic, unframe, CodecError, Reader, Writer};

/// Magic bytes of the legacy (pre-codec, unframed) checkpoint format.
pub const LEGACY_MAGIC: &[u8; 4] = b"MRS1";
/// Frame magic of the current checkpoint format.
pub const MAGIC: [u8; 4] = *b"MRS2";
/// Newest checkpoint format version this build reads and writes.
pub const VERSION: u16 = 1;

/// Errors produced when loading a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Data starts with neither [`MAGIC`] nor [`LEGACY_MAGIC`].
    BadMagic,
    /// Buffer ended before the declared payload.
    Truncated,
    /// The frame failed codec validation (checksum mismatch, trailing
    /// bytes, unsupported version, ...).
    Corrupt(CodecError),
    /// The checkpoint's shape fingerprint does not match the target
    /// network's architecture.
    ShapeMismatch {
        /// Fingerprint stored in the checkpoint.
        expected: u64,
        /// Fingerprint of the network being loaded into.
        actual: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an MRSch checkpoint (bad magic)"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::Corrupt(e) => write!(f, "corrupt checkpoint: {e}"),
            CheckpointError::ShapeMismatch { expected, actual } => write!(
                f,
                "checkpoint fingerprint {expected:#x} does not match network {actual:#x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::BadMagic { .. } => CheckpointError::BadMagic,
            CodecError::Truncated { .. } => CheckpointError::Truncated,
            other => CheckpointError::Corrupt(other),
        }
    }
}

use mrsch_linalg::Matrix;

/// FNV-1a fingerprint over a sequence of parameter shapes.
fn shape_fingerprint(
    visit: &mut impl FnMut(&mut dyn FnMut(&mut Matrix, &mut Matrix)),
) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    visit(&mut |p, _| {
        mix(p.rows() as u64);
        mix(p.cols() as u64);
    });
    h
}

/// Serialize parameters reachable through a visitor (model-agnostic).
pub fn save_visitor(
    mut visit: impl FnMut(&mut dyn FnMut(&mut Matrix, &mut Matrix)),
) -> Bytes {
    let fp = shape_fingerprint(&mut visit);
    let mut count = 0usize;
    visit(&mut |p, _| count += p.len());
    let mut w = Writer::with_capacity(8 + 8 + count * 4);
    w.put_u64(fp);
    w.put_u64(count as u64);
    visit(&mut |p, _| {
        for &v in p.as_slice() {
            w.put_f32(v);
        }
    });
    Bytes::from(frame(MAGIC, VERSION, &w.into_bytes()))
}

/// Load parameters through a visitor; the target model must have the
/// identical parameter-shape sequence. Accepts current (`MRS2`-framed)
/// and legacy (`MRS1` unframed) checkpoints.
pub fn load_visitor(
    mut visit: impl FnMut(&mut dyn FnMut(&mut Matrix, &mut Matrix)),
    data: &[u8],
) -> Result<(), CheckpointError> {
    if sniff_magic(data) == Some(*LEGACY_MAGIC) {
        return load_params(&mut visit, &data[LEGACY_MAGIC.len()..], false);
    }
    let (_version, payload) = unframe(MAGIC, data)?;
    // Framed payloads are length-checked: the dump must end exactly at
    // the declared count.
    load_params(&mut visit, payload, true)
}

/// Decode fingerprint + count + `f32` dump (shared by both formats).
fn load_params(
    visit: &mut impl FnMut(&mut dyn FnMut(&mut Matrix, &mut Matrix)),
    payload: &[u8],
    exact: bool,
) -> Result<(), CheckpointError> {
    let mut r = Reader::new(payload);
    let expected = r.get_u64().map_err(|_| CheckpointError::Truncated)?;
    let actual = shape_fingerprint(visit);
    if expected != actual {
        return Err(CheckpointError::ShapeMismatch { expected, actual });
    }
    let count = r.get_u64().map_err(|_| CheckpointError::Truncated)? as usize;
    if r.remaining() < count.saturating_mul(4) {
        return Err(CheckpointError::Truncated);
    }
    let mut err = None;
    visit(&mut |p, _| {
        if err.is_some() {
            return;
        }
        for v in p.as_mut_slice() {
            match r.get_f32() {
                Ok(x) => *v = x,
                Err(_) => {
                    err = Some(CheckpointError::Truncated);
                    return;
                }
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    if exact {
        r.expect_end().map_err(CheckpointError::from)?;
    }
    Ok(())
}

/// Serialize the network's parameters.
pub fn save(net: &mut Sequential) -> Bytes {
    save_visitor(|f| net.visit_params(&mut |p, g| f(p, g)))
}

/// Load parameters into a network with the same architecture.
pub fn load(net: &mut Sequential, data: &[u8]) -> Result<(), CheckpointError> {
    load_visitor(|f| net.visit_params(&mut |p, g| f(p, g)), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use mrsch_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .dense(4, 8, &mut rng)
            .activation(Activation::LeakyRelu(0.01))
            .dense(8, 2, &mut rng)
    }

    #[test]
    fn save_load_roundtrip_preserves_outputs() {
        let mut a = sample_net(1);
        let mut b = sample_net(2);
        let x = Matrix::filled(3, 4, 0.7);
        assert_ne!(a.forward(&x), b.forward(&x));
        let ckpt = save(&mut a);
        load(&mut b, &ckpt).unwrap();
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    /// A legacy `MRS1` blob (the exact pre-codec byte layout, built by
    /// hand as a migration fixture) still loads.
    #[test]
    fn legacy_mrs1_blob_still_loads() {
        let mut a = sample_net(1);
        let mut b = sample_net(2);
        let mut visit = |f: &mut dyn FnMut(&mut Matrix, &mut Matrix)| {
            a.visit_params(&mut |p, g| f(p, g))
        };
        let fp = shape_fingerprint(&mut visit);
        let mut count = 0usize;
        visit(&mut |p, _| count += p.len());
        let mut legacy = Vec::new();
        legacy.extend_from_slice(LEGACY_MAGIC);
        legacy.extend_from_slice(&fp.to_le_bytes());
        legacy.extend_from_slice(&(count as u64).to_le_bytes());
        visit(&mut |p, _| {
            for &v in p.as_slice() {
                legacy.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        });
        load(&mut b, &legacy).unwrap();
        let x = Matrix::filled(3, 4, 0.7);
        assert_eq!(a.forward(&x), b.forward(&x), "legacy blob reproduces the weights");
    }

    #[test]
    fn current_format_is_a_checksummed_frame() {
        let mut a = sample_net(1);
        let ckpt = save(&mut a);
        assert_eq!(&ckpt[..4], &MAGIC, "MRS2-framed");
        // A flipped weight bit is caught by the frame checksum, which the
        // legacy format could not detect.
        let mut corrupt = ckpt.to_vec();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        assert!(
            matches!(load(&mut a, &corrupt), Err(CheckpointError::Corrupt(_))),
            "bit flip detected"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut net = sample_net(1);
        assert_eq!(load(&mut net, b"nope"), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut a = sample_net(1);
        let mut rng = StdRng::seed_from_u64(3);
        let mut different = Sequential::new().dense(4, 9, &mut rng);
        let ckpt = save(&mut a);
        match load(&mut different, &ckpt) {
            Err(CheckpointError::ShapeMismatch { .. }) => {}
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_rejected() {
        let mut a = sample_net(1);
        let ckpt = save(&mut a);
        let cut = &ckpt[..ckpt.len() - 5];
        assert_eq!(load(&mut a, cut), Err(CheckpointError::Truncated));
    }

    #[test]
    fn checkpoint_is_deterministic() {
        let mut a = sample_net(7);
        let c1 = save(&mut a);
        let c2 = save(&mut a);
        assert_eq!(c1, c2);
    }
}
